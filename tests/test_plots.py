"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.plots import render_stacked_bars


class TestStackedBars:
    def test_basic_rendering(self):
        chart = render_stacked_bars(
            "T", ["a", "bb"],
            [("opt", [1.0, 2.0]), ("eval", [3.0, 6.0])], width=8)
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert lines[2].startswith(" a |")
        assert lines[3].startswith("bb |")
        # the larger bar spans the full width
        assert "#" * 2 + "=" * 6 in lines[3]
        assert "8.0" in lines[3]

    def test_legend_present(self):
        chart = render_stacked_bars(
            "T", ["x"], [("opt", [1.0]), ("eval", [1.0])])
        assert "# opt" in chart
        assert "= eval" in chart

    def test_zero_values(self):
        chart = render_stacked_bars("T", ["x"], [("opt", [0.0])])
        assert "0.0" in chart

    def test_unit_suffix(self):
        chart = render_stacked_bars("T", ["x"], [("opt", [2.0])],
                                    unit=" ms")
        assert "2.0 ms" in chart

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            render_stacked_bars("T", [], [("opt", [])])
        with pytest.raises(ValueError, match="values for"):
            render_stacked_bars("T", ["a"], [("opt", [1.0, 2.0])])
        with pytest.raises(ValueError, match="components"):
            render_stacked_bars("T", ["a"],
                                [(str(i), [1.0]) for i in range(9)])

    def test_scaling_is_proportional(self):
        chart = render_stacked_bars(
            "T", ["small", "large"],
            [("v", [25.0, 100.0])], width=40)
        lines = chart.splitlines()
        small_bar = lines[2].split("|")[1].count("#")
        large_bar = lines[3].split("|")[1].count("#")
        assert large_bar == 40
        assert small_bar == 10

    def test_figure_output_includes_chart(self):
        from repro.bench.experiments import figure8
        from repro.bench.harness import ExperimentSetup

        output = figure8(ExperimentSetup(pers_nodes=300,
                                         bad_plan_samples=5))
        assert "stacked" in output.text
        assert "# optimization" in output.text
