"""Tests for the synthetic workload generators and paper queries."""

import pytest

from repro.errors import DocumentError, PatternError
from repro.workloads import (PAPER_QUERIES, PATTERN_SHAPES, build_shape,
                             dataset_document, dblp_document,
                             fold_document, mbench_document, paper_query,
                             pattern_for, personnel_document)


class TestGeneratorsDeterministic:
    @pytest.mark.parametrize("generator,kwargs", [
        (personnel_document, {"target_nodes": 300, "seed": 1}),
        (dblp_document, {"entries": 50, "seed": 2}),
        (mbench_document, {"target_nodes": 300, "seed": 3}),
    ])
    def test_same_seed_same_document(self, generator, kwargs):
        first = generator(**kwargs)
        second = generator(**kwargs)
        assert len(first) == len(second)
        assert [n.tag for n in first] == [n.tag for n in second]
        assert [n.region for n in first] == [n.region for n in second]

    def test_different_seed_different_document(self):
        first = personnel_document(target_nodes=300, seed=1)
        second = personnel_document(target_nodes=300, seed=2)
        assert [n.tag for n in first] != [n.tag for n in second]


class TestPersonnel:
    def test_size_near_target(self):
        document = personnel_document(target_nodes=500, seed=4)
        assert 500 <= len(document) <= 560

    def test_structure(self):
        document = personnel_document(target_nodes=500, seed=4)
        assert document.root.tag == "company"
        assert document.tag_count("manager") > 5
        # recursive managers exist
        managers = document.nodes_with_tag("manager")
        assert any(outer.is_ancestor_of(inner)
                   for outer in managers[:10] for inner in managers)
        # every employee has a name child
        for employee in document.nodes_with_tag("employee")[:20]:
            children = document.children(employee)
            assert any(child.tag == "name" for child in children)


class TestDblp:
    def test_shallow_and_wide(self):
        document = dblp_document(entries=100, seed=5)
        assert document.depth() == 3
        assert document.tag_count("title") == 100
        entries = (document.tag_count("article")
                   + document.tag_count("inproceedings")
                   + document.tag_count("book"))
        assert entries == 100

    def test_articles_dominate(self):
        document = dblp_document(entries=300, seed=6)
        assert document.tag_count("article") > document.tag_count("book")

    def test_year_attribute_and_element_agree(self):
        document = dblp_document(entries=30, seed=7)
        for article in document.nodes_with_tag("article")[:10]:
            years = [child.text for child in document.children(article)
                     if child.tag == "year"]
            assert years == [article.attributes["year"]]


class TestMbench:
    def test_deep_recursion(self):
        document = mbench_document(target_nodes=800, seed=8)
        assert document.depth() >= 6
        assert document.tag_count("eNest") > 500

    def test_attributes(self):
        document = mbench_document(target_nodes=200, seed=9)
        for node in document.nodes_with_tag("eNest")[:20]:
            assert int(node.attributes["aFour"]) in range(4)
            assert int(node.attributes["aSixteen"]) in range(16)
            assert int(node.attributes["aLevel"]) >= 1

    def test_occasional_elements_present(self):
        document = mbench_document(target_nodes=800, seed=8)
        assert document.tag_count("eOccasional") > 0


class TestFolding:
    def test_factor_one_is_identity(self, small_document):
        assert fold_document(small_document, 1) is small_document

    def test_factor_scales_counts_linearly(self, small_document):
        folded = fold_document(small_document, 4)
        assert len(folded) == 4 * len(small_document) + 1
        for tag in ("manager", "employee", "name"):
            assert folded.tag_count(tag) == 4 * small_document.tag_count(
                tag)

    def test_join_results_scale_linearly(self, small_document):
        from repro.estimation.estimator import count_containment_pairs

        base = count_containment_pairs(
            [n.region for n in small_document.nodes_with_tag("manager")],
            [n.region for n in small_document.nodes_with_tag("employee")])
        folded = fold_document(small_document, 3)
        scaled = count_containment_pairs(
            [n.region for n in folded.nodes_with_tag("manager")],
            [n.region for n in folded.nodes_with_tag("employee")])
        assert scaled == 3 * base

    def test_invalid_factor(self, small_document):
        with pytest.raises(DocumentError):
            fold_document(small_document, 0)


class TestPaperQueries:
    def test_eight_queries_defined(self):
        assert len(PAPER_QUERIES) == 8
        assert set(PAPER_QUERIES) == {
            "Q.Mbench.1.a", "Q.Mbench.2.b", "Q.DBLP.1.b", "Q.DBLP.2.c",
            "Q.Pers.1.a", "Q.Pers.2.c", "Q.Pers.3.d", "Q.Pers.4.d"}

    def test_shapes_have_documented_sizes(self):
        sizes = {shape: len(edges) + 1
                 for shape, edges in PATTERN_SHAPES.items()}
        assert sizes == {"a": 4, "b": 5, "c": 6, "d": 7}

    def test_query_patterns_match_their_shape(self):
        for query in PAPER_QUERIES.values():
            assert len(query.pattern) == len(
                PATTERN_SHAPES[query.shape]) + 1

    def test_queries_return_results_on_their_dataset(self):
        from repro.api import Database

        for name in ("Q.Pers.1.a", "Q.Pers.2.c"):
            query = paper_query(name)
            database = Database.from_document(
                dataset_document(query.dataset, target_nodes=400))
            assert len(database.query(query.pattern)) > 0

    def test_mbench_queries_on_mbench(self):
        from repro.api import Database

        database = Database.from_document(
            mbench_document(target_nodes=800, seed=8))
        for name in ("Q.Mbench.1.a", "Q.Mbench.2.b"):
            result = database.query(pattern_for(name))
            assert result.execution is not None

    def test_dblp_queries_on_dblp(self):
        from repro.api import Database

        database = Database.from_document(dblp_document(entries=120))
        for name in ("Q.DBLP.1.b", "Q.DBLP.2.c"):
            assert len(database.query(pattern_for(name))) > 0

    def test_unknown_query_rejected(self):
        with pytest.raises(PatternError, match="unknown paper query"):
            paper_query("Q.Nope.9.z")

    def test_build_shape_validation(self):
        with pytest.raises(PatternError, match="unknown pattern shape"):
            build_shape("z", ["a"], [])
        with pytest.raises(PatternError, match="needs 4 nodes"):
            build_shape("a", ["a", "b"], ["/", "/", "/"])
        with pytest.raises(PatternError, match="needs 3 axes"):
            build_shape("a", ["a", "b", "c", "d"], ["/"])

    def test_dataset_document_dispatch(self):
        assert dataset_document("dblp", entries=10).root.tag == "dblp"
        with pytest.raises(PatternError, match="unknown dataset"):
            dataset_document("oracle")
