"""Unit tests for move generation, deadends, ubCost and plan building."""

import pytest

from repro.core.cost import CostModel
from repro.core.enumeration import (EnumerationContext, build_plan,
                                    edge_eligible, is_deadend, is_doomed,
                                    left_deep_allows, possible_moves,
                                    upper_bound_completion)
from repro.core.pattern import QueryPattern
from repro.core.plans import JoinAlgorithm, SortPlan, validate_plan
from repro.core.status import ANY_ORDER, Status, StatusNode
from repro.estimation.estimator import ExactEstimator


@pytest.fixture
def context(small_document, running_example_pattern):
    return EnumerationContext(running_example_pattern, CostModel(),
                              ExactEstimator(small_document))


@pytest.fixture
def chain_context(small_document, chain_pattern):
    return EnumerationContext(chain_pattern, CostModel(),
                              ExactEstimator(small_document))


def status_of(*clusters):
    return Status(frozenset(
        StatusNode(frozenset(nodes), order) for nodes, order in clusters))


class TestEligibility:
    def test_singletons_always_eligible(self, running_example_pattern):
        start = Status.start(running_example_pattern)
        for edge in running_example_pattern.edges:
            assert edge_eligible(start, edge)

    def test_wrong_cluster_order_blocks_edge(self, running_example_pattern):
        # cluster {0,1} ordered by 1: edge (0,3) needs order by 0
        status = status_of(({0, 1}, 1), ({2}, 2), ({3}, 3), ({4}, 4),
                           ({5}, 5))
        edge = running_example_pattern.edge_between(0, 3)
        assert not edge_eligible(status, edge)
        edge12 = running_example_pattern.edge_between(1, 2)
        assert edge_eligible(status, edge12)


class TestPossibleMoves:
    def test_start_moves_cover_all_edges(self, context):
        moves = possible_moves(Status.start(context.pattern), context)
        edges = {(move.edge.parent, move.edge.child) for move in moves}
        assert edges == {(0, 1), (1, 2), (0, 3), (3, 4), (4, 5)}

    def test_move_alternatives_per_edge(self, context):
        moves = possible_moves(Status.start(context.pattern), context)
        on_01 = [move for move in moves
                 if (move.edge.parent, move.edge.child) == (0, 1)]
        # STD (order 1), STA (order 0), STD+sort->0: merged has 2 nodes
        assert len(on_01) == 3
        algorithms = {(move.algorithm, move.sort_to) for move in on_01}
        assert (JoinAlgorithm.STACK_TREE_DESC, None) in algorithms
        assert (JoinAlgorithm.STACK_TREE_ANC, None) in algorithms
        assert (JoinAlgorithm.STACK_TREE_DESC, 0) in algorithms

    def test_costs_follow_cost_model(self, context):
        moves = possible_moves(Status.start(context.pattern), context)
        model = context.cost_model
        anc_card = context.cards.node(0)
        merged = context.cards.cluster(frozenset({0, 1}))
        for move in moves:
            if (move.edge.parent, move.edge.child) != (0, 1):
                continue
            if move.algorithm is JoinAlgorithm.STACK_TREE_ANC:
                assert move.cost == pytest.approx(
                    model.stack_tree_anc(anc_card, merged))
            elif move.sort_to is None:
                assert move.cost == pytest.approx(
                    model.stack_tree_desc(anc_card))
            else:
                assert move.cost == pytest.approx(
                    model.stack_tree_desc(anc_card) + model.sort(merged))

    def test_final_move_canonicalizes_order(self, chain_context):
        # status one move away from final
        status = status_of(({0, 1}, 1), ({2}, 2))
        moves = possible_moves(status, chain_context)
        assert moves, "edge (1,2) should be eligible"
        for move in moves:
            assert move.result.is_final()
            (cluster,) = move.result.clusters
            assert cluster.ordered_by == ANY_ORDER

    def test_final_move_respects_order_by(self, small_document):
        pattern = QueryPattern.build({
            "nodes": ["manager", "employee", "name"],
            "edges": [(0, 1, "//"), (1, 2, "/")],
            "order_by": 0,
        })
        context = EnumerationContext(pattern, CostModel(),
                                     ExactEstimator(small_document))
        status = status_of(({0, 1}, 1), ({2}, 2))
        moves = possible_moves(status, context)
        model = context.cost_model
        for move in moves:
            (cluster,) = move.result.clusters
            assert cluster.ordered_by == 0
            if move.algorithm is JoinAlgorithm.STACK_TREE_DESC:
                # native order is node 2; a final sort to 0 is charged
                assert move.sort_to == 0
                assert move.cost > model.stack_tree_desc(
                    context.cards.cluster(frozenset({0, 1})))

    def test_left_deep_filter(self, context):
        status = status_of(({0, 1}, 0), ({2}, 2), ({3}, 3), ({4}, 4),
                           ({5}, 5))
        all_moves = possible_moves(status, context)
        left_deep = possible_moves(status, context, left_deep=True)
        assert {(m.edge.parent, m.edge.child) for m in left_deep} <= {
            (0, 3), (1, 2)}
        assert any((m.edge.parent, m.edge.child) == (4, 5)
                   for m in all_moves)
        assert not any((m.edge.parent, m.edge.child) == (4, 5)
                       for m in left_deep)


class TestDeadends:
    def test_start_never_deadend(self, context):
        start = Status.start(context.pattern)
        assert not is_deadend(start, context.pattern)
        assert not is_doomed(start, context)

    def test_definition6_deadend(self, chain_context):
        # {1,2} ordered by 2; edge (0,1) needs order by 1 -> no moves
        status = status_of(({1, 2}, 2), ({0}, 0))
        assert is_deadend(status, chain_context.pattern)
        assert is_doomed(status, chain_context)
        assert possible_moves(status, chain_context) == []

    def test_doomed_but_not_deadend(self, context):
        # Q.Pers-style trap: {0,3} ordered by 3 can never serve edges
        # (0,1); but edge (1,2) is still joinable -> not a Def. 6
        # deadend, yet unsalvageable.
        status = status_of(({0, 3}, 3), ({1}, 1), ({2}, 2), ({4}, 4),
                           ({5}, 5))
        # adjust: pattern edges are (0,1),(1,2),(0,3),(3,4),(4,5);
        # cluster {0,3} ordered by 3 can still serve (3,4).
        assert not is_doomed(status, context)
        status2 = status_of(({3, 4}, 4), ({0}, 0), ({1}, 1), ({2}, 2),
                            ({5}, 5))
        # {3,4} ordered by 4 serves (4,5) -> fine
        assert not is_doomed(status2, context)
        status3 = status_of(({3, 4, 5}, 5), ({0}, 0), ({1}, 1), ({2}, 2))
        # {3,4,5} ordered by 5 has only remaining adjacent edge (0,3)
        # which needs order by 3 -> doomed, though (0,1) is joinable.
        assert is_doomed(status3, context)
        assert not is_deadend(status3, context.pattern)

    def test_final_not_deadend(self, context):
        final = Status(frozenset({StatusNode(frozenset(range(6)),
                                             ANY_ORDER)}))
        assert not is_deadend(final, context.pattern)
        assert not is_doomed(final, context)


class TestLeftDeepAllows:
    def test_first_join_free(self, context):
        start = Status.start(context.pattern)
        for edge in context.pattern.edges:
            assert left_deep_allows(start, edge)

    def test_only_growing_extensions(self, context):
        status = status_of(({0, 1}, 0), ({2}, 2), ({3}, 3), ({4}, 4),
                           ({5}, 5))
        pattern = context.pattern
        assert left_deep_allows(status, pattern.edge_between(0, 3))
        assert left_deep_allows(status, pattern.edge_between(1, 2))
        assert not left_deep_allows(status, pattern.edge_between(4, 5))


class TestUpperBound:
    def test_final_status_zero(self, context):
        final = Status(frozenset({StatusNode(frozenset(range(6)),
                                             ANY_ORDER)}))
        assert upper_bound_completion(final, context) == 0.0

    def test_positive_for_start(self, context):
        start = Status.start(context.pattern)
        assert upper_bound_completion(start, context) > 0.0

    def test_upper_bounds_optimal_completion(self, context,
                                             small_document):
        """Cost + ubCost of the start status must be >= the optimal
        full plan cost found by exhaustive DP."""
        from repro.core.dp import DPOptimizer

        start = Status.start(context.pattern)
        bound = (context.start_cost()
                 + upper_bound_completion(start, context))
        result = DPOptimizer().optimize(context.pattern,
                                        ExactEstimator(small_document))
        assert bound >= result.estimated_cost

    def test_doomed_status_unbounded(self, chain_context):
        status = status_of(({1, 2}, 2), ({0}, 0))
        assert upper_bound_completion(status, chain_context) == float(
            "inf")


class TestBuildPlan:
    def test_plan_from_moves(self, chain_context):
        start = Status.start(chain_context.pattern)
        first = next(
            move for move in possible_moves(start, chain_context)
            if (move.edge.parent, move.edge.child) == (0, 1)
            and move.algorithm is JoinAlgorithm.STACK_TREE_DESC
            and move.sort_to is None)
        second = next(
            move for move in possible_moves(first.result, chain_context))
        plan = build_plan([first, second], chain_context)
        validate_plan(plan, chain_context.pattern)
        assert plan.join_count() == 2

    def test_plan_with_sort_move(self, chain_context):
        start = Status.start(chain_context.pattern)
        sorted_move = next(
            move for move in possible_moves(start, chain_context)
            if (move.edge.parent, move.edge.child) == (1, 2)
            and move.sort_to == 1)
        follow = next(
            move for move in possible_moves(sorted_move.result,
                                            chain_context))
        plan = build_plan([sorted_move, follow], chain_context)
        validate_plan(plan, chain_context.pattern)
        assert plan.sort_count() == 1
        assert any(isinstance(node, SortPlan) for node in plan.walk())
