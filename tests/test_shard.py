"""Shard subsystem tests: partitioner properties, fault injection,
pool lifecycle, and the statistics-epoch plan-cache contract.

The partitioner tests are property-style over randomized documents
and shard counts — the invariants (structurally related pairs stay
co-located, shard node sets are disjoint, their union is the corpus)
must hold for *any* tree shape, including degenerate ones.  The
process-backed tests keep documents small and reuse one worker fleet
per module where possible: spawning a worker costs real fork/exec
time, and these tests are tier-1.
"""

from __future__ import annotations

import pytest

from repro.api import Database
from repro.core.plans import IndexScanPlan
from repro.errors import PlanError, ShardError
from repro.estimation.estimator import build_tag_statistics
from repro.shard import (ShardedDatabase, partition_document)
from repro.shard.partition import structural_pairs_local
from repro.shard.worker import merge_key
from repro.workloads.personnel import personnel_document

from tests.conftest import canonical_bindings, random_document

SHARD_COUNTS = (1, 2, 3, 5, 9)


def _property_documents():
    for seed, size in ((11, 30), (23, 90), (37, 200)):
        yield random_document(seed, size=size)
    yield personnel_document(target_nodes=250)


# -- partitioner properties (pure, no worker processes) ------------------


def test_partition_disjoint_union_and_colocation():
    for document in _property_documents():
        corpus = ({node.node_id for node in document}
                  - {document.root.node_id})
        for shards in SHARD_COUNTS:
            partition = partition_document(document, shards)
            assert partition.shards == shards
            owner: dict[int, int] = {}
            for shard_id in range(shards):
                assignment = partition.assignments[shard_id]
                ids = {node.node_id
                       for node in partition.shard_nodes(shard_id)}
                assert len(ids) == assignment.node_count
                for node_id in ids:
                    assert node_id not in owner, (
                        f"node {node_id} assigned to shards "
                        f"{owner[node_id]} and {shard_id}")
                    owner[node_id] = shard_id
                if assignment.is_empty:
                    assert assignment.label_lo == -1
                    assert assignment.label_hi == -1
                else:
                    assert all(assignment.label_lo <= node_id
                               <= assignment.label_hi
                               for node_id in ids)
            assert set(owner) == corpus
            assert structural_pairs_local(partition)


def test_partition_shard_documents_are_valid_with_replicated_root():
    for document in _property_documents():
        for shards in (2, 4):
            partition = partition_document(document, shards)
            for shard_id in range(shards):
                # XmlDocument's constructor validates structure, so
                # building the shard document IS the structural check
                shard_doc = partition.shard_document(shard_id)
                assert shard_doc.root.region == document.root.region
                assert (len(shard_doc) == 1 + partition
                        .assignments[shard_id].node_count)


def test_partition_more_shards_than_subtrees_leaves_empty_shards():
    document = random_document(5, size=12)
    children = len(document.children(document.root))
    shards = children + 4
    partition = partition_document(document, shards)
    empty = [assignment for assignment in partition.assignments
             if assignment.is_empty]
    assert len(empty) == shards - children
    # an empty shard still yields a queryable one-node document
    empty_doc = partition.shard_document(empty[0].shard_id)
    assert len(empty_doc) == 1


def test_partition_shard_of_contract():
    document = personnel_document(target_nodes=120)
    partition = partition_document(document, 3)
    with pytest.raises(ShardError):
        partition.shard_of(document.root.node_id)
    with pytest.raises(ShardError):
        partition.shard_of(document.root.end + 10)
    for node in document:
        if node.node_id != document.root.node_id:
            shard_id = partition.shard_of(node.node_id)
            assert node.node_id in {
                owned.node_id
                for owned in partition.shard_nodes(shard_id)}


def test_partition_rejects_bad_shard_count():
    document = random_document(1, size=10)
    with pytest.raises(ShardError):
        partition_document(document, 0)


def test_merged_statistics_equal_direct_scan():
    """Summing per-shard statistics must reproduce the single-node
    catalog exactly for counts and histograms (they are built over the
    shared global label space); distinct-value counts may only
    overcount (disjoint-values assumption)."""
    for document in (random_document(23, size=90),
                     personnel_document(target_nodes=250)):
        direct = build_tag_statistics(document, grid=8)
        merged = partition_document(document, 3).merged_statistics(
            grid=8)
        assert set(merged) == set(direct)
        for tag, expected in direct.items():
            entry = merged[tag]
            assert entry.count == expected.count, tag
            assert entry.levels.counts == expected.levels.counts, tag
            assert entry.positions.cells == expected.positions.cells
            assert (entry.positions.position_space
                    == expected.positions.position_space)
            assert entry.distinct_texts >= expected.distinct_texts
            for name, distinct in (
                    expected.distinct_attribute_values.items()):
                assert (entry.distinct_attribute_values[name]
                        >= distinct)


# -- the worker fleet (process-backed) -----------------------------------


@pytest.fixture(scope="module")
def corpus_document():
    return personnel_document(target_nodes=300, seed=7)


@pytest.fixture(scope="module")
def sharded(corpus_document):
    with ShardedDatabase(corpus_document, shards=2) as database:
        yield database


def test_sharded_bindings_match_single_node(sharded, corpus_document,
                                            chain_pattern):
    single = Database.from_document(corpus_document)
    plan = single.optimize(chain_pattern, algorithm="DPP").plan
    reference = single.execute(plan, chain_pattern).canonical()
    merged = sharded.execute(
        sharded.optimize(chain_pattern, algorithm="DPP").plan,
        chain_pattern)
    assert merged.canonical() == reference
    keys = [merge_key(row) for row in merged.tuples]
    assert keys == sorted(keys), "merged output broke document order"


def test_sharded_root_only_bindings_deduplicate(sharded):
    # every shard replicates the root, so a root-only pattern is the
    # one case where shards emit duplicate rows; the merge collapses
    # them to exactly one
    result = sharded.query("//company")
    assert len(result.execution) == 1


def test_worker_query_error_keeps_fleet_alive(sharded, chain_pattern):
    plan = sharded.optimize(chain_pattern).plan
    # a repro-typed worker failure re-raises under its original class
    # (the coordinator validates engines, so go through the pool to
    # reach the worker-side validation)
    with pytest.raises(PlanError):
        sharded.workers.scatter_gather(plan, chain_pattern,
                                       "warp-drive")
    # a non-repro worker exception (here: a plan referencing a
    # pattern node that does not exist) surfaces as ShardError
    with pytest.raises(ShardError):
        sharded.execute(IndexScanPlan(99), chain_pattern)
    # neither error kills the fleet: workers keep serving
    assert not sharded.workers.closed
    assert all(sharded.workers.alive())
    assert len(sharded.query("//manager//employee").execution) > 0


def test_sharded_explain_analyze_renders_scatter_gather(sharded):
    report = sharded.explain("//manager//employee/name", analyze=True)
    text = report.render()
    assert "ShardScatterGather" in text
    assert "shard[0]" in text and "shard[1]" in text


def test_sharded_service_exports_per_shard_gauges(sharded):
    sharded.query("//manager//employee")
    exported = sharded.service.export_metrics("prometheus")
    assert "repro_shard_nodes" in exported
    assert 'shard="1"' in exported
    assert "repro_shard_alive" in exported


def test_crashed_worker_raises_shard_error_and_tears_down():
    document = personnel_document(target_nodes=120)
    with ShardedDatabase(document, shards=2) as database:
        pattern = database.compile("//manager//employee")
        plan = database.optimize(pattern).plan
        assert len(database.execute(plan, pattern)) > 0
        database.workers.crash_worker(1)
        with pytest.raises(ShardError):
            database.execute(plan, pattern)
        # the pool tears itself down: no hung gather, no leaked
        # processes, and further queries fail fast instead of hanging
        assert database.workers.closed
        assert not any(database.workers.alive())
        with pytest.raises(ShardError):
            database.execute(plan, pattern)
        # teardown is idempotent
        database.workers.close()
        database.workers.close()


def test_closed_sharded_database_fails_fast():
    document = personnel_document(target_nodes=80)
    database = ShardedDatabase(document, shards=1)
    assert len(database.query("//manager").execution) > 0
    database.close()
    database.close()  # idempotent
    with pytest.raises(ShardError):
        database.query("//manager")
    assert not any(database.workers.alive())


# -- statistics epoch vs. the plan cache ---------------------------------


def test_sharded_reload_bumps_every_epoch_and_serves_new_corpus():
    small = personnel_document(target_nodes=120, seed=3)
    big = personnel_document(target_nodes=400, seed=4)
    with ShardedDatabase(small, shards=2) as database:
        assert database.stats()["statistics_epoch"] == 2
        before = len(database.query("//manager//employee").execution)
        database.reload(big)
        snapshot = database.stats()
        assert snapshot["statistics_epoch"] == 4
        assert snapshot["shards"]["epochs"] == [2, 2]
        after = len(database.query("//manager//employee").execution)
        reference = canonical_bindings(
            Database.from_document(big)
            .query("//manager//employee").execution.bindings())
        assert after == len(reference)
        assert after != before


def test_database_stats_reports_statistics_epoch():
    """Regression: ``Database.stats()`` must expose the statistics
    epoch the plan cache is keyed on, and a reload must move it —
    otherwise a caller watching stats() cannot tell cached plans were
    invalidated."""
    database = Database.from_document(
        personnel_document(target_nodes=120))
    snapshot = database.stats()
    assert snapshot["statistics_epoch"] == database.statistics_epoch
    before = snapshot["statistics_epoch"]
    database.reload(personnel_document(target_nodes=160))
    assert database.stats()["statistics_epoch"] > before
