"""Distributed-trace stitching, SLO tracking, and write-path spans.

The stitching tests pin the PR's core invariant: a sharded query's
stitched trace must attribute the *exact* cost-model counters — the
per-shard subtree shares sum to the merged execution counters with
integer equality, across shard counts and both engines.  Parentage
must be well-formed (unique span ids, every child pointing at its
parent) because the trace crosses process boundaries and is rebuilt
from serialized payloads.
"""

from __future__ import annotations

import json
import queue
import warnings

import pytest

from repro.api import Database
from repro.core.pattern import QueryPattern
from repro.document.parser import parse_xml
from repro.errors import ReproError
from repro.obs.querylog import QueryLog
from repro.obs.registry import BucketRecorder, MetricsRegistry
from repro.obs.slo import DEFAULT_OBJECTIVES, SLObjective, SLOTracker
from repro.obs.spans import SPAN_COUNTERS, Span, TraceContext
from repro.shard.partition import partition_document
from repro.shard.sharded import ShardedDatabase
from repro.txn.db import create_database, open_database
from repro.workloads.personnel import personnel_document
from tests.conftest import PERSONNEL_XML

WIDGETS_XML = "<catalog><widget><name>gizmo</name></widget></catalog>"


def chain() -> QueryPattern:
    return QueryPattern.build({
        "nodes": ["manager", "employee", "name"],
        "edges": [(0, 1, "//"), (1, 2, "/")],
    })


def walk(span: Span):
    yield span
    for child in span.children:
        yield from walk(child)


def subtree_counter_sums(span: Span) -> dict[str, int]:
    totals: dict[str, int] = {}
    for node in walk(span):
        for name, value in node.counters().items():
            totals[name] = totals.get(name, 0) + int(value)
    return totals


# -- trace stitching ------------------------------------------------------


class TestTraceStitching:
    @pytest.mark.parametrize("shards", (1, 2, 4))
    def test_counter_shares_sum_exactly_across_engines(self, shards):
        document = personnel_document(target_nodes=300)
        pattern = chain()
        with ShardedDatabase(document, shards=shards) as sharded:
            plan = sharded.optimize(pattern).plan
            for engine in ("block", "tuple"):
                execution = sharded.execute(plan, pattern,
                                            engine=engine, spans=True)
                span = execution.span
                assert span is not None
                assert span.name == "ShardScatterGather"
                wrappers = ShardedDatabase._shard_wrappers(span)
                assert len(wrappers) == shards
                stitched: dict[str, int] = {}
                for wrapper in wrappers:
                    for name, value in subtree_counter_sums(
                            wrapper).items():
                        stitched[name] = stitched.get(name, 0) + value
                for name in SPAN_COUNTERS:
                    assert stitched.get(name, 0) == int(
                        getattr(execution.metrics, name)), (
                        engine, shards, name)

    @pytest.mark.parametrize("shards", (1, 2, 4))
    def test_parentage_and_span_ids_well_formed(self, shards):
        document = personnel_document(target_nodes=300)
        pattern = chain()
        with ShardedDatabase(document, shards=shards) as sharded:
            plan = sharded.optimize(pattern).plan
            execution = sharded.execute(plan, pattern, spans=True)
            span = execution.span
            assert span is not None
            spans = list(walk(span))
            ids = [node.span_id for node in spans]
            assert all(ids), "every span must be stamped"
            assert len(ids) == len(set(ids)), "span ids must be unique"
            assert all(node.trace_id == span.trace_id
                       for node in spans)
            assert span.parent_span_id == ""

            def check(parent: Span) -> None:
                for child in parent.children:
                    assert child.parent_span_id == parent.span_id, (
                        child.name, child.span_id)
                    check(child)

            check(span)
            # coordinator spans are stamped under the "c" prefix and
            # carry no metrics; each worker subtree keeps its own
            # "s<shard>-" prefix from the worker-side stamping
            assert span.span_id.startswith("c")
            assert span.metrics is None
            for wrapper in ShardedDatabase._shard_wrappers(span):
                assert wrapper.metrics is None
                assert len(wrapper.children) == 1
                subtree = wrapper.children[0]
                assert subtree.span_id.startswith("s")
                assert subtree.parent_span_id == wrapper.span_id

    def test_caller_trace_context_is_honored_and_recorded(self):
        document = personnel_document(target_nodes=250)
        pattern = chain()
        context = TraceContext.new()
        with ShardedDatabase(document, shards=2) as sharded:
            plan = sharded.optimize(pattern).plan
            before = sharded.tracer.recorded
            execution = sharded.execute(plan, pattern, spans=True,
                                        trace_context=context)
            span = execution.span
            assert span is not None
            assert span.trace_id == context.trace_id
            assert sharded.tracer.recorded == before + 1
            assert sharded.tracer.traces()[-1] is span
            # the trace round-trips through JSON (the /traces payload)
            payload = json.loads(json.dumps(span.to_dict()))
            rebuilt = Span.from_dict(payload)
            assert (subtree_counter_sums(rebuilt)
                    == subtree_counter_sums(span))

    def test_untraced_execution_carries_no_span(self):
        document = personnel_document(target_nodes=250)
        pattern = chain()
        with ShardedDatabase(document, shards=2) as sharded:
            plan = sharded.optimize(pattern).plan
            before = sharded.tracer.recorded
            execution = sharded.execute(plan, pattern)
            assert execution.span is None
            assert sharded.tracer.recorded == before


# -- merged-statistics provenance -----------------------------------------


class TestStatisticsProvenance:
    def test_fractions_partition_the_merged_mass(self):
        document = personnel_document(target_nodes=300)
        partition = partition_document(document, 3)
        provenance = partition.statistics_provenance(
            tags=["manager", "employee", "name"])
        assert set(provenance) == {"manager", "employee", "name"}
        histogram = document.tag_histogram()
        for tag, entries in provenance.items():
            assert entries, tag
            assert sum(entry["fraction"] for entry in entries) == (
                pytest.approx(1.0))
            # the replicated root is excluded, so per-shard counts sum
            # to the corpus total for non-root tags
            assert (sum(entry["count"] for entry in entries)
                    == histogram[tag])

    def test_sharded_explain_renders_provenance(self):
        document = personnel_document(target_nodes=250)
        with ShardedDatabase(document, shards=2) as sharded:
            report = sharded.explain("//manager//employee/name")
            assert report.shards is not None
            assert report.shards["count"] == 2
            rendered = report.render()
            assert "statistics[employee]" in rendered
            assert "shard[0]" in rendered
            assert report.to_dict()["shards"]["statistics_provenance"]


# -- write-path spans and histograms --------------------------------------


class TestWritePathInstrumentation:
    def test_commit_records_staged_span(self):
        database = Database.from_document(
            parse_xml(PERSONNEL_XML, name="pers"))
        before = database.tracer.recorded
        with database.transaction() as txn:
            txn.append_document(parse_xml(WIDGETS_XML))
        assert database.tracer.recorded == before + 1
        span = database.tracer.traces()[-1]
        assert span.name == "commit"
        assert span.trace_id
        assert span.span_id.startswith("t")
        stages = [child.name for child in span.children]
        assert stages == ["validate", "cow", "wal", "publish"]
        wal_span = span.children[2]
        assert [child.name for child in wal_span.children] == ["fsync"]
        metrics = database.transactions.metrics
        assert metrics.commit_seconds > 0
        assert metrics.validate_seconds > 0
        assert metrics.cow_seconds > 0
        assert metrics.wal_seconds >= metrics.fsync_seconds >= 0
        assert database.transactions.commit_latency.count == 1
        assert database.transactions.commit_bytes.count == 1
        assert database.transactions.commit_bytes.total > 0

    def test_wal_fsync_histogram_fills_on_durable_commits(
            self, tmp_path):
        database = create_database(tmp_path / "db", xml=PERSONNEL_XML)
        with database.transaction() as txn:
            txn.append_document(parse_xml(WIDGETS_XML))
        stats = database.transactions.wal.stats
        assert stats.syncs >= 1
        assert stats.fsync_latency.count == stats.syncs
        assert stats.sync_seconds > 0
        assert stats.last_sync_seconds > 0
        text = database.service.export_metrics("prometheus")
        assert "repro_wal_fsync_seconds_bucket" in text
        assert f"repro_wal_fsync_seconds_count {stats.syncs}" in text
        assert "repro_txn_commit_seconds_count 1" in text
        assert "repro_txn_commit_wal_bytes_count 1" in text

    def test_recovery_timing_surfaces_as_gauges(self, tmp_path):
        database = create_database(tmp_path / "db", xml=PERSONNEL_XML)
        with database.transaction() as txn:
            txn.append_document(parse_xml(WIDGETS_XML))
        reopened = open_database(tmp_path / "db")
        recovery = reopened.transactions.last_recovery
        assert recovery.seconds > 0
        assert reopened.transactions.metrics.recovery_seconds == (
            pytest.approx(recovery.seconds))
        text = reopened.service.export_metrics("prometheus")
        assert "repro_recovery_clean 1" in text
        assert f"repro_recovery_replayed_pages "\
               f"{recovery.replayed_pages}" in text

    def test_checkpoint_records_span_and_seconds(self, tmp_path):
        database = create_database(tmp_path / "db", xml=PERSONNEL_XML)
        with database.transaction() as txn:
            txn.append_document(parse_xml(WIDGETS_XML))
        database.transactions.checkpoint()
        span = database.tracer.traces()[-1]
        assert span.name == "checkpoint"
        assert span.span_id.startswith("ckpt-")
        assert database.transactions.metrics.checkpoint_seconds > 0


# -- SLO tracking ---------------------------------------------------------


class TestSLOTracker:
    def test_compliance_and_burn_rates(self):
        tracker = SLOTracker((
            SLObjective(name="lat", indicator="latency", target=0.9,
                        threshold_seconds=0.1),
        ))
        for _ in range(8):
            tracker.observe_query(0.01)
        tracker.observe_query(0.5)
        tracker.observe_query(0.5)
        entry = tracker.snapshot()["objectives"][0]
        assert entry["events"] == 10
        assert entry["bad"] == 2
        assert entry["compliance"] == pytest.approx(0.8)
        assert entry["met"] is False
        # 20% bad against a 10% budget burns at 2x
        assert entry["burn_rate"] == pytest.approx(2.0)
        assert entry["recent_burn_rate"] == pytest.approx(2.0)

    def test_errors_violate_latency_objectives_too(self):
        tracker = SLOTracker(DEFAULT_OBJECTIVES)
        tracker.observe_query(0.001, error=True)
        by_name = {entry["name"]: entry
                   for entry in tracker.snapshot()["objectives"]}
        assert by_name["query_errors"]["bad"] == 1
        assert by_name["query_latency_p99"]["bad"] == 1
        # an errored query never yielded a first result: bad for the
        # time-to-first objective even without a measurement
        assert by_name["time_to_first_result"]["bad"] == 1
        # a good query without a measurement neither helps nor hurts
        tracker.observe_query(0.001)
        by_name = {entry["name"]: entry
                   for entry in tracker.snapshot()["objectives"]}
        assert by_name["time_to_first_result"]["events"] == 1
        assert by_name["query_latency_p99"]["events"] == 2

    def test_exemplars_link_buckets_to_traces(self):
        tracker = SLOTracker(DEFAULT_OBJECTIVES)
        tracker.observe_query(0.003, trace_id="abc123")
        tracker.observe_query(0.004, trace_id="def456")
        tracker.observe_query(30.0, trace_id="slow789")
        tracker.observe_query(0.2, trace_id="err000", error=True)
        exemplars = {entry["bucket_le"]: entry["trace_id"]
                     for entry in tracker.snapshot()["exemplars"]}
        # same bucket: the most recent exemplar wins; errors never
        # become exemplars (their trace would not show a good query)
        assert "def456" in exemplars.values()
        assert "abc123" not in exemplars.values()
        assert exemplars.get("+Inf") == "slow789"
        assert "err000" not in exemplars.values()

    def test_collect_sets_gauge_families(self):
        registry = MetricsRegistry()
        tracker = SLOTracker(DEFAULT_OBJECTIVES)
        tracker.observe_query(0.01)
        tracker.collect(registry)
        text = registry.to_prometheus()
        assert ('repro_slo_error_budget_burn{objective='
                '"query_latency_p99"}') in text
        assert 'window="recent"' in text
        assert ('repro_slo_compliance_ratio{objective='
                '"query_errors"} 1' in text)

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", indicator="nope", target=0.5)
        with pytest.raises(ValueError):
            SLObjective(name="x", indicator="latency", target=1.0,
                        threshold_seconds=0.1)
        with pytest.raises(ValueError):
            SLObjective(name="x", indicator="latency", target=0.5)
        with pytest.raises(ValueError):
            SLOTracker(())
        objective = SLObjective(name="x", indicator="latency",
                                target=0.9, threshold_seconds=1.0)
        with pytest.raises(ValueError):
            SLOTracker((objective, objective))


class TestServiceObservability:
    def test_traced_service_queries_feed_slo_and_traces(self):
        database = Database.from_document(
            parse_xml(PERSONNEL_XML, name="pers"),
            service_options={"trace_sample": 1})
        service = database.service
        service.query("//manager//employee/name")
        assert len(service.traces()) == 1
        trace = service.traces()[0]
        assert trace["trace_id"]
        snapshot = service.snapshot()
        by_name = {entry["name"]: entry
                   for entry in snapshot["slo"]["objectives"]}
        assert by_name["query_latency_p99"]["events"] == 1
        assert by_name["query_errors"]["bad"] == 0
        # the exemplar joins the latency bucket to the kept trace
        exemplars = snapshot["slo"]["exemplars"]
        assert [entry["trace_id"] for entry in exemplars] == [
            trace["trace_id"]]
        json.dumps(snapshot["slo"])  # the /slo payload is JSON-able

    def test_query_errors_burn_the_error_budget(self):
        database = Database.from_document(
            parse_xml(PERSONNEL_XML, name="pers"))
        service = database.service
        with pytest.raises(ReproError):
            service.query("//manager[")
        by_name = {entry["name"]: entry
                   for entry in service.slo.snapshot()["objectives"]}
        assert by_name["query_errors"]["bad"] == 1
        assert by_name["query_errors"]["burn_rate"] > 1.0

    def test_trace_sampling_is_one_in_n(self):
        database = Database.from_document(
            parse_xml(PERSONNEL_XML, name="pers"),
            service_options={"trace_sample": 3})
        service = database.service
        for _ in range(6):
            service.query("//manager/name")
        assert len(service.traces()) == 2

    def test_untraced_service_keeps_tracer_empty(self):
        database = Database.from_document(
            parse_xml(PERSONNEL_XML, name="pers"))
        database.service.query("//manager/name")
        assert database.tracer.recorded == 0


# -- query-log drop accounting --------------------------------------------


class TestQueryLogDrops:
    def test_drop_warns_once_and_counts_every_loss(self, tmp_path):
        log = QueryLog(tmp_path / "q.jsonl")
        try:
            def always_full(_record):
                raise queue.Full

            log._queue.put_nowait = always_full
            with pytest.warns(RuntimeWarning,
                              match="dropping records"):
                log.record({"query": "//a"})
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                log.record({"query": "//b"})
            assert log.dropped == 2
        finally:
            log.close()

    def test_service_collector_exports_drop_counter(self, tmp_path):
        database = Database.from_document(
            parse_xml(PERSONNEL_XML, name="pers"))
        log = QueryLog(tmp_path / "q.jsonl")
        database.attach_query_log(log)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                log._count_drop("test")
                log._count_drop("test")
            text = database.service.export_metrics("prometheus")
            assert "repro_querylog_dropped_total 2" in text
            # the counter is a delta mirror: re-exporting must not
            # double-count old drops
            text = database.service.export_metrics("prometheus")
            assert "repro_querylog_dropped_total 2" in text
        finally:
            log.close()


# -- bucket recorder ------------------------------------------------------


class TestBucketRecorder:
    def test_observe_and_mirror(self):
        recorder = BucketRecorder((0.1, 1.0))
        recorder.observe(0.05)
        recorder.observe(0.5)
        recorder.observe(5.0)
        assert recorder.count == 3
        assert recorder.total == pytest.approx(5.55)
        registry = MetricsRegistry()
        histogram = registry.histogram("test_seconds", "t",
                                       buckets=(0.1, 1.0))
        recorder.mirror_into(histogram)
        text = registry.to_prometheus()
        assert 'test_seconds_bucket{le="0.1"} 1' in text
        assert 'test_seconds_bucket{le="1"} 2' in text
        assert 'test_seconds_bucket{le="+Inf"} 3' in text
        assert "test_seconds_count 3" in text
