"""Optimizer introspection: plan-space traces, what-if, forensics.

The keystone property test uses the plan-space trace as an oracle:
for every random pattern of <= 4 nodes, the DP winner's cost must
equal the minimum over a brute-force DFS of the *entire* move space
(no memoization, no pruning), and the trace must contain every memo
entry plus a winner digest that round-trips to the executed plan.
"""

import io
import random

import pytest

from repro.api import Database
from repro.core.cost import CostFactors, CostModel
from repro.core.enumeration import (EnumerationContext,
                                    estimate_plan_cost, possible_moves)
from repro.core.planspace import (FAMILIES, PlanSpaceRecorder,
                                  plan_cost_breakdown)
from repro.core.status import Status
from repro.errors import PlanError
from repro.obs.planspace import (build_plan_space_report,
                                 parse_plan_digest, plan_digest_diff,
                                 plan_from_digest)
from repro.service.cache import canonical_plan_digest
from repro.workloads.generators import random_pattern

SMALL_XML = (
    "<a>"
    + "".join("<b>" + "<c/>" * 3 + "<d/>" * 2 + "</b>"
              for _ in range(5))
    + "<c><d/><a><b/></a></c>"
    + "</a>"
)

ALGORITHMS = ("DP", "DPP", "DPP'", "DPAP-EB", "DPAP-LD", "FP")


@pytest.fixture(scope="module")
def database():
    return Database.from_xml(SMALL_XML)


def exhaustive_minimum(context: EnumerationContext) -> float:
    """Min final cost by brute-force DFS over every move sequence."""
    best = [float("inf")]

    def dfs(status: Status, cost: float) -> None:
        if status.is_final():
            best[0] = min(best[0], cost)
            return
        for move in possible_moves(status, context):
            dfs(move.result, cost + move.cost)

    dfs(Status.start(context.pattern), context.start_cost())
    return best[0]


class TestDPOptimalityOracle:
    """DP winner == exhaustive minimum, witnessed by the trace."""

    @pytest.mark.parametrize("seed", range(30))
    def test_dp_matches_exhaustive_enumeration(self, database, seed):
        rng = random.Random(seed)
        pattern = random_pattern(rng, min_nodes=2, max_nodes=4)
        recorder = PlanSpaceRecorder()
        result = database.optimize(pattern, algorithm="DP",
                                   planspace=recorder)
        context = EnumerationContext(pattern, database.cost_model,
                                     database.estimator)
        floor = exhaustive_minimum(context)
        assert result.estimated_cost == pytest.approx(floor, rel=1e-9)

        # the trace holds every memo entry DP materialized ...
        assert recorder.memo_size == result.report.statuses_generated
        assert recorder.memo_dropped == 0
        # ... and the winner digest matches the executed plan's
        report = build_plan_space_report(recorder)
        assert report.winner_digest == canonical_plan_digest(
            result.plan, pattern)
        assert report.winner_cost == pytest.approx(
            result.estimated_cost)
        # every ranked alternative is costed at or above the winner
        for alternative in report.alternatives:
            assert alternative.cost >= report.winner_cost - 1e-9
            assert alternative.delta == pytest.approx(
                alternative.cost - report.winner_cost)

    @pytest.mark.parametrize("seed", range(10))
    def test_final_moves_all_reach_exhaustive_floor(self, database,
                                                    seed):
        """No recorded full plan undercuts the proven optimum."""
        rng = random.Random(1000 + seed)
        pattern = random_pattern(rng, min_nodes=2, max_nodes=4)
        recorder = PlanSpaceRecorder()
        result = database.optimize(pattern, algorithm="DP",
                                   planspace=recorder)
        assert recorder.finals
        costs = [cost for _, cost, _ in recorder.finals]
        assert min(costs) == pytest.approx(result.estimated_cost)


class TestRecorderAcrossAlgorithms:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_recorder_populates_and_winner_digest_matches(
            self, database, algorithm):
        pattern = database.compile("//a//b/c")
        recorder = PlanSpaceRecorder()
        result = database.optimize(pattern, algorithm=algorithm,
                                   planspace=recorder)
        assert recorder.winner is result.plan
        assert recorder.candidates_enumerated > 0
        assert recorder.memo_size > 0
        report = build_plan_space_report(recorder, query="//a//b/c")
        # DPP' runs through the DPP class and reports its class name
        assert report.algorithm == algorithm.rstrip("'")
        assert report.winner_digest == canonical_plan_digest(
            result.plan, pattern)
        rendered = report.render()
        assert "winner:" in rendered
        assert "memo:" in rendered

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_recorder_off_is_default_and_identical(self, database,
                                                   algorithm):
        pattern = database.compile("//a//b/c")
        plain = database.optimize(pattern, algorithm=algorithm)
        recorder = PlanSpaceRecorder()
        traced = database.optimize(pattern, algorithm=algorithm,
                                   planspace=recorder)
        assert plain.estimated_cost == pytest.approx(
            traced.estimated_cost)
        assert canonical_plan_digest(plain.plan, pattern) == \
            canonical_plan_digest(traced.plan, pattern)

    def test_candidate_breakdowns_sum_to_move_cost(self, database):
        pattern = database.compile("//a/b[d]/c")
        recorder = PlanSpaceRecorder()
        database.optimize(pattern, algorithm="DPP",
                          planspace=recorder)
        checked = 0
        for candidate in recorder.candidates:
            breakdown = candidate.get("breakdown")
            if breakdown is None:
                continue
            checked += 1
            assert sum(breakdown.values()) == pytest.approx(
                candidate["move_cost"], abs=1e-6)
            assert set(breakdown) == set(FAMILIES)
        assert checked > 0


class TestDigestForensics:
    @pytest.mark.parametrize("seed", range(20))
    def test_digest_round_trip(self, database, seed):
        rng = random.Random(2000 + seed)
        pattern = random_pattern(rng, min_nodes=2, max_nodes=5)
        result = database.optimize(pattern, algorithm="DPP")
        digest = canonical_plan_digest(result.plan, pattern)
        rebuilt = plan_from_digest(digest, pattern)
        assert canonical_plan_digest(rebuilt, pattern) == digest
        context = EnumerationContext(pattern, database.cost_model,
                                     database.estimator)
        assert estimate_plan_cost(rebuilt, context) == pytest.approx(
            result.estimated_cost)

    def test_parse_rejects_garbage(self):
        with pytest.raises(PlanError):
            parse_plan_digest("totally(not(a digest")

    def test_reconstruction_rejects_foreign_digest(self, database):
        pattern = database.compile("//a/b")
        with pytest.raises(PlanError):
            plan_from_digest("scan(7)", pattern)

    def test_diff_of_identical_digests_is_empty(self, database):
        pattern = database.compile("//a//b/c")
        digest = canonical_plan_digest(
            database.optimize(pattern, algorithm="DPP").plan, pattern)
        diff = plan_digest_diff(digest, digest)
        assert diff["removed"] == [] and diff["added"] == []
        assert diff["unchanged"] > 0

    def test_diff_reports_operator_movement(self, database):
        pattern = database.compile("//a//b/c")
        recorder = PlanSpaceRecorder()
        database.optimize(pattern, algorithm="DP",
                          planspace=recorder)
        report = build_plan_space_report(recorder, top_k=5)
        assert report.alternatives, "DP should surface alternatives"
        diff = plan_digest_diff(report.winner_digest,
                                report.alternatives[0].digest)
        assert diff["removed"] or diff["added"]


class TestWhatIf:
    def test_whatif_is_pure(self, database):
        epoch = database.statistics_epoch
        factors = database.cost_factors
        result = database.whatif("//a//b/c",
                                 factors=CostFactors(1, 99, 0.5, 1),
                                 tag_scale={"c": 7.0})
        assert database.statistics_epoch == epoch
        assert database.cost_factors == factors
        assert result.query == "//a//b/c"
        assert set(result.crossover) == set(FAMILIES)

    def test_whatif_flip_carries_diff_and_crossover(self, database):
        # cranking f_sort and flooring f_io reprices blocking plans;
        # a branchy pattern has genuinely different orderings to flip to
        result = database.whatif("//b[d]/c",
                                 factors=CostFactors(1.0, 500.0,
                                                     0.01, 1.0))
        assert result.flipped
        assert result.diff["removed"] or result.diff["added"]
        assert any(abs(v) > 0 for v in result.crossover.values())
        assert result.baseline_cost_under_hypothesis >= \
            result.hypothetical_cost - 1e-9
        assert "FLIP" in result.render()

    def test_whatif_forced_plan_is_repriced(self, database):
        pattern = database.compile("//a//b/c")
        recorder = PlanSpaceRecorder()
        database.optimize(pattern, algorithm="DP",
                          planspace=recorder)
        report = build_plan_space_report(recorder, top_k=1)
        assert report.alternatives
        forced = report.alternatives[0].digest
        result = database.whatif("//a//b/c", force_plan=forced)
        assert result.forced_digest == forced
        assert result.forced_cost_under_hypothesis == pytest.approx(
            report.alternatives[0].cost)

    def test_whatif_hypothetical_never_beats_exhaustive(self, database):
        """The hypothetical winner is optimal under its own model."""
        factors = CostFactors(2.0, 5.0, 3.0, 0.5)
        result = database.whatif("//a//b/c", factors=factors)
        pattern = database.compile("//a//b/c")
        context = EnumerationContext(pattern, CostModel(factors),
                                     database.estimator)
        assert result.hypothetical_cost == pytest.approx(
            exhaustive_minimum(context), rel=1e-9)


class TestAuditWhy:
    def test_flip_forensics_carry_diff_and_crossover(self, database):
        from repro.obs.audit import audit_records

        pattern = database.compile("//a//b/c")
        recorder = PlanSpaceRecorder()
        result = database.optimize(pattern, algorithm="DP",
                                   planspace=recorder)
        report = build_plan_space_report(recorder, top_k=1)
        assert report.alternatives
        # log the runner-up as if it had been chosen: the audit must
        # flag the flip and explain it against current statistics
        record = {"query": "//a//b/c", "algorithm": "DP",
                  "plan": "logged", "plan_digest":
                      report.alternatives[0].digest,
                  "estimated_cost": report.alternatives[0].cost,
                  "trace_id": "trace-1"}
        audit = audit_records(database, [record], why=True)
        assert audit.plan_flips == 1
        entry = audit.entries[0]
        assert entry.why is not None
        assert entry.why["diff"]["removed"] or \
            entry.why["diff"]["added"]
        assert set(entry.why["crossover"]) == set(FAMILIES)
        assert entry.why["regret"] == pytest.approx(
            entry.why["logged_cost_now"] - result.estimated_cost)
        rendered = audit.render()
        assert "diff:" in rendered and "crossover:" in rendered
        assert entry.to_dict()["why"]["crossover"]

    def test_unflipped_entries_carry_no_why(self, database):
        from repro.obs.audit import audit_records

        pattern = database.compile("//a//b/c")
        result = database.optimize(pattern, algorithm="DPP")
        record = {"query": "//a//b/c", "algorithm": "DPP",
                  "plan": result.plan.signature(),
                  "plan_digest": canonical_plan_digest(result.plan,
                                                       pattern),
                  "estimated_cost": result.estimated_cost}
        audit = audit_records(database, [record], why=True)
        assert audit.plan_flips == 0
        assert audit.entries[0].why is None

    def test_bad_logged_digest_degrades_to_note(self, database):
        from repro.obs.audit import audit_records

        record = {"query": "//a//b/c", "algorithm": "DPP",
                  "plan": "old", "plan_digest": "scan(99)",
                  "estimated_cost": 1.0}
        audit = audit_records(database, [record], why=True)
        assert audit.plan_flips == 1
        assert "note" in audit.entries[0].why


class TestExplainIntegration:
    def test_explain_plan_space_and_trace_id_in_json(self, database):
        report = database.explain("//a//b/c", plan_space=True,
                                  top_k=2)
        payload = report.to_dict()
        assert "trace_id" in payload
        assert payload["plan_space"]["winner"]["digest"]
        assert len(payload["plan_space"]["alternatives"]) <= 2
        assert "plan space" in report.render()

    def test_explain_analyze_keeps_plan_space(self, database):
        report = database.explain("//a//b/c", analyze=True,
                                  plan_space=True)
        assert report.plan_space is not None
        assert report.to_dict()["trace_id"] == report.trace_id

    def test_explain_without_flag_has_no_plan_space(self, database):
        report = database.explain("//a//b/c")
        assert report.plan_space is None
        assert "plan_space" not in report.to_dict()

    def test_plan_space_report_contains_every_memo_entry(self,
                                                         database):
        pattern = database.compile("//a/b[c]/d")
        recorder = PlanSpaceRecorder()
        result = database.optimize(pattern, algorithm="DP",
                                   planspace=recorder)
        report = build_plan_space_report(recorder)
        assert report.memo_size == result.report.statuses_generated
        assert len(recorder.memo_entries) == report.memo_size


class TestServiceIntegration:
    def test_optimizer_counters_flow_into_registry(self, database):
        from repro.service.service import QueryService

        service = QueryService(database)
        service.query("//a//b/c", algorithm="DPP")
        text = service.export_metrics()
        assert "repro_optimizer_plans_considered_total" in text
        assert 'algorithm="DPP"' in text
        assert "repro_optimizer_memo_hits_total" in text

    def test_planspace_ring_samples_cache_misses(self, database):
        from repro.service.service import QueryService

        service = QueryService(database, planspace_sample=1)
        service.query("//a//b/c", algorithm="DPP")
        service.query("//a//b/c", algorithm="DPP")  # cache hit
        service.query("//b/c", algorithm="DP")
        ring = service.planspace()
        assert len(ring) == 2  # one per miss, none for the hit
        for entry in ring:
            assert entry["winner"]["digest"]
            assert "pruning" in entry

    def test_planspace_ring_empty_without_sampling(self, database):
        from repro.service.service import QueryService

        service = QueryService(database)
        service.query("//a//b/c")
        assert service.planspace() == []


class TestPlanCostBreakdown:
    @pytest.mark.parametrize("algorithm", ("DP", "FP"))
    def test_breakdown_families_sum_to_plan_cost(self, database,
                                                 algorithm):
        pattern = database.compile("//a//b/c")
        result = database.optimize(pattern, algorithm=algorithm)
        breakdown = plan_cost_breakdown(result.plan,
                                        database.cost_factors)
        assert set(breakdown) == set(FAMILIES)
        assert sum(breakdown.values()) == pytest.approx(
            result.estimated_cost, rel=1e-6)


class TestHealthzEndpoint:
    def test_healthz_and_planspace_routes(self):
        import json as jsonlib
        import urllib.request

        from repro.cli import _open_database, build_parser
        from repro.server import QueryServer, ServerConfig

        arguments = build_parser().parse_args(
            ["stats", "--dataset", "pers", "--nodes", "400",
             "--planspace-sample", "1"])
        database = _open_database(arguments)
        database.service_options.update({"planspace_sample": 1})
        database.query_many(["//manager/name"])

        out = io.StringIO()
        server = QueryServer(database, ServerConfig(port=0), out=out)
        host, port = server.start()
        try:
            with urllib.request.urlopen(
                    f"http://{host}:{port}/healthz",
                    timeout=5.0) as response:
                assert response.status == 200
                health = jsonlib.loads(response.read())
            assert health["status"] == "ok"
            assert health["uptime_seconds"] >= 0.0
            assert "statistics_epoch" in health
            assert health["inflight"] == 0
            with urllib.request.urlopen(
                    f"http://{host}:{port}/planspace",
                    timeout=5.0) as response:
                payload = jsonlib.loads(response.read())
            assert payload["planspace"]
            assert payload["planspace"][0]["winner"]["digest"]
        finally:
            server.stop()
        assert server.exit_code == 0


class TestCLISurface:
    def test_explain_plan_space_flag(self):
        from tests.test_cli import run_cli

        code, output = run_cli(
            "explain", "--dataset", "pers", "--nodes", "400",
            "--plan-space", "--top-k", "2",
            "//manager//employee/name")
        assert code == 0
        assert "plan space for" in output
        assert "winner:" in output

    def test_whatif_verb(self):
        from tests.test_cli import run_cli

        code, output = run_cli(
            "whatif", "--dataset", "pers", "--nodes", "400",
            "--factor", "f_io=64", "--scale", "employee=4",
            "//manager//employee/name")
        assert code == 0
        assert "what-if" in output

    def test_whatif_rejects_bad_factor(self, capsys):
        from tests.test_cli import run_cli

        code, __ = run_cli(
            "whatif", "--dataset", "pers", "--nodes", "400",
            "--factor", "f_warp=9", "//manager/name")
        assert code == 1
        assert "unknown cost factor" in capsys.readouterr().err

    def test_audit_why_flags_perturbed_factors(self, tmp_path):
        from tests.test_cli import run_cli

        log_path = str(tmp_path / "wl.jsonl")
        code, __ = run_cli(
            "log", "--dataset", "pers", "--nodes", "400",
            "--serve", "1", "--output", log_path)
        assert code == 0
        code, output = run_cli(
            "audit", "--dataset", "pers", "--nodes", "400",
            "--log", log_path, "--why",
            "--factor", "f_sort=50", "--factor", "f_io=0.05")
        assert code == 3, "perturbed factors must flip plans"
        assert "diff:" in output
        assert "crossover:" in output
