"""Unit tests for XmlDocument navigation and validation."""

import pytest

from repro.errors import DocumentError
from repro.document.document import XmlDocument, merge_documents
from repro.document.node import NodeRecord, Region
from repro.document.parser import parse_xml


@pytest.fixture
def document():
    return parse_xml("<a><b><c/><d/></b><e><f/></e></a>")


class TestNavigation:
    def test_root(self, document):
        assert document.root.tag == "a"

    def test_node_lookup(self, document):
        assert document.node(0).tag == "a"
        assert document.node(3).tag == "d"
        with pytest.raises(DocumentError):
            document.node(99)

    def test_parent_and_children(self, document):
        b = document.node(1)
        assert document.parent(b).tag == "a"
        assert [child.tag for child in document.children(b)] == ["c", "d"]
        assert document.parent(document.root) is None

    def test_descendants_in_document_order(self, document):
        b = document.node(1)
        assert [node.tag for node in document.descendants(b)] == ["c", "d"]
        assert [node.tag for node in document.descendants(document.root)
                ] == ["b", "c", "d", "e", "f"]

    def test_subtree_includes_self(self, document):
        e = document.node(4)
        assert [node.tag for node in document.subtree(e)] == ["e", "f"]

    def test_ancestors_nearest_first(self, document):
        c = document.node(2)
        assert [node.tag for node in document.ancestors(c)] == ["b", "a"]

    def test_tags_and_counts(self, document):
        assert document.tags() == ["a", "b", "c", "d", "e", "f"]
        assert document.tag_count("c") == 1
        assert document.tag_count("zzz") == 0
        assert document.nodes_with_tag("zzz") == []

    def test_depth_and_histogram(self, document):
        assert document.depth() == 2
        assert document.tag_histogram()["a"] == 1


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(DocumentError, match="at least one node"):
            XmlDocument([])

    def test_unsorted_rejected(self):
        nodes = [
            NodeRecord(1, "b", Region(1, 1, 1), parent_id=0),
            NodeRecord(0, "a", Region(0, 1, 0)),
        ]
        with pytest.raises(DocumentError, match="sorted"):
            XmlDocument(nodes)

    def test_missing_parent_rejected(self):
        nodes = [
            NodeRecord(0, "a", Region(0, 1, 0)),
            NodeRecord(1, "b", Region(1, 1, 1), parent_id=7),
        ]
        with pytest.raises(DocumentError, match="missing parent"):
            XmlDocument(nodes)

    def test_bad_nesting_rejected(self):
        nodes = [
            NodeRecord(0, "a", Region(0, 0, 0)),
            NodeRecord(1, "b", Region(1, 1, 1), parent_id=0),
        ]
        with pytest.raises(DocumentError, match="not nested"):
            XmlDocument(nodes)

    def test_root_must_be_first(self):
        nodes = [
            NodeRecord(0, "a", Region(0, 1, 1), parent_id=-1),
            NodeRecord(1, "b", Region(1, 1, 2), parent_id=0),
        ]
        with pytest.raises(DocumentError, match="root"):
            XmlDocument(nodes)


class TestMerge:
    def test_merge_two_documents(self):
        first = parse_xml("<x><y/></x>")
        second = parse_xml("<p><q/><r/></p>")
        merged = merge_documents([first, second], root_tag="all")
        assert [node.tag for node in merged] == [
            "all", "x", "y", "p", "q", "r"]
        assert merged.node(3).parent_id == 0
        assert merged.node(4).level == 2

    def test_merge_empty_rejected(self):
        with pytest.raises(DocumentError):
            merge_documents([])

    def test_merge_preserves_structure_queries(self):
        base = parse_xml("<x><y><z/></y></x>")
        merged = merge_documents([base, base, base])
        assert merged.tag_count("z") == 3
        for z in merged.nodes_with_tag("z"):
            chain = [node.tag for node in merged.ancestors(z)]
            assert chain == ["y", "x", "collection"]
