"""Property-based tests (hypothesis) for the storage substrate.

* pages: any sequence of records that fits round-trips through the
  slotted layout and its byte serialization;
* element store: any document round-trips through encode/store/scan;
* buffer pool: arbitrary operation sequences agree with a trivial
  reference model (dict of page contents) and never exceed capacity.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.pages import PAGE_SIZE, Page
from repro.storage.store import decode_node, encode_node

from tests.conftest import random_document


class TestPageProperties:
    @given(st.lists(st.binary(min_size=0, max_size=300), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_any_records(self, records):
        page = Page(0)
        kept = []
        for record in records:
            if len(record) > page.free_space:
                break
            page.insert(record)
            kept.append(record)
        assert page.records() == kept
        clone = Page(0, bytearray(page.to_bytes()))
        assert clone.records() == kept

    @given(st.lists(st.binary(min_size=1, max_size=200), min_size=1,
                    max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_free_space_accounting(self, records):
        page = Page(0)
        for record in records:
            if len(record) > page.free_space:
                break
            before = page.free_space
            page.insert(record)
            assert page.free_space == before - len(record) - 4
        assert page.free_space >= 0
        assert len(page.to_bytes()) == PAGE_SIZE


class TestStoreProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_node_encoding_roundtrip(self, seed):
        document = random_document(seed % 100, size=20)
        for node in document:
            assert decode_node(encode_node(node)) == node


class TestBufferPoolModel:
    @given(st.lists(
        st.tuples(st.sampled_from(("fetch", "write", "flush")),
                  st.integers(min_value=0, max_value=5)),
        max_size=60),
        st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_pool_agrees_with_reference_model(self, operations,
                                              capacity):
        disk = InMemoryDisk()
        pool = BufferPool(disk, capacity=capacity)
        page_ids = [disk.allocate() for _ in range(6)]
        model: dict[int, list[bytes]] = {pid: [] for pid in page_ids}
        counter = 0

        for action, index in operations:
            page_id = page_ids[index]
            if action == "fetch":
                page = pool.fetch(page_id)
                assert page.records() == model[page_id]
                pool.unpin(page_id)
            elif action == "write":
                page = pool.fetch(page_id)
                payload = f"rec-{counter}".encode()
                counter += 1
                if len(payload) <= page.free_space:
                    page.insert(payload)
                    model[page_id].append(payload)
                pool.unpin(page_id, dirty=True)
            else:
                pool.flush()
            assert len(pool) <= capacity

        pool.flush()
        for page_id in page_ids:
            assert disk.read_page(page_id).records() == model[page_id]
