"""Property-based tests (hypothesis) for the core invariants.

Strategies generate random tree documents and random tree patterns;
the properties assert the load-bearing facts of the system:

* region encodings built by the builder always satisfy the nesting
  invariants the join operators rely on;
* parse/serialize round-trips preserve the node table;
* stack-tree joins agree with a brute-force oracle on any document;
* every optimizer produces a plan whose execution equals the oracle,
  and DP == DPP on estimated cost (optimality).
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.api import Database
from repro.core.optimizer import get_optimizer
from repro.core.pattern import QueryPattern
from repro.core.plans import validate_plan
from repro.document.builder import DocumentBuilder
from repro.document.parser import parse_xml
from repro.document.serialize import serialize
from repro.engine.nestedloop import naive_pattern_matches
from repro.estimation.estimator import (ExactEstimator,
                                        count_containment_pairs)

TAGS = ("a", "b", "c")


@st.composite
def tree_documents(draw, max_nodes=25):
    """Random region-encoded documents over a tiny tag alphabet."""
    actions = draw(st.lists(
        st.tuples(st.sampled_from(("open", "close")),
                  st.sampled_from(TAGS)),
        min_size=1, max_size=max_nodes * 2))
    builder = DocumentBuilder(name="prop")
    builder.start_element("r")
    depth = 1
    nodes = 1
    for action, tag in actions:
        if action == "open" and nodes < max_nodes:
            builder.start_element(tag)
            depth += 1
            nodes += 1
        elif action == "close" and depth > 1:
            builder.end_element()
            depth -= 1
    while depth:
        builder.end_element()
        depth -= 1
    return builder.finish()


@st.composite
def tree_patterns(draw, max_nodes=4):
    """Random connected tree patterns over the same alphabet."""
    size = draw(st.integers(min_value=1, max_value=max_nodes))
    tags = [draw(st.sampled_from(TAGS + ("r", "*")))
            for _ in range(size)]
    edges = []
    for child in range(1, size):
        parent = draw(st.integers(min_value=0, max_value=child - 1))
        axis = draw(st.sampled_from(("/", "//")))
        edges.append((parent, child, axis))
    return QueryPattern.build({"nodes": tags, "edges": edges})


def oracle_keys(document, pattern):
    return {tuple(binding[k].start for k in sorted(binding))
            for binding in naive_pattern_matches(document, pattern)}


class TestDocumentInvariants:
    @given(tree_documents())
    @settings(max_examples=60, deadline=None)
    def test_region_encoding_invariants(self, document):
        nodes = list(document)
        # unique, dense start positions in document order
        assert [n.start for n in nodes] == list(range(len(nodes)))
        for node in nodes:
            assert node.start <= node.end < len(nodes)
            parent = document.parent(node)
            if parent is not None:
                assert parent.is_parent_of(node)
        # any two regions are nested or disjoint, never interleaved
        for first in nodes:
            for second in nodes:
                if first.start < second.start <= first.end:
                    assert second.end <= first.end

    @given(tree_documents())
    @settings(max_examples=40, deadline=None)
    def test_serialize_parse_roundtrip(self, document):
        reparsed = parse_xml(serialize(document))
        assert [(n.tag, n.region, n.parent_id) for n in reparsed] == \
            [(n.tag, n.region, n.parent_id) for n in document]

    @given(tree_documents())
    @settings(max_examples=40, deadline=None)
    def test_descendant_navigation_matches_regions(self, document):
        for node in document:
            via_navigation = {d.start for d in document.descendants(node)}
            via_regions = {other.start for other in document
                           if node.is_ancestor_of(other)}
            assert via_navigation == via_regions


class TestJoinProperties:
    @given(tree_documents())
    @settings(max_examples=50, deadline=None)
    def test_containment_count_matches_bruteforce(self, document):
        ancs = [n.region for n in document.nodes_with_tag("a")]
        descs = [n.region for n in document.nodes_with_tag("b")]
        brute = sum(1 for a in ancs for d in descs if a.contains(d))
        assert count_containment_pairs(ancs, descs) == brute

    @given(tree_documents(), st.sampled_from(TAGS),
           st.sampled_from(TAGS), st.booleans())
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_stack_joins_match_oracle(self, document, anc_tag, desc_tag,
                                      use_anc):
        from repro.core.pattern import Axis, PatternNode
        from repro.engine.context import EngineContext
        from repro.engine.scan import IndexScan
        from repro.engine.stackjoin import (StackTreeAncJoin,
                                            StackTreeDescJoin)

        database = Database.from_document(document)
        engine = EngineContext(database.index, database.store, document)
        join_class = StackTreeAncJoin if use_anc else StackTreeDescJoin
        join = join_class(
            IndexScan(PatternNode(0, anc_tag), engine),
            IndexScan(PatternNode(1, desc_tag), engine),
            0, 1, Axis.DESCENDANT)
        got = {(r[0].start, r[1].start) for r in join.run()}
        expected = {
            (a.start, d.start)
            for a in document.nodes_with_tag(anc_tag)
            for d in document.nodes_with_tag(desc_tag)
            if a.is_ancestor_of(d)}
        assert got == expected


class TestOptimizerProperties:
    @given(tree_documents(max_nodes=20), tree_patterns(max_nodes=4),
           st.sampled_from(("DP", "DPP", "DPP'", "DPAP-EB", "DPAP-LD",
                            "FP")))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_optimized_plans_are_correct(self, document, pattern,
                                         algorithm):
        database = Database.from_document(document)
        result = database.optimize(pattern, algorithm=algorithm,
                                   exact=True)
        validate_plan(result.plan, pattern)
        execution = database.execute(result.plan, pattern)
        assert execution.canonical() == oracle_keys(document, pattern)

    @given(tree_documents(max_nodes=20), tree_patterns(max_nodes=4))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_dp_dpp_equal_optimum(self, document, pattern):
        estimator = ExactEstimator(document)
        dp = get_optimizer("DP").optimize(pattern, estimator)
        dpp = get_optimizer("DPP").optimize(pattern, estimator)
        assert abs(dp.estimated_cost - dpp.estimated_cost) < 1e-6 * max(
            1.0, dp.estimated_cost)

    @given(tree_documents(max_nodes=20), tree_patterns(max_nodes=4))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_heuristics_bounded_below_by_optimum(self, document,
                                                 pattern):
        estimator = ExactEstimator(document)
        optimum = get_optimizer("DP").optimize(pattern,
                                               estimator).estimated_cost
        for algorithm in ("DPAP-EB", "DPAP-LD", "FP"):
            cost = get_optimizer(algorithm).optimize(
                pattern, estimator).estimated_cost
            assert cost >= optimum - 1e-9

    @given(tree_documents(max_nodes=20), tree_patterns(max_nodes=4))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fp_plans_never_sort(self, document, pattern):
        estimator = ExactEstimator(document)
        result = get_optimizer("FP").optimize(pattern, estimator)
        assert result.plan.is_fully_pipelined


class TestHolisticProperties:
    @given(tree_documents(max_nodes=25), tree_patterns(max_nodes=4))
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_twigstack_matches_oracle(self, document, pattern):
        database = Database.from_document(document)
        result = database.holistic_query(pattern)
        assert result.canonical() == oracle_keys(document, pattern)
