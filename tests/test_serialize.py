"""Serializer tests, including the parse/serialize round-trip."""

import io

from repro.document.parser import parse_xml
from repro.document.serialize import (escape_attribute, escape_text,
                                      serialize, write_xml)


def roundtrip_equal(document):
    """Re-parse the serialized form and compare node tables."""
    reparsed = parse_xml(serialize(document))
    assert len(reparsed) == len(document)
    for original, copy in zip(document, reparsed):
        assert original.tag == copy.tag
        assert original.region == copy.region
        assert original.parent_id == copy.parent_id
        assert original.text == copy.text
        assert original.attributes == copy.attributes


class TestEscaping:
    def test_escape_text(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_escape_attribute_also_quotes(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"


class TestSerialize:
    def test_empty_element(self):
        assert serialize(parse_xml("<a/>")) == "<a/>\n"

    def test_text_element(self):
        assert serialize(parse_xml("<a>hi</a>")) == "<a>hi</a>\n"

    def test_attributes(self):
        out = serialize(parse_xml('<a k="v" n="2"/>'))
        assert out == '<a k="v" n="2"/>\n'

    def test_indentation(self):
        out = serialize(parse_xml("<a><b><c/></b></a>"))
        assert out == "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n"

    def test_write_xml_adds_declaration(self):
        stream = io.StringIO()
        write_xml(parse_xml("<a/>"), stream)
        assert stream.getvalue().startswith("<?xml")


class TestRoundTrip:
    def test_simple(self):
        roundtrip_equal(parse_xml("<a><b>x</b><c k='1'/></a>"))

    def test_personnel(self, small_document):
        roundtrip_equal(small_document)

    def test_special_characters(self):
        roundtrip_equal(parse_xml(
            '<a note="&lt;&amp;&quot;">x &lt; y &amp; z</a>'))

    def test_generated_workload(self):
        from repro.workloads import personnel_document

        roundtrip_equal(personnel_document(target_nodes=120, seed=5))
