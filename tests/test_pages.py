"""Unit tests for the slotted page layout."""

import pytest

from repro.errors import PageFullError, StorageError
from repro.storage.pages import PAGE_SIZE, Page


class TestPage:
    def test_fresh_page_is_empty(self):
        page = Page(0)
        assert page.slot_count == 0
        assert page.records() == []
        assert not page.dirty

    def test_insert_and_read_back(self):
        page = Page(0)
        slot = page.insert(b"hello")
        assert slot == 0
        assert page.record(0) == b"hello"
        assert page.dirty

    def test_multiple_records_in_order(self):
        page = Page(0)
        payloads = [f"record-{i}".encode() for i in range(10)]
        for payload in payloads:
            page.insert(payload)
        assert page.records() == payloads

    def test_free_space_decreases(self):
        page = Page(0)
        before = page.free_space
        page.insert(b"x" * 100)
        assert page.free_space < before - 100

    def test_page_full(self):
        page = Page(0)
        chunk = b"y" * 1000
        inserted = 0
        with pytest.raises(PageFullError):
            while True:
                page.insert(chunk)
                inserted += 1
        assert inserted == 8  # 8 * (1000 + 4-byte slot) fits in 8 KiB

    def test_zero_length_record(self):
        page = Page(0)
        page.insert(b"")
        assert page.record(0) == b""

    def test_bad_slot_rejected(self):
        page = Page(0)
        page.insert(b"a")
        with pytest.raises(StorageError):
            page.record(1)
        with pytest.raises(StorageError):
            page.record(-1)

    def test_serialization_roundtrip(self):
        page = Page(3)
        page.insert(b"alpha")
        page.insert(b"beta")
        clone = Page(3, bytearray(page.to_bytes()))
        assert clone.records() == [b"alpha", b"beta"]
        assert clone.slot_count == 2

    def test_wrong_size_rejected(self):
        with pytest.raises(StorageError):
            Page(0, bytearray(100))

    def test_page_size_constant(self):
        assert PAGE_SIZE == 8192
        assert len(Page(0).to_bytes()) == PAGE_SIZE
