"""End-to-end plan execution tests."""

import pytest

from repro.errors import PlanError
from repro.api import Database
from repro.core.pattern import Axis
from repro.core.plans import (IndexScanPlan, JoinAlgorithm, PhysicalPlan,
                              SortPlan, StructuralJoinPlan)
from repro.engine.context import EngineContext
from repro.engine.executor import Executor
from repro.engine.nestedloop import naive_pattern_matches


@pytest.fixture
def setup(small_document, running_example_pattern):
    database = Database.from_document(small_document)
    context = EngineContext(database.index, database.store,
                            small_document)
    return Executor(context, running_example_pattern), small_document


def fully_pipelined_plan() -> PhysicalPlan:
    """Hand-built FP plan for the running example, ordered by node 0."""
    left = StructuralJoinPlan(
        IndexScanPlan(1), IndexScanPlan(2), 1, 2, Axis.CHILD,
        JoinAlgorithm.STACK_TREE_ANC)           # ordered by 1
    right_inner = StructuralJoinPlan(
        IndexScanPlan(4), IndexScanPlan(5), 4, 5, Axis.CHILD,
        JoinAlgorithm.STACK_TREE_ANC)           # ordered by 4
    right = StructuralJoinPlan(
        IndexScanPlan(3), right_inner, 3, 4, Axis.CHILD,
        JoinAlgorithm.STACK_TREE_ANC)           # ordered by 3
    step1 = StructuralJoinPlan(
        IndexScanPlan(0), left, 0, 1, Axis.DESCENDANT,
        JoinAlgorithm.STACK_TREE_ANC)           # ordered by 0
    return StructuralJoinPlan(
        step1, right, 0, 3, Axis.DESCENDANT,
        JoinAlgorithm.STACK_TREE_ANC)           # ordered by 0


def blocking_plan() -> PhysicalPlan:
    """Left-deep plan with explicit sorts, same result set."""
    step1 = StructuralJoinPlan(
        IndexScanPlan(0), IndexScanPlan(1), 0, 1, Axis.DESCENDANT,
        JoinAlgorithm.STACK_TREE_DESC)          # ordered by 1
    step2 = StructuralJoinPlan(
        step1, IndexScanPlan(2), 1, 2, Axis.CHILD,
        JoinAlgorithm.STACK_TREE_DESC)          # ordered by 2
    step3 = StructuralJoinPlan(
        SortPlan(step2, 0), IndexScanPlan(3), 0, 3, Axis.DESCENDANT,
        JoinAlgorithm.STACK_TREE_DESC)          # ordered by 3
    step4 = StructuralJoinPlan(
        step3, IndexScanPlan(4), 3, 4, Axis.CHILD,
        JoinAlgorithm.STACK_TREE_DESC)          # ordered by 4
    return StructuralJoinPlan(
        step4, IndexScanPlan(5), 4, 5, Axis.CHILD,
        JoinAlgorithm.STACK_TREE_DESC)          # ordered by 5


class TestExecution:
    def test_fp_plan_matches_oracle(self, setup, running_example_pattern):
        executor, document = setup
        result = executor.execute(fully_pipelined_plan())
        oracle = naive_pattern_matches(document, running_example_pattern)
        expected = {tuple(b[k].start for k in sorted(b)) for b in oracle}
        assert result.canonical() == expected
        assert len(result) == len(oracle)

    def test_blocking_plan_same_results(self, setup,
                                        running_example_pattern):
        executor, document = setup
        fp_result = executor.execute(fully_pipelined_plan())
        blocking_result = executor.execute(blocking_plan())
        assert fp_result.canonical() == blocking_result.canonical()

    def test_metrics_reflect_plan_shape(self, setup):
        executor, __ = setup
        fp_metrics = executor.execute(fully_pipelined_plan()).metrics
        blocking_metrics = executor.execute(blocking_plan()).metrics
        assert fp_metrics.sort_count == 0
        assert blocking_metrics.sort_count == 1
        assert fp_metrics.buffered_results > 0    # STA joins buffer
        assert blocking_metrics.buffered_results == 0
        assert fp_metrics.join_count == 5
        assert blocking_metrics.join_count == 5

    def test_simulated_cost_positive_and_composed(self, setup):
        executor, __ = setup
        metrics = executor.execute(fully_pipelined_plan()).metrics
        assert metrics.simulated_cost() > 0
        assert metrics.index_items > 0
        assert metrics.wall_seconds > 0

    def test_bindings_view(self, setup):
        executor, __ = setup
        result = executor.execute(fully_pipelined_plan())
        bindings = result.bindings()
        assert len(bindings) == len(result)
        assert set(bindings[0].keys()) == set(range(6))

    def test_metrics_reset_between_runs(self, setup):
        executor, __ = setup
        first = executor.execute(fully_pipelined_plan()).metrics
        second = executor.execute(fully_pipelined_plan()).metrics
        assert second.index_items == first.index_items

    def test_unknown_plan_node_rejected(self, setup):
        executor, __ = setup

        class Strange(PhysicalPlan):
            def pattern_nodes(self):
                return frozenset({0})

        with pytest.raises(PlanError, match="unknown plan node"):
            executor.build(Strange(0))

    def test_buffer_statistics_collected(self, setup):
        executor, __ = setup
        metrics = executor.execute(fully_pipelined_plan()).metrics
        assert metrics.buffer_hits + metrics.buffer_misses > 0
