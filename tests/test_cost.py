"""Unit tests for the Sec. 2.2.2 cost model."""

import math

import pytest

from repro.errors import OptimizerError
from repro.core.cost import CostFactors, CostModel


@pytest.fixture
def model():
    return CostModel(CostFactors(f_index=1.0, f_sort=2.0, f_io=16.0,
                                 f_stack=1.0))


class TestFormulas:
    def test_index_access_linear(self, model):
        assert model.index_access(0) == 0.0
        assert model.index_access(100) == 100.0
        assert model.index_access(200) == 2 * model.index_access(100)

    def test_sort_n_log_n(self, model):
        assert model.sort(0) == 0.0
        assert model.sort(1) == 0.0
        assert model.sort(8) == pytest.approx(8 * 3 * 2.0)
        assert model.sort(1024) == pytest.approx(1024 * 10 * 2.0)

    def test_sort_accepts_fractional_cardinalities(self, model):
        estimated = model.sort(1000.5)
        assert estimated == pytest.approx(1000.5 * math.log2(1000.5) * 2.0)

    def test_stack_tree_desc(self, model):
        # 2 * |A| * f_st — independent of output size
        assert model.stack_tree_desc(50) == 100.0
        assert model.stack_tree_desc(0) == 0.0

    def test_stack_tree_anc(self, model):
        # 2 * |AB| * f_IO + 2 * |A| * f_st
        assert model.stack_tree_anc(50, 10) == pytest.approx(
            2 * 10 * 16.0 + 2 * 50 * 1.0)

    def test_anc_more_expensive_than_desc_with_output(self, model):
        assert model.stack_tree_anc(50, 1) > model.stack_tree_desc(50)

    def test_negative_inputs_rejected(self, model):
        with pytest.raises(OptimizerError):
            model.index_access(-1)
        with pytest.raises(OptimizerError):
            model.sort(-5)
        with pytest.raises(OptimizerError):
            model.stack_tree_desc(-1)
        with pytest.raises(OptimizerError):
            model.stack_tree_anc(1, -1)


class TestFactors:
    def test_defaults_are_positive(self):
        factors = CostFactors()
        assert factors.f_index > 0
        assert factors.f_sort > 0
        assert factors.f_io > 0
        assert factors.f_stack > 0

    def test_negative_factor_rejected(self):
        with pytest.raises(OptimizerError):
            CostFactors(f_io=-1.0)

    def test_factors_scale_costs(self):
        cheap = CostModel(CostFactors(f_io=1.0))
        expensive = CostModel(CostFactors(f_io=10.0))
        assert expensive.stack_tree_anc(0, 100) == pytest.approx(
            10 * cheap.stack_tree_anc(0, 100))
