"""Correctness tests for the five optimization algorithms.

The key invariants, straight from the paper:

* DP and DPP always find the same optimal cost (Sec. 4.2.1);
* all algorithms produce *valid* plans whose execution returns exactly
  the pattern's matches;
* FP plans are fully pipelined and optimal among sort-free plans;
* DPAP-LD plans are left-deep;
* DPAP-EB with T_e = infinity degenerates to DPP.
"""

import pytest

from repro.api import Database
from repro.core import (DPAPEBOptimizer, DPAPLDOptimizer, DPOptimizer,
                        DPPOptimizer, FPOptimizer, QueryPattern,
                        get_optimizer, optimizer_names)
from repro.core.plans import validate_plan
from repro.engine.nestedloop import naive_pattern_matches
from repro.estimation.estimator import ExactEstimator
from repro.workloads.queries import PAPER_QUERIES

ALL_OPTIMIZERS = (DPOptimizer, DPPOptimizer, DPAPEBOptimizer,
                  DPAPLDOptimizer, FPOptimizer)

PATTERNS = {
    "single": {"nodes": ["manager"], "edges": []},
    "pair": {"nodes": ["manager", "employee"], "edges": [(0, 1, "//")]},
    "chain": {"nodes": ["manager", "employee", "name"],
              "edges": [(0, 1, "//"), (1, 2, "/")]},
    "branch": {"nodes": ["manager", "employee", "department"],
               "edges": [(0, 1, "//"), (0, 2, "//")]},
    "running": {"nodes": ["manager", "employee", "name", "manager",
                          "department", "name"],
                "edges": [(0, 1, "//"), (1, 2, "/"), (0, 3, "//"),
                          (3, 4, "/"), (4, 5, "/")]},
    "ordered": {"nodes": ["manager", "employee", "name"],
                "edges": [(0, 1, "//"), (1, 2, "/")], "order_by": 0},
}


@pytest.fixture(scope="module")
def database(small_document=None):
    from repro.document.parser import parse_xml
    from tests.conftest import PERSONNEL_XML

    return Database.from_document(parse_xml(PERSONNEL_XML))


@pytest.mark.parametrize("optimizer_class", ALL_OPTIMIZERS,
                         ids=lambda cls: cls.name)
@pytest.mark.parametrize("pattern_name", sorted(PATTERNS))
class TestAllOptimizers:
    def test_plan_valid_and_correct(self, database, optimizer_class,
                                    pattern_name):
        pattern = QueryPattern.build(PATTERNS[pattern_name])
        estimator = ExactEstimator(database.document)
        result = optimizer_class().optimize(pattern, estimator)
        validate_plan(result.plan, pattern)
        execution = database.execute(result.plan, pattern)
        oracle = naive_pattern_matches(database.document, pattern)
        expected = {tuple(b[k].start for k in sorted(b)) for b in oracle}
        assert execution.canonical() == expected

    def test_report_filled(self, database, optimizer_class, pattern_name):
        pattern = QueryPattern.build(PATTERNS[pattern_name])
        result = optimizer_class().optimize(
            pattern, ExactEstimator(database.document))
        assert result.report.plans_considered >= 1
        assert result.report.optimization_seconds >= 0
        assert result.estimated_cost > 0


class TestOptimality:
    @pytest.mark.parametrize("pattern_name",
                             ["pair", "chain", "branch", "running",
                              "ordered"])
    def test_dp_and_dpp_agree(self, database, pattern_name):
        pattern = QueryPattern.build(PATTERNS[pattern_name])
        estimator = ExactEstimator(database.document)
        dp_cost = DPOptimizer().optimize(pattern, estimator).estimated_cost
        dpp_cost = DPPOptimizer().optimize(pattern,
                                           estimator).estimated_cost
        assert dp_cost == pytest.approx(dpp_cost)

    @pytest.mark.parametrize("pattern_name",
                             ["pair", "chain", "branch", "running"])
    def test_dpp_prime_also_optimal(self, database, pattern_name):
        pattern = QueryPattern.build(PATTERNS[pattern_name])
        estimator = ExactEstimator(database.document)
        dp_cost = DPOptimizer().optimize(pattern, estimator).estimated_cost
        prime_cost = get_optimizer("DPP'").optimize(
            pattern, estimator).estimated_cost
        assert dp_cost == pytest.approx(prime_cost)

    @pytest.mark.parametrize("pattern_name",
                             ["pair", "chain", "branch", "running"])
    def test_heuristics_never_beat_optimal(self, database, pattern_name):
        pattern = QueryPattern.build(PATTERNS[pattern_name])
        estimator = ExactEstimator(database.document)
        optimal = DPOptimizer().optimize(pattern, estimator).estimated_cost
        for optimizer_class in (DPAPEBOptimizer, DPAPLDOptimizer,
                                FPOptimizer):
            cost = optimizer_class().optimize(pattern,
                                              estimator).estimated_cost
            assert cost >= optimal - 1e-9

    def test_dpp_search_smaller_than_dp(self, database):
        pattern = QueryPattern.build(PATTERNS["running"])
        estimator = ExactEstimator(database.document)
        dp = DPOptimizer().optimize(pattern, estimator).report
        dpp = DPPOptimizer().optimize(pattern, estimator).report
        assert dpp.statuses_generated < dp.statuses_generated


class TestFPProperties:
    @pytest.mark.parametrize("pattern_name",
                             ["pair", "chain", "branch", "running",
                              "ordered"])
    def test_fp_plans_fully_pipelined(self, database, pattern_name):
        pattern = QueryPattern.build(PATTERNS[pattern_name])
        result = FPOptimizer().optimize(
            pattern, ExactEstimator(database.document))
        assert result.plan.is_fully_pipelined
        assert result.plan.sort_count() == 0

    def test_fp_optimal_among_pipelined(self, database):
        """Brute-force all sort-free plans of the chain pattern and
        check FP found the cheapest."""
        from repro.core.cost import CostModel
        from repro.core.enumeration import (EnumerationContext,
                                            estimate_plan_cost)
        from repro.core.pattern import Axis
        from repro.core.plans import (IndexScanPlan, JoinAlgorithm,
                                      StructuralJoinPlan)

        pattern = QueryPattern.build(PATTERNS["chain"])
        estimator = ExactEstimator(database.document)
        context = EnumerationContext(pattern, CostModel(), estimator)

        candidates = []
        STA = JoinAlgorithm.STACK_TREE_ANC
        STD = JoinAlgorithm.STACK_TREE_DESC
        # join (0,1) first, then (1,2): second join needs order by 1,
        # so the first must be STA (ordered by 0 is useless) -> STA+any
        for first_algo in (STA, STD):
            inner = StructuralJoinPlan(
                IndexScanPlan(0), IndexScanPlan(1), 0, 1,
                Axis.DESCENDANT, first_algo)
            if inner.ordered_by != 1:
                continue
            for second_algo in (STA, STD):
                candidates.append(StructuralJoinPlan(
                    inner, IndexScanPlan(2), 1, 2, Axis.CHILD,
                    second_algo))
        # join (1,2) first, then (0,1)
        for first_algo in (STA, STD):
            inner = StructuralJoinPlan(
                IndexScanPlan(1), IndexScanPlan(2), 1, 2, Axis.CHILD,
                first_algo)
            if inner.ordered_by != 1:
                continue
            for second_algo in (STA, STD):
                candidates.append(StructuralJoinPlan(
                    IndexScanPlan(0), inner, 0, 1, Axis.DESCENDANT,
                    second_algo))
        assert candidates
        # estimate_plan_cost already includes the leaf index scans
        best_brute = min(estimate_plan_cost(plan, context)
                         for plan in candidates)

        fp_cost = FPOptimizer().optimize(pattern, estimator).estimated_cost
        assert fp_cost == pytest.approx(best_brute)


class TestDPAPProperties:
    def test_ld_plans_left_deep(self, database):
        for name in ("chain", "branch", "running"):
            pattern = QueryPattern.build(PATTERNS[name])
            result = DPAPLDOptimizer().optimize(
                pattern, ExactEstimator(database.document))
            assert result.plan.is_left_deep

    def test_eb_with_huge_bound_matches_dpp(self, database):
        pattern = QueryPattern.build(PATTERNS["running"])
        estimator = ExactEstimator(database.document)
        dpp_cost = DPPOptimizer().optimize(pattern,
                                           estimator).estimated_cost
        eb_cost = DPAPEBOptimizer(expansion_bound=10_000).optimize(
            pattern, estimator).estimated_cost
        assert eb_cost == pytest.approx(dpp_cost)

    def test_eb_monotone_search_size(self, database):
        pattern = QueryPattern.build(PATTERNS["running"])
        estimator = ExactEstimator(database.document)
        sizes = []
        for bound in (1, 3, 100):
            report = DPAPEBOptimizer(expansion_bound=bound).optimize(
                pattern, estimator).report
            sizes.append(report.statuses_expanded)
        assert sizes[0] <= sizes[1] <= sizes[2]

    def test_every_te_value_produces_plan(self, database):
        pattern = QueryPattern.build(PATTERNS["running"])
        estimator = ExactEstimator(database.document)
        oracle = naive_pattern_matches(database.document, pattern)
        expected = {tuple(b[k].start for k in sorted(b)) for b in oracle}
        for bound in range(1, len(pattern) + 1):
            result = DPAPEBOptimizer(expansion_bound=bound).optimize(
                pattern, estimator)
            execution = database.execute(result.plan, pattern)
            assert execution.canonical() == expected


class TestOrderByHandling:
    def test_result_sorted_by_order_by_node(self, database):
        pattern = QueryPattern.build(PATTERNS["ordered"])
        for optimizer_class in ALL_OPTIMIZERS:
            result = optimizer_class().optimize(
                pattern, ExactEstimator(database.document))
            execution = database.execute(result.plan, pattern)
            position = execution.schema.position(0)
            starts = [row[position].start for row in execution.tuples]
            assert starts == sorted(starts), optimizer_class.name


class TestRegistry:
    def test_names(self):
        names = optimizer_names()
        for expected in ("DP", "DPP", "DPAP-EB", "DPAP-LD", "FP"):
            assert expected in names

    def test_get_optimizer_variants(self):
        assert get_optimizer("DPP").lookahead
        assert not get_optimizer("DPP'").lookahead
        assert get_optimizer("DPAP-EB",
                             expansion_bound=3).expansion_bound == 3

    def test_unknown_name(self):
        from repro.errors import OptimizerError

        with pytest.raises(OptimizerError, match="unknown optimizer"):
            get_optimizer("GENETIC")

    def test_paper_queries_all_optimizable(self, database):
        """All 8 Table 1 patterns optimize cleanly (even against a
        database that lacks some tags)."""
        for query in PAPER_QUERIES.values():
            for name in ("DPP", "FP"):
                result = get_optimizer(name).optimize(
                    query.pattern, ExactEstimator(database.document))
                validate_plan(result.plan, query.pattern)
