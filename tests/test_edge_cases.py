"""Targeted tests for less-travelled paths across the library."""

import pytest

from repro.api import Database
from repro.errors import PlanError
from repro.core.pattern import Axis, QueryPattern
from repro.core.plans import (IndexScanPlan, JoinAlgorithm,
                              StructuralJoinPlan)
from repro.core.status import Move, Status, StatusNode
from repro.document.parser import parse_xml
from repro.engine.context import EngineContext
from repro.engine.executor import Executor
from repro.engine.metrics import ExecutionMetrics
from repro.engine.operators import Operator
from repro.engine.tuples import Schema


class TestOperatorContract:
    def test_ordered_by_must_be_in_schema(self):
        with pytest.raises(PlanError, match="not in its"):
            Operator(Schema((0, 1)), 5, ExecutionMetrics())

    def test_base_produce_abstract(self):
        operator = Operator(Schema((0,)), 0, ExecutionMetrics())
        with pytest.raises(NotImplementedError):
            list(operator.run())


class TestNestedLoopPlanExecution:
    def test_executor_builds_nested_loop_joins(self, small_document):
        """The NESTED_LOOP plan algorithm is executable (used by the
        oracle comparisons), not just the stack-tree ones."""
        database = Database.from_document(small_document)
        pattern = QueryPattern.build({
            "nodes": ["manager", "employee"], "edges": [(0, 1, "//")]})
        plan = StructuralJoinPlan(
            IndexScanPlan(0), IndexScanPlan(1), 0, 1, Axis.DESCENDANT,
            JoinAlgorithm.NESTED_LOOP)
        context = EngineContext(database.index, database.store,
                                small_document)
        result = Executor(context, pattern).execute(plan)
        reference = database.query(pattern)
        assert result.canonical() == reference.execution.canonical()


class TestMoveIntrospection:
    def test_output_order_and_describe(self, running_example_pattern):
        edge = running_example_pattern.edge_between(0, 1)
        merged = StatusNode(frozenset({0, 1}), 1)
        others = frozenset(
            StatusNode(frozenset({n}), n) for n in (2, 3, 4, 5))
        move = Move(edge=edge, algorithm=JoinAlgorithm.STACK_TREE_DESC,
                    sort_to=None, cost=12.0,
                    result=Status(others | frozenset((merged,))))
        assert move.output_order == 1
        described = move.describe()
        assert "stack-tree-desc" in described
        assert "12.0" in described
        sorted_move = Move(edge=edge,
                           algorithm=JoinAlgorithm.STACK_TREE_DESC,
                           sort_to=0, cost=20.0, result=move.result)
        assert "sort by 0" in sorted_move.describe()


class TestUnicodeEndToEnd:
    def test_unicode_document_query_and_persist(self):
        # element names are ASCII (the parser's lexer restriction);
        # text and attribute values are arbitrary unicode end to end
        document = parse_xml(
            '<shop><book price="вісім"><title>森の歌 — Ліс</title>'
            "</book></shop>")
        database = Database.from_document(document)
        result = database.query("//book/title")
        assert len(result) == 1
        binding = result.execution.bindings()[0]
        title = document.node(binding[1].start)
        assert "森の歌" in title.text
        database.persist()
        reopened = Database.open(database.disk)
        node = reopened.document.nodes_with_tag("title")[0]
        assert node.text == title.text
        assert node.text == "森の歌 — Ліс"


class TestDegenerateShapes:
    def test_deep_chain_pattern(self, small_document):
        """A 5-step pure child chain exercises the narrowest search."""
        database = Database.from_document(parse_xml(
            "<a><b><c><d><e/></d></c></b></a>"))
        pattern = QueryPattern.build({
            "nodes": ["a", "b", "c", "d", "e"],
            "edges": [(0, 1, "/"), (1, 2, "/"), (2, 3, "/"),
                      (3, 4, "/")],
        })
        for algorithm in ("DP", "DPP", "FP", "DPAP-LD"):
            result = database.query(pattern, algorithm=algorithm)
            assert len(result) == 1

    def test_star_pattern_max_fanout(self):
        """A root with 4 leaf children stresses FP's permutation
        enumeration (4! orders)."""
        database = Database.from_document(parse_xml(
            "<r><a/><b/><c/><d/><a/><b/></r>"))
        pattern = QueryPattern.build({
            "nodes": ["r", "a", "b", "c", "d"],
            "edges": [(0, 1, "/"), (0, 2, "/"), (0, 3, "/"),
                      (0, 4, "/")],
        })
        fp = database.optimize(pattern, algorithm="FP", exact=True)
        dp = database.optimize(pattern, algorithm="DP", exact=True)
        assert fp.report.plans_considered >= 24  # at least 4! orders
        execution = database.execute(fp.plan, pattern)
        assert len(execution) == 4  # 2 a's x 2 b's x 1 c x 1 d
        assert dp.estimated_cost <= fp.estimated_cost

    def test_all_same_tag_pattern(self):
        """Self-joins everywhere: a//a/a."""
        database = Database.from_document(parse_xml(
            "<a><a><a/><a><a/></a></a></a>"))
        pattern = QueryPattern.build({
            "nodes": ["a", "a", "a"],
            "edges": [(0, 1, "//"), (1, 2, "/")],
        })
        from repro.engine.nestedloop import naive_pattern_matches

        expected = {tuple(b[k].start for k in sorted(b))
                    for b in naive_pattern_matches(database.document,
                                                   pattern)}
        for algorithm in ("DPP", "FP"):
            result = database.query(pattern, algorithm=algorithm)
            assert result.execution.canonical() == expected
        holistic = database.holistic_query(pattern)
        assert holistic.canonical() == expected


class TestEmptyCandidateSets:
    def test_zero_candidates_optimize_and_execute(self, small_database):
        pattern = QueryPattern.build({
            "nodes": ["manager", "dragon", "name"],
            "edges": [(0, 1, "//"), (1, 2, "/")],
        })
        for algorithm in ("DP", "DPP", "DPAP-EB", "DPAP-LD", "FP"):
            result = small_database.query(pattern, algorithm=algorithm)
            assert len(result) == 0

    def test_zero_candidates_estimates_zero(self, small_database):
        pattern = QueryPattern.build({
            "nodes": ["manager", "dragon"], "edges": [(0, 1, "//")]})
        optimization = small_database.optimize(pattern)
        assert optimization.plan.estimated_cardinality == 0.0
