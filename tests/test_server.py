"""Tests for the asyncio HTTP query server (PR 10).

Covers the admission arithmetic with an injected clock, the streamed
first-result path over real sockets, tenant throttling with honest
``Retry-After``, queue-depth backpressure, deadline cancellation
releasing its worker slot, the consolidated observability routes,
trace-id propagation, and the shared shutdown path (SIGTERM drain in
a subprocess).
"""

from __future__ import annotations

import asyncio
import io
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.api import Database
from repro.server import (AdmissionController, QueryServer,
                          ServerConfig, TokenBucket, fetch)
from repro.server.client import HttpClient
from repro.workloads import personnel_document


# ---------------------------------------------------------------------------
# admission control: pure arithmetic, injected clock


class TestTokenBucket:
    def test_burst_then_exact_refill_wait(self):
        bucket = TokenBucket(rate=2.0, burst=1.0, now=100.0)
        assert bucket.try_take(100.0) == 0.0
        # drained: the next token exists in 1/rate = 0.5 seconds
        assert bucket.try_take(100.0) == pytest.approx(0.5)
        # half a token accrued after 0.25s -> 0.25s more to wait
        assert bucket.try_take(100.25) == pytest.approx(0.25)
        # after the full refill interval the take succeeds
        assert bucket.try_take(100.75) == 0.0

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, now=0.0)
        for _ in range(3):
            assert bucket.try_take(0.0) == 0.0
        assert bucket.try_take(0.0) > 0.0
        # an hour later the bucket holds burst tokens, not 36000
        for _ in range(3):
            assert bucket.try_take(3600.0) == 0.0
        assert bucket.try_take(3600.0) > 0.0


class TestAdmissionController:
    def make(self, **kwargs):
        clock = {"now": 0.0}
        controller = AdmissionController(
            clock=lambda: clock["now"], **kwargs)
        return controller, clock

    def test_tenant_quota_rejects_with_exact_retry(self):
        controller, _ = self.make(max_inflight=10, tenant_rate=2.0,
                                  tenant_burst=1.0)
        assert controller.admit("a") is None
        rejection = controller.admit("a")
        assert rejection is not None
        assert rejection.reason == "tenant_quota"
        assert rejection.retry_after == pytest.approx(0.5)
        assert rejection.tenant == "a"
        # tenants are isolated: b still has its burst
        assert controller.admit("b") is None

    def test_quota_recovers_as_the_clock_advances(self):
        controller, clock = self.make(max_inflight=10, tenant_rate=2.0,
                                      tenant_burst=1.0)
        assert controller.admit("a") is None
        assert controller.admit("a").reason == "tenant_quota"
        clock["now"] = 0.5
        assert controller.admit("a") is None

    def test_saturation_gate_and_release(self):
        controller, _ = self.make(max_inflight=2)
        assert controller.admit("a") is None
        assert controller.admit("b") is None
        rejection = controller.admit("c")
        assert rejection.reason == "saturated"
        assert rejection.retry_after == pytest.approx(0.5)  # default
        controller.release(seconds=2.0)
        assert controller.admit("c") is None
        # the retry hint now follows the observed service time
        rejection = controller.admit("d")
        assert rejection.reason == "saturated"
        assert rejection.retry_after == pytest.approx(2.0)

    def test_release_never_goes_negative(self):
        controller, _ = self.make(max_inflight=1)
        controller.release()
        controller.release()
        assert controller.inflight == 0
        assert controller.admit("a") is None
        assert controller.admit("b").reason == "saturated"

    def test_snapshot_counts(self):
        controller, _ = self.make(max_inflight=3, tenant_rate=100.0,
                                  tenant_burst=10.0)
        controller.admit("a")
        controller.admit("b")
        controller.release(seconds=0.1)
        snapshot = controller.snapshot()
        assert snapshot["inflight"] == 1
        assert snapshot["max_inflight"] == 3
        assert snapshot["tenants"] == 2
        assert snapshot["completed"] == 1


# ---------------------------------------------------------------------------
# the served query path over real sockets


@pytest.fixture(scope="module")
def server():
    database = Database.from_document(
        personnel_document(target_nodes=2000, seed=42))
    instance = QueryServer(database, ServerConfig(
        port=0, workers=2, queue_depth=2,
        tenant_rate=0.0,  # quota tests build their own controller
        keep_alive_seconds=30.0), out=io.StringIO())
    host, port = instance.start()
    yield instance, host, port
    instance.stop()
    assert instance.exit_code == 0


def run(coroutine):
    return asyncio.run(coroutine)


class TestQueryEndpoint:
    def test_plain_query_returns_bindings(self, server):
        _, host, port = server
        response = run(fetch(host, port, "GET",
                             "/query?xpath=//employee//name"))
        assert response.status == 200
        payload = response.json()
        assert payload["done"] is True
        assert payload["rows"] > 0
        assert payload["rows"] == len(payload["bindings"])
        assert payload["schema"]
        assert payload["time_to_first_seconds"] is not None
        assert payload["time_to_first_seconds"] <= payload["seconds"]

    def test_post_body_overrides_query_string(self, server):
        _, host, port = server
        body = json.dumps({"xpath": "//employee", "limit": 3}).encode()
        response = run(fetch(host, port, "POST", "/query?limit=999",
                             body=body))
        assert response.status == 200
        payload = response.json()
        assert payload["rows"] == 3
        assert payload["truncated"] is True

    def test_streamed_first_result_before_completion(self, server):
        """The tentpole acceptance: over HTTP, the first FP row is on
        the wire before the query finishes."""
        _, host, port = server

        async def drive():
            client = HttpClient(host, port)
            try:
                head, body = await client.stream(
                    "GET", "/query?xpath=//employee//name&stream=1")
                assert head.status == 200
                assert "chunked" in head.headers["transfer-encoding"]
                buffer = b""
                async for chunk in body:
                    buffer += chunk
                return buffer
            finally:
                await client.close()

        buffer = run(drive())
        lines = [json.loads(line)
                 for line in buffer.decode().splitlines() if line]
        assert lines[0]["schema"], "header line first"
        assert all("b" in line for line in lines[1:-1])
        summary = lines[-1]
        assert summary["done"] is True
        assert summary["cancelled"] is False
        assert summary["rows"] == len(lines) - 2
        assert summary["time_to_first_seconds"] is not None
        assert summary["time_to_first_seconds"] < summary["seconds"]

    def test_keep_alive_connection_reuse(self, server):
        _, host, port = server

        async def drive():
            client = HttpClient(host, port)
            try:
                first = await client.request(
                    "GET", "/query?xpath=//employee&limit=1")
                second = await client.request(
                    "GET", "/query?xpath=//manager&limit=1")
                return first, second
            finally:
                await client.close()

        first, second = run(drive())
        assert first.status == 200 and second.status == 200

    def test_bad_xpath_is_client_error(self, server):
        _, host, port = server
        response = run(fetch(host, port, "GET", "/query?xpath=///(("))
        assert response.status == 400
        assert "kind" in response.json()

    def test_missing_xpath_is_client_error(self, server):
        _, host, port = server
        response = run(fetch(host, port, "GET", "/query"))
        assert response.status == 400

    def test_unknown_route_is_404_and_method_checked(self, server):
        _, host, port = server
        assert run(fetch(host, port, "GET", "/nope")).status == 404
        assert run(fetch(host, port, "POST", "/metrics")).status == 405
        assert run(fetch(host, port, "PUT",
                         "/query?xpath=//a")).status == 405

    def test_trace_id_propagates_to_traces_route(self, server):
        _, host, port = server
        response = run(fetch(
            host, port, "GET", "/query?xpath=//employee//name",
            headers={"X-Trace-Id": "req-abc123"}))
        assert response.status == 200
        assert response.headers.get("x-trace-id") == "req-abc123"
        traces = run(fetch(host, port, "GET", "/traces")).json()
        ids = [trace["trace_id"] for trace in traces["traces"]]
        assert "req-abc123" in ids

    def test_observability_routes_share_the_socket(self, server):
        instance, host, port = server
        for route in ("/metrics", "/traces", "/slo", "/planspace",
                      "/healthz"):
            assert run(fetch(host, port, "GET", route)).status == 200
        metrics = run(fetch(host, port, "GET", "/metrics")).text()
        assert "repro_http_requests_total" in metrics
        assert "repro_http_inflight" in metrics
        assert "repro_time_to_first_seconds" in metrics
        assert "repro_slo_error_budget_burn" in metrics
        health = run(fetch(host, port, "GET", "/healthz")).json()
        assert health["status"] == "ok"
        assert health["max_inflight"] == instance.config.max_inflight


class TestAdmissionOverHttp:
    def test_tenant_quota_throttles_with_retry_after(self):
        database = Database.from_document(
            personnel_document(target_nodes=600, seed=42))
        instance = QueryServer(database, ServerConfig(
            port=0, workers=2, queue_depth=2,
            tenant_rate=0.5, tenant_burst=2.0), out=io.StringIO())
        host, port = instance.start()
        try:
            async def drive():
                statuses, throttle = [], None
                for _ in range(3):
                    response = await fetch(
                        host, port, "GET",
                        "/query?xpath=//employee&tenant=noisy")
                    statuses.append(response.status)
                    if response.status == 429:
                        throttle = response
                # the throttled tenant does not starve the others
                other = await fetch(
                    host, port, "GET",
                    "/query?xpath=//employee&tenant=quiet")
                return statuses, throttle, other

            statuses, throttle, other = run(drive())
            assert statuses[:2] == [200, 200]
            assert statuses[2] == 429
            payload = throttle.json()
            assert payload["reason"] == "tenant_quota"
            assert payload["tenant"] == "noisy"
            # header: RFC integral seconds, rounded up, never zero;
            # body: the exact wait (2 tokens burnt, 0.5/s refill)
            assert int(throttle.headers["retry-after"]) >= 1
            assert 0.0 < payload["retry_after_seconds"] <= 2.0
            assert other.status == 200
        finally:
            instance.stop()

    def test_queue_depth_backpressure_saturates(self, server):
        """Fill every admission slot; the next request is shed with
        429/saturated and a slot release lets traffic through again."""
        instance, host, port = server
        taken = 0
        while instance.admission.admit(f"probe{taken}") is None:
            taken += 1
        assert taken == instance.config.max_inflight
        try:
            response = run(fetch(host, port, "GET",
                                 "/query?xpath=//employee"))
            assert response.status == 429
            payload = response.json()
            assert payload["reason"] == "saturated"
            assert int(response.headers["retry-after"]) >= 1
            # observability is never shed
            health = run(fetch(host, port, "GET", "/healthz")).json()
            assert health["inflight"] == taken
        finally:
            for _ in range(taken):
                instance.admission.release()
        response = run(fetch(host, port, "GET",
                             "/query?xpath=//employee&limit=1"))
        assert response.status == 200

    def test_concurrent_overload_sheds_but_serves_some(self):
        database = Database.from_document(
            personnel_document(target_nodes=2000, seed=42))
        instance = QueryServer(database, ServerConfig(
            port=0, workers=1, queue_depth=1,
            tenant_rate=0.0), out=io.StringIO())
        host, port = instance.start()
        try:
            async def drive():
                return await asyncio.gather(*[
                    fetch(host, port, "GET",
                          "/query?xpath=//employee//name"
                          f"&tenant=t{i}")
                    for i in range(12)])

            responses = run(drive())
            statuses = sorted(r.status for r in responses)
            assert 200 in statuses
            assert 429 in statuses, statuses
            shed = [r.json() for r in responses if r.status == 429]
            assert all(s["reason"] == "saturated" for s in shed)
        finally:
            instance.stop()
        assert instance.admission.snapshot()["inflight"] == 0


class TestDeadlines:
    def test_deadline_cancels_mid_stream_and_releases_slot(self):
        database = Database.from_document(
            personnel_document(target_nodes=4000, seed=42))
        instance = QueryServer(database, ServerConfig(
            port=0, workers=2, queue_depth=2,
            tenant_rate=0.0), out=io.StringIO())
        host, port = instance.start()
        try:
            # measure an uncancelled baseline, then set a deadline
            # well inside it so cancellation strikes mid-execution
            baseline = run(fetch(
                host, port, "GET", "/query?xpath=//employee//name"))
            assert baseline.status == 200
            seconds = baseline.json()["seconds"]
            deadline_ms = max(0.05, seconds * 1e3 / 20.0)

            slo_before = run(fetch(host, port, "GET", "/slo")).json()
            response = run(fetch(
                host, port, "GET",
                f"/query?xpath=//employee//name"
                f"&timeout_ms={deadline_ms:g}"))
            assert response.status == 504
            payload = response.json()
            assert payload["cancelled"] is True
            assert payload["error"] == "deadline exceeded"

            # the worker slot came back and the error burnt budget
            health = run(fetch(host, port, "GET", "/healthz")).json()
            assert health["inflight"] == 0
            slo_after = run(fetch(host, port, "GET", "/slo")).json()

            def bad(snapshot):
                return {entry["name"]: entry["bad"]
                        for entry in snapshot["objectives"]}

            assert (bad(slo_after)["query_errors"]
                    > bad(slo_before)["query_errors"])
            metrics = run(fetch(host, port, "GET", "/metrics")).text()
            assert "repro_http_cancelled_total" in metrics
        finally:
            instance.stop()

    def test_streamed_deadline_reports_in_band(self):
        database = Database.from_document(
            personnel_document(target_nodes=4000, seed=42))
        instance = QueryServer(database, ServerConfig(
            port=0, workers=2, queue_depth=2,
            tenant_rate=0.0), out=io.StringIO())
        host, port = instance.start()
        try:
            async def drive():
                client = HttpClient(host, port)
                try:
                    head, body = await client.stream(
                        "GET", "/query?xpath=//employee//name"
                               "&stream=1&timeout_ms=0.01")
                    buffer = b""
                    async for chunk in body:
                        buffer += chunk
                    return head, buffer
                finally:
                    await client.close()

            head, buffer = run(drive())
            lines = [json.loads(line) for line
                     in buffer.decode().splitlines() if line]
            summary = lines[-1]
            assert summary["cancelled"] is True or head.status == 504
            health = run(fetch(host, port, "GET", "/healthz")).json()
            assert health["inflight"] == 0
        finally:
            instance.stop()


class TestShardedServing:
    def test_sharded_stream_matches_and_stitches_traces(self):
        from repro.shard.sharded import ShardedDatabase

        document = personnel_document(target_nodes=1500, seed=42)
        single = Database.from_document(document)
        expected = single.query("//employee//name")
        with ShardedDatabase(document, shards=2) as database:
            instance = QueryServer(database, ServerConfig(
                port=0, tenant_rate=0.0), out=io.StringIO())
            host, port = instance.start()
            try:
                response = run(fetch(
                    host, port, "GET",
                    "/query?xpath=//employee//name",
                    headers={"X-Trace-Id": "shard-req-1"}))
                assert response.status == 200
                payload = response.json()
                assert payload["rows"] == len(expected)
                traces = run(fetch(host, port, "GET",
                                   "/traces")).json()
                stitched = [trace for trace in traces["traces"]
                            if trace["trace_id"] == "shard-req-1"]
                assert stitched
                rendered = json.dumps(stitched[0])
                assert "ShardScatterGather" in rendered
            finally:
                instance.stop()


class TestServerLifecycle:
    def test_port_in_use_raises_bind_error(self):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        taken = blocker.getsockname()[1]
        try:
            database = Database.from_document(
                personnel_document(target_nodes=200, seed=42))
            instance = QueryServer(database,
                                   ServerConfig(port=taken),
                                   out=io.StringIO())
            with pytest.raises(OSError):
                instance.start()
            assert instance.exit_code == 2
        finally:
            blocker.close()

    def test_stop_drains_and_reports(self):
        out = io.StringIO()
        database = Database.from_document(
            personnel_document(target_nodes=200, seed=42))
        instance = QueryServer(database, ServerConfig(port=0),
                               out=out)
        host, port = instance.start()
        assert run(fetch(host, port, "GET",
                         "/query?xpath=//employee")).status == 200
        instance.stop()
        assert instance.exit_code == 0
        text = out.getvalue()
        assert "serving /query" in text
        assert "draining" in text
        assert "drained: " in text

    def test_sigterm_drains_with_exit_zero(self, tmp_path):
        """The satellite: kill -TERM stops accepting, finishes
        in-flight work, flushes the query log, exits 0."""
        log_path = tmp_path / "served.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--dataset", "pers", "--nodes", "400", "--port", "0",
             "--query-log", str(log_path)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True, cwd=os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))))
        try:
            line = proc.stdout.readline()
            assert "http://" in line, (line, proc.stderr.read())
            port = int(line.rsplit(":", 1)[1].split()[0])
            run(fetch("127.0.0.1", port, "GET",
                      "/query?xpath=//employee"))
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=20)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, (out, err)
        assert "SIGTERM: draining" in out
        assert "drained:" in out
        assert "query log flushed" in out


class TestShardedTimeToFirst:
    def test_time_to_first_is_before_total(self):
        from repro.shard.sharded import ShardedDatabase

        document = personnel_document(target_nodes=1500, seed=42)
        with ShardedDatabase(document, shards=2) as database:
            timing = database.time_to_first("//employee//name",
                                            algorithm="FP")
            assert timing.first_count == 1
            assert 0.0 < timing.first_seconds
            assert timing.first_seconds <= timing.total_seconds
            assert timing.total_count > 1
