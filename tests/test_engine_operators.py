"""Unit tests for schemas, scans, sorts and operator plumbing."""

import pytest

from repro.errors import PlanError
from repro.api import Database
from repro.core.pattern import PatternNode, Predicate
from repro.document.node import Region
from repro.engine.context import EngineContext
from repro.engine.operators import (Operator, OrderCheckingIterator,
                                    group_by_column)
from repro.engine.scan import IndexScan
from repro.engine.sort import SortOperator
from repro.engine.tuples import Schema


class TestSchema:
    def test_positions(self):
        schema = Schema((3, 1, 4))
        assert schema.position(1) == 1
        assert 4 in schema
        assert 9 not in schema
        with pytest.raises(PlanError):
            schema.position(9)

    def test_duplicates_rejected(self):
        with pytest.raises(PlanError):
            Schema((1, 1))

    def test_concat(self):
        merged = Schema((0, 1)).concat(Schema((2,)))
        assert merged.node_ids == (0, 1, 2)
        with pytest.raises(PlanError, match="overlap"):
            Schema((0, 1)).concat(Schema((1,)))

    def test_binding_and_mapping(self):
        schema = Schema((0, 2))
        match = (Region(1, 2, 1), Region(5, 6, 2))
        assert schema.binding(match, 2) == Region(5, 6, 2)
        assert schema.as_mapping(match) == {0: Region(1, 2, 1),
                                            2: Region(5, 6, 2)}

    def test_canonical_key_order_independent(self):
        left = Schema((0, 1))
        right = Schema((1, 0))
        match_left = (Region(1, 1, 1), Region(2, 2, 2))
        match_right = (Region(2, 2, 2), Region(1, 1, 1))
        assert left.canonical_key(match_left) == right.canonical_key(
            match_right)


class TestOrderChecking:
    def test_passes_ordered_stream(self):
        schema = Schema((0,))
        stream = iter([(Region(1, 1, 1),), (Region(3, 3, 1),)])
        checked = OrderCheckingIterator(stream, schema, 0)
        assert len(list(checked)) == 2

    def test_rejects_disorder(self):
        schema = Schema((0,))
        stream = iter([(Region(3, 3, 1),), (Region(1, 1, 1),)])
        checked = OrderCheckingIterator(stream, schema, 0)
        with pytest.raises(PlanError, match="not ordered"):
            list(checked)


class TestGroupByColumn:
    def test_groups_adjacent_equal_regions(self):
        schema = Schema((0, 1))
        shared = Region(1, 5, 1)
        rows = [(shared, Region(2, 2, 2)), (shared, Region(3, 3, 2)),
                (Region(6, 8, 1), Region(7, 7, 2))]
        groups = list(group_by_column(iter(rows), schema, 0))
        assert [region for region, _ in groups] == [shared,
                                                    Region(6, 8, 1)]
        assert [len(bucket) for _, bucket in groups] == [2, 1]

    def test_empty_stream(self):
        assert list(group_by_column(iter(()), Schema((0,)), 0)) == []


@pytest.fixture
def engine(small_document):
    database = Database.from_document(small_document)
    return EngineContext(database.index, database.store, small_document)


class TestIndexScan:
    def test_scan_in_document_order(self, engine, small_document):
        scan = IndexScan(PatternNode(0, "employee"), engine)
        rows = list(scan.run())
        starts = [match[0].start for match in rows]
        assert starts == sorted(starts)
        assert len(rows) == small_document.tag_count("employee")
        assert engine.metrics.index_items == len(rows)

    def test_scan_single_use(self, engine):
        scan = IndexScan(PatternNode(0, "manager"), engine)
        list(scan.run())
        with pytest.raises(PlanError, match="single-use"):
            scan.run()

    def test_wildcard_scan_merges_tags(self, engine, small_document):
        scan = IndexScan(PatternNode(0, "*"), engine)
        rows = list(scan.run())
        assert len(rows) == len(small_document)
        starts = [match[0].start for match in rows]
        assert starts == list(range(len(small_document)))

    def test_predicate_filtering(self, engine):
        node = PatternNode(0, "name", (
            Predicate(kind="text", op="=", value="Ada Adams"),))
        rows = list(IndexScan(node, engine).run())
        assert len(rows) == 1

    def test_attribute_predicate_via_store(self, small_document):
        """Without an in-memory document, predicates read the element
        store through the buffer pool."""
        database = Database.from_document(small_document)
        engine = EngineContext(database.index, database.store,
                               document=None)
        node = PatternNode(0, "manager", (
            Predicate(kind="attribute", op="=", value="m2", name="id"),))
        rows = list(IndexScan(node, engine).run())
        assert len(rows) == 1

    def test_missing_tag_scans_empty(self, engine):
        rows = list(IndexScan(PatternNode(0, "unicorn"), engine).run())
        assert rows == []


class TestSortOperator:
    def test_sorts_by_requested_column(self, engine):
        scan = IndexScan(PatternNode(0, "employee"), engine)

        class Shuffle(Operator):
            def __init__(self, child):
                super().__init__(child.schema, child.ordered_by,
                                 child.metrics)
                self.child = child

            def _produce(self):
                rows = list(self.child.run())
                yield from reversed(rows)

        shuffled = Shuffle(scan)
        sorted_op = SortOperator(shuffled, 0)
        rows = list(sorted_op.run())
        starts = [match[0].start for match in rows]
        assert starts == sorted(starts)
        assert engine.metrics.sort_count == 1
        assert engine.metrics.sorted_items == len(rows)
        assert engine.metrics.sort_units > 0
