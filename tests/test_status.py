"""Unit tests for the status/move search space (Definitions 1-6)."""

import pytest

from repro.errors import OptimizerError
from repro.core.status import ANY_ORDER, Status, StatusNode


class TestStatusNode:
    def test_singleton(self):
        node = StatusNode(frozenset({2}), 2)
        assert node.is_singleton
        assert node.ordered_by == 2

    def test_ordered_by_must_be_member(self):
        with pytest.raises(OptimizerError):
            StatusNode(frozenset({1, 2}), 5)

    def test_any_order_allowed(self):
        node = StatusNode(frozenset({0, 1, 2}), ANY_ORDER)
        assert node.ordered_by == ANY_ORDER

    def test_empty_cluster_rejected(self):
        with pytest.raises(OptimizerError):
            StatusNode(frozenset(), 0)

    def test_equality_and_hash(self):
        assert StatusNode(frozenset({1, 2}), 1) == StatusNode(
            frozenset({2, 1}), 1)
        assert StatusNode(frozenset({1, 2}), 1) != StatusNode(
            frozenset({1, 2}), 2)

    def test_str_marks_ordered_node(self):
        assert str(StatusNode(frozenset({1, 2}), 2)) == "{1,[2]}"


class TestStatus:
    def test_start_status(self, running_example_pattern):
        start = Status.start(running_example_pattern)
        assert len(start.clusters) == 6
        assert all(cluster.is_singleton for cluster in start.clusters)
        assert start.level(running_example_pattern) == 0
        assert not start.is_final()

    def test_overlapping_clusters_rejected(self):
        with pytest.raises(OptimizerError, match="overlap"):
            Status(frozenset({
                StatusNode(frozenset({0, 1}), 0),
                StatusNode(frozenset({1, 2}), 1),
            }))

    def test_cluster_of(self, running_example_pattern):
        start = Status.start(running_example_pattern)
        assert start.cluster_of(3).nodes == frozenset({3})
        with pytest.raises(OptimizerError):
            start.cluster_of(99)

    def test_remaining_edges(self, running_example_pattern):
        start = Status.start(running_example_pattern)
        assert len(list(start.remaining_edges(running_example_pattern))
                   ) == 5
        merged = Status(frozenset({
            StatusNode(frozenset({0, 1}), 0),
            StatusNode(frozenset({2}), 2),
            StatusNode(frozenset({3}), 3),
            StatusNode(frozenset({4}), 4),
            StatusNode(frozenset({5}), 5),
        }))
        remaining = {(edge.parent, edge.child)
                     for edge in merged.remaining_edges(
                         running_example_pattern)}
        assert remaining == {(1, 2), (0, 3), (3, 4), (4, 5)}

    def test_level_counts_merges(self, running_example_pattern):
        status = Status(frozenset({
            StatusNode(frozenset({0, 1, 2}), 2),
            StatusNode(frozenset({3}), 3),
            StatusNode(frozenset({4}), 4),
            StatusNode(frozenset({5}), 5),
        }))
        assert status.level(running_example_pattern) == 2

    def test_final_status(self, running_example_pattern):
        final = Status(frozenset({
            StatusNode(frozenset(range(6)), ANY_ORDER)}))
        assert final.is_final()
        assert final.level(running_example_pattern) == 5

    def test_growing_nodes(self, running_example_pattern):
        start = Status.start(running_example_pattern)
        assert start.growing_nodes() == []
        status = Status(frozenset({
            StatusNode(frozenset({0, 1}), 0),
            StatusNode(frozenset({2}), 2),
            StatusNode(frozenset({3}), 3),
            StatusNode(frozenset({4}), 4),
            StatusNode(frozenset({5}), 5),
        }))
        assert len(status.growing_nodes()) == 1

    def test_status_equality_is_content_based(self,
                                              running_example_pattern):
        first = Status.start(running_example_pattern)
        second = Status.start(running_example_pattern)
        assert first == second
        assert hash(first) == hash(second)
        assert len({first, second}) == 1
