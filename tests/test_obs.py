"""Observability subsystem: spans, EXPLAIN ANALYZE, metrics registry.

Covers the PR-3 guarantees:

* traced executions return the identical results and identical
  ``ExecutionMetrics`` as untraced ones, on both engines;
* per-operator counter shares sum *exactly* to the run totals (the
  estimate-vs-actual parity oracle, run over a small differential
  corpus);
* the registry's Prometheus text export is scrape-parseable and its
  JSON export round-trips;
* the latency reservoir is a uniform sample, not drop-oldest
  truncation;
* ``ExecutionMetrics.merge`` refuses mismatched cost factors;
* the CLI surfaces (``explain --analyze/--trace/--json``,
  ``stats --format``) work end to end.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.api import Database
from repro.cli import main as cli_main
from repro.core.cost import CostFactors
from repro.engine.metrics import COST_COUNTERS, ExecutionMetrics
from repro.errors import ReproError
from repro.obs import (MetricsRegistry, SampleReservoir, Span, Tracer,
                       build_analysis, q_error)
from repro.workloads import make_rng, random_pattern
from repro.workloads.personnel import personnel_document

from tests.conftest import random_document

ENGINES = ("block", "tuple")
QUERY = "//manager//employee/name"


@pytest.fixture(scope="module")
def database() -> Database:
    return Database.from_document(personnel_document(target_nodes=900))


# -- span mechanics ------------------------------------------------------


class TestSpans:
    def test_wrap_counts_rows_and_time(self):
        span = Span("scan")
        rows = list(span.wrap(iter(range(5))))
        assert rows == [0, 1, 2, 3, 4]
        assert span.output_rows == 5
        assert span.seconds > 0

    def test_exclusive_seconds_subtracts_children(self):
        parent = Span("join")
        parent.seconds = 1.0
        child = Span("scan")
        child.seconds = 0.75
        parent.children.append(child)
        assert parent.exclusive_seconds() == pytest.approx(0.25)
        child.seconds = 2.0  # clock skew never goes negative
        assert parent.exclusive_seconds() == 0.0

    def test_to_dict_and_render(self, database):
        report = database.explain(QUERY, analyze=True)
        payload = report.span.to_dict()
        assert payload["name"] == "query"
        assert [child["name"] for child in payload["children"]] == \
            ["parse", "optimize", "execute"]
        text = report.span.render()
        assert "execute" in text and "ms" in text
        json.dumps(payload)  # JSON-able all the way down

    def test_tracer_ring_drops_oldest(self):
        tracer = Tracer(capacity=2)
        for index in range(5):
            tracer.record(Span(f"q{index}"))
        assert tracer.recorded == 5
        assert [span.name for span in tracer.traces()] == ["q3", "q4"]
        assert len(tracer) == 2
        tracer.clear()
        assert len(tracer) == 0

    def test_database_tracer_records_analyzed_queries(self):
        database = Database.from_document(
            personnel_document(target_nodes=300))
        database.explain(QUERY, analyze=True)
        database.explain(QUERY)  # plain explain does not execute
        assert database.tracer.recorded == 1


# -- traced execution: parity with untraced runs -------------------------


class TestTracedExecutionParity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_results_and_counters_identical(self, database, engine):
        pattern = database.compile(QUERY)
        plan = database.optimize(pattern).plan
        plain = database.execute(plan, pattern, engine=engine)
        traced = database.execute(plan, pattern, engine=engine,
                                  spans=True)
        assert traced.tuples == plain.tuples
        assert traced.metrics.counters() == plain.metrics.counters()
        assert traced.span is not None and plain.span is None

    @pytest.mark.parametrize("engine", ENGINES)
    def test_span_shares_sum_to_run_totals(self, database, engine):
        pattern = database.compile(QUERY)
        plan = database.optimize(pattern).plan
        traced = database.execute(plan, pattern, engine=engine,
                                  spans=True)
        totals = {name: 0.0 for name in COST_COUNTERS}
        for span in traced.span.walk():
            for name, value in span.counters().items():
                totals[name] += value
        assert totals == traced.metrics.counters()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_span_tree_mirrors_plan_tree(self, database, engine):
        pattern = database.compile(QUERY)
        plan = database.optimize(pattern).plan
        traced = database.execute(plan, pattern, engine=engine,
                                  spans=True)

        def shapes(node, children):
            yield len(children(node))
            for child in children(node):
                yield from shapes(child, children)

        assert list(shapes(plan, lambda p: p.children())) == \
            list(shapes(traced.span, lambda s: s.children))


# -- EXPLAIN ANALYZE -----------------------------------------------------


class TestExplainAnalyze:
    def test_plain_explain_has_no_execution(self, database):
        report = database.explain(QUERY)
        assert not report.analyze
        assert report.execution is None and report.root is None
        assert "IndexScan" in report.render()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_analyze_annotates_every_operator(self, database, engine):
        report = database.explain(QUERY, analyze=True, engine=engine)
        operators = list(report.root.walk())
        assert len(operators) == 5  # 3 scans + 2 joins
        for node in operators:
            assert node.rows_q_error >= 1.0
            assert node.cost_q_error >= 1.0
            assert node.actual_rows >= 0
        # scans estimate exactly (cardinalities come from the index)
        leaves = [node for node in operators if not node.children]
        assert all(node.rows_q_error == 1.0 for node in leaves)
        text = report.render()
        assert "q=" in text and "rows=" in text
        assert f"engine={engine}" in text

    def test_actual_cost_is_cumulative(self, database):
        report = database.explain(QUERY, analyze=True)
        root = report.root
        assert root.actual_cost == pytest.approx(
            root.simulated_cost
            + sum(child.actual_cost for child in root.children))
        assert root.actual_cost == pytest.approx(
            report.execution.metrics.simulated_cost())

    @pytest.mark.parametrize("engine", ENGINES)
    def test_totals_match_execution_metrics_exactly(self, database,
                                                    engine):
        report = database.explain(QUERY, analyze=True, engine=engine)
        assert report.actual_totals() == \
            report.execution.metrics.counters()

    def test_to_dict_round_trips_through_json(self, database):
        report = database.explain(QUERY, analyze=True)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["analyze"] is True
        assert payload["rows"] == len(report.execution)
        assert payload["totals"] == report.execution.metrics.counters()
        assert payload["plan"]["children"]
        assert payload["spans"]["name"] == "query"

    def test_q_error_definition(self):
        assert q_error(100, 100) == 1.0
        assert q_error(10, 1000) == 100.0
        assert q_error(1000, 10) == 100.0  # symmetric
        assert q_error(0, 0) == 1.0  # clamped, no division by zero
        assert q_error(0, 5) == 5.0

    def test_service_passthrough(self, database):
        report = database.service.explain(QUERY, analyze=True)
        assert report.analyze
        # diagnostics do not count as served queries
        assert database.service.snapshot()["queries"] == 0


class TestExplainAnalyzeOracle:
    """Estimate-vs-actual parity over a differential corpus.

    For random patterns on random documents, EXPLAIN ANALYZE's summed
    per-operator counters must equal the counters of an independent
    untraced execution of the same plan — on both engines.
    """

    CORPUS = 30

    def test_actuals_match_untraced_oracle(self):
        rng = make_rng(20260805)
        databases = [Database.from_document(random_document(seed,
                                                            size=48))
                     for seed in (1, 2, 3)]
        checked = 0
        while checked < self.CORPUS:
            database = databases[checked % len(databases)]
            tags = tuple(sorted(database.document.tags()))
            pattern = random_pattern(rng, tags=tags, min_nodes=2,
                                     max_nodes=5, wildcard_chance=0.1,
                                     order_by_chance=0.5)
            plan = database.optimize(pattern).plan
            for engine in ENGINES:
                oracle = database.execute(plan, pattern, engine=engine)
                report = database.explain(pattern, analyze=True,
                                          engine=engine)
                assert report.actual_totals() == \
                    oracle.metrics.counters(), \
                    f"engine={engine} pattern={pattern.describe()!r}"
                assert report.execution.canonical() == \
                    oracle.canonical()
            checked += 1
        assert checked == self.CORPUS


# -- metrics registry ----------------------------------------------------


def parse_prometheus(text: str) -> dict[str, float]:
    """Minimal scrape parser: name{labels} -> value.

    Raises on any malformed line, so using it *is* the format check.
    """
    series: dict[str, float] = {}
    types: dict[str, str] = {}
    for line in text.strip().splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram", "untyped")
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            assert line.split(" ", 3)[3]  # help text present
            continue
        assert not line.startswith("#"), f"unknown comment: {line}"
        name_part, value_part = line.rsplit(" ", 1)
        series[name_part] = (float("inf") if value_part == "+Inf"
                             else float(value_part))
    assert types, "no TYPE headers"
    return series


class TestRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Requests").inc()
        registry.counter("requests_total").inc(2, status="error")
        registry.gauge("pool_size", "Pool").set(7)
        hist = registry.histogram("latency_seconds", "Latency",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        assert registry.counter("requests_total").value() == 1
        assert registry.counter("requests_total").value(
            status="error") == 2
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(5.55)

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric_one")
        with pytest.raises(ValueError):
            registry.gauge("metric_one")
        with pytest.raises(ValueError):
            registry.histogram("metric_one")

    def test_prometheus_export_is_scrape_parseable(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Total requests").inc(3)
        registry.gauge("queue_depth", 'Depth "now"\nand later').set(2.5)
        hist = registry.histogram("latency_seconds", "Latency",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        series = parse_prometheus(registry.to_prometheus())
        assert series["requests_total"] == 3
        assert series["queue_depth"] == 2.5
        assert series['latency_seconds_bucket{le="0.1"}'] == 1
        assert series['latency_seconds_bucket{le="1"}'] == 2
        assert series['latency_seconds_bucket{le="+Inf"}'] == 2
        assert series["latency_seconds_count"] == 2
        assert series["latency_seconds_sum"] == pytest.approx(0.55)

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 3.0))
        for value in (0.5, 1.5, 2.5, 9.0):
            hist.observe(value)
        series = parse_prometheus(registry.to_prometheus())
        counts = [series['h_bucket{le="1"}'], series['h_bucket{le="2"}'],
                  series['h_bucket{le="3"}'],
                  series['h_bucket{le="+Inf"}']]
        assert counts == [1, 2, 3, 4]

    def test_collectors_run_on_export(self):
        registry = MetricsRegistry()
        live = {"value": 1.0}
        registry.register_collector(
            lambda: registry.gauge("live").set(live["value"]))
        assert parse_prometheus(registry.to_prometheus())["live"] == 1
        live["value"] = 42.0
        assert parse_prometheus(registry.to_prometheus())["live"] == 42
        assert registry.to_dict()["live"]["series"][0]["value"] == 42

    def test_reset_keeps_families(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.reset()
        assert registry.counter("c").value() == 0


# -- latency reservoir (satellite: replaces drop-oldest) ------------------


class TestSampleReservoir:
    def test_fills_then_samples_uniformly(self):
        reservoir = SampleReservoir(capacity=100, seed=7)
        for value in range(100):
            reservoir.add(float(value))
        assert sorted(reservoir.values()) == [float(v)
                                              for v in range(100)]
        for value in range(100, 10_000):
            reservoir.add(float(value))
        assert len(reservoir) == 100
        assert reservoir.count == 10_000
        # regression vs drop-oldest: a truncating buffer would retain
        # only the newest 100 observations; Algorithm R keeps early
        # ones with probability capacity/n, so a 100-sample of 10k
        # observations lands early values with overwhelming likelihood
        assert min(reservoir.values()) < 9_900
        early = sum(1 for value in reservoir.values() if value < 5_000)
        assert 20 <= early <= 80  # ~50 expected, generous bounds

    def test_deterministic_for_seed(self):
        def run(seed):
            reservoir = SampleReservoir(capacity=10, seed=seed)
            for value in range(1000):
                reservoir.add(float(value))
            return reservoir.values()

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_clear(self):
        reservoir = SampleReservoir(capacity=4)
        for value in range(10):
            reservoir.add(float(value))
        reservoir.clear()
        assert len(reservoir) == 0 and reservoir.count == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SampleReservoir(capacity=0)

    def test_service_uses_reservoir(self):
        database = Database.from_document(
            personnel_document(target_nodes=300))
        service = database.service
        assert isinstance(service._latencies, SampleReservoir)
        database.query_many([QUERY] * 6, workers=1)
        latency = service.snapshot()["latency"]
        assert latency["samples"] == 6
        assert latency["observed"] == 6


# -- merge factor check (satellite) --------------------------------------


class TestMergeFactorCheck:
    def test_merge_requires_matching_factors(self):
        left = ExecutionMetrics(factors=CostFactors())
        right = ExecutionMetrics(
            factors=CostFactors(f_index=99.0))
        with pytest.raises(ReproError, match="cost factors"):
            left.merge(right)

    def test_merge_with_matching_factors_accumulates(self):
        factors = CostFactors()
        left = ExecutionMetrics(factors=factors)
        right = ExecutionMetrics(factors=factors)
        right.index_items = 5
        left.merge(right)
        assert left.index_items == 5


# -- service metrics wiring ----------------------------------------------


class TestServiceMetrics:
    def test_counters_and_histograms_populate(self):
        database = Database.from_document(
            personnel_document(target_nodes=300))
        database.query_many([QUERY] * 5, workers=2)
        series = parse_prometheus(
            database.service.export_metrics("prometheus"))
        assert series["repro_queries_total"] == 5
        assert series["repro_query_seconds_count"] == 5
        # 4 of 5 queries were plan-cache hits
        assert series["repro_plan_cache_hits"] == 4
        assert series["repro_plan_cache_misses"] == 1
        assert series[
            'repro_optimize_seconds_count{algorithm="DPP"}'] == 1
        # the batch path records queue wait for every submission
        assert series["repro_queue_wait_seconds_count"] == 5
        assert series["repro_buffer_pool_hit_rate"] <= 1.0

    def test_slow_query_log(self):
        database = Database.from_document(
            personnel_document(target_nodes=300))
        service = database.service
        service.slow_query_seconds = 0.0  # everything is slow now
        service.query(QUERY)
        snapshot = service.snapshot()
        assert len(snapshot["slow_queries"]) == 1
        entry = snapshot["slow_queries"][0]
        assert entry["query"] == QUERY
        assert entry["seconds"] > 0
        assert service.registry.counter(
            "repro_slow_queries_total").value() == 1
        service.slow_query_seconds = 3600.0
        service.query(QUERY)
        assert len(service.snapshot()["slow_queries"]) == 1

    def test_export_json_and_bad_format(self):
        database = Database.from_document(
            personnel_document(target_nodes=300))
        database.query(QUERY)
        payload = json.loads(database.service.export_metrics("json"))
        assert payload["repro_queries_total"]["type"] == "counter"
        with pytest.raises(ValueError):
            database.service.export_metrics("xml")

    def test_reset_stats_clears_registry_and_log(self):
        database = Database.from_document(
            personnel_document(target_nodes=300))
        database.service.slow_query_seconds = 0.0
        database.service.query(QUERY)
        database.service.reset_stats()
        snapshot = database.service.snapshot()
        assert snapshot["queries"] == 0
        assert snapshot["slow_queries"] == []
        assert snapshot["latency"]["observed"] == 0
        assert database.service.registry.counter(
            "repro_queries_total").value() == 0

    def test_errors_counted(self):
        database = Database.from_document(
            personnel_document(target_nodes=300))
        with pytest.raises(Exception):
            database.service.query("//manager[")
        assert database.service.registry.counter(
            "repro_query_errors_total").value() == 1


# -- zero-overhead guarantee ---------------------------------------------


class TestZeroOverheadWhenDisabled:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_untraced_operators_have_no_span(self, database, engine):
        from repro.engine.context import EngineContext
        from repro.engine.executor import Executor, _operator_children

        pattern = database.compile(QUERY)
        plan = database.optimize(pattern).plan
        context = EngineContext(database.index, database.store,
                                database.document,
                                factors=database.cost_factors)
        executor = Executor(context, pattern, engine=engine)
        build = (executor.build_block if engine == "block"
                 else executor.build)
        root = build(plan, context.for_run())
        stack = [root]
        while stack:
            operator = stack.pop()
            assert operator._span is None
            stack.extend(_operator_children(operator))

    def test_context_tracing_flag_propagates(self, database):
        from repro.engine.context import EngineContext

        context = EngineContext(database.index, database.store,
                                database.document, tracing=True)
        assert context.for_run().tracing is True
        assert EngineContext(database.index).for_run().tracing is False


# -- CLI surfaces --------------------------------------------------------


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = cli_main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    def test_explain_analyze(self):
        code, output = run_cli("explain", "--dataset", "pers",
                               "--nodes", "400", "--analyze", QUERY)
        assert code == 0
        assert "q=" in output and "totals:" in output
        assert "IndexScan" in output

    @pytest.mark.parametrize("engine", ENGINES)
    def test_explain_analyze_engines(self, engine):
        code, output = run_cli("explain", "--dataset", "pers",
                               "--nodes", "400", "--analyze",
                               "--engine", engine, QUERY)
        assert code == 0
        assert f"engine={engine}" in output

    def test_explain_analyze_json(self, tmp_path):
        target = tmp_path / "report.json"
        code, output = run_cli("explain", "--dataset", "pers",
                               "--nodes", "400", "--analyze",
                               "--json", str(target), QUERY)
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["analyze"] is True
        assert payload["spans"]["children"]

    def test_explain_trace(self):
        code, output = run_cli("explain", "--dataset", "pers",
                               "--nodes", "400", "--trace", QUERY)
        assert code == 0
        assert "search trace" in output
        assert "generate" in output and "chosen plan" in output

    def test_explain_trace_rejects_non_dpp(self):
        code, _ = run_cli("explain", "--dataset", "pers",
                          "--nodes", "400", "--trace",
                          "--algorithm", "FP", QUERY)
        assert code == 1

    def test_stats_prometheus(self):
        code, output = run_cli("stats", "--dataset", "pers",
                               "--nodes", "400", "--serve", "2",
                               "--format", "prometheus")
        assert code == 0
        series = parse_prometheus(output)
        # 4 Pers paper queries x 2 rounds
        assert series["repro_queries_total"] == 8
        assert series["repro_plan_cache_hit_rate"] == 0.5

    def test_stats_json(self):
        code, output = run_cli("stats", "--dataset", "pers",
                               "--nodes", "400", "--serve", "1",
                               "--format", "json")
        assert code == 0
        payload = json.loads(output)
        assert payload["repro_queries_total"]["series"][0]["value"] == 4

    def test_stats_table_unchanged(self):
        code, output = run_cli("stats", "--dataset", "pers",
                               "--nodes", "400")
        assert code == 0
        assert "nodes" in output and "tags:" in output


# -- bench operator breakdown --------------------------------------------


class TestBenchBreakdown:
    def test_measure_workload_carries_operators(self):
        from repro.bench.harness import ExperimentSetup
        from repro.bench.speed import SpeedWorkload, measure_workload

        spec = SpeedWorkload("pers-x1/Q.Pers.1.a", "pers",
                             "Q.Pers.1.a", 1)
        cell = measure_workload(spec, ExperimentSetup(pers_nodes=400),
                                repeats=1)
        assert cell["counters_match"]
        operators = cell["operators"]
        assert len(operators) >= 3
        assert all("operator" in op and "counters" in op
                   for op in operators)
        # breakdown shares sum to the (block-engine) run counters
        for counter, total in cell["counters"].items():
            share = sum(op["counters"][counter] for op in operators)
            assert share == total


def test_build_analysis_rejects_shape_mismatch(database):
    from repro.errors import PlanError

    pattern = database.compile(QUERY)
    plan = database.optimize(pattern).plan
    with pytest.raises(PlanError):
        build_analysis(plan, Span("lonely"), pattern)
