"""Tests for the XPath lexer, parser and pattern compiler."""

import pytest

from repro.errors import XPathSyntaxError
from repro.core.pattern import Axis
from repro.xpath import compile_xpath, parse_xpath, tokenize
from repro.xpath.lexer import TokenKind


class TestLexer:
    def test_basic_tokens(self):
        kinds = [token.kind for token in tokenize("//a/b[@k='v']")]
        assert kinds == [
            TokenKind.DOUBLE_SLASH, TokenKind.NAME, TokenKind.SLASH,
            TokenKind.NAME, TokenKind.LBRACKET, TokenKind.AT,
            TokenKind.NAME, TokenKind.OPERATOR, TokenKind.LITERAL,
            TokenKind.RBRACKET, TokenKind.END]

    def test_operators(self):
        tokens = tokenize("a >= '1'")
        assert tokens[1].value == ">="
        tokens = tokenize("a != '1'")
        assert tokens[1].value == "!="

    def test_text_function(self):
        tokens = tokenize("a[text() = 'x']")
        assert TokenKind.TEXT_FN in [token.kind for token in tokens]

    def test_numbers_and_strings(self):
        tokens = tokenize("a[@n = 42]")
        assert tokens[-3].kind is TokenKind.NUMBER
        assert tokens[-3].value == "42"

    def test_and_keyword(self):
        tokens = tokenize("a[b and c]")
        assert TokenKind.AND in [token.kind for token in tokens]

    def test_unterminated_string(self):
        with pytest.raises(XPathSyntaxError, match="unterminated"):
            tokenize("a[@k = 'oops]")

    def test_lone_bang(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("a[@k ! 'x']")

    def test_unexpected_character(self):
        with pytest.raises(XPathSyntaxError, match="unexpected"):
            tokenize("a[#]")


class TestParser:
    def test_simple_path(self):
        path = parse_xpath("/a/b//c")
        assert [step.name for step in path.steps] == ["a", "b", "c"]
        assert [step.axis for step in path.steps] == [
            "child", "child", "descendant"]

    def test_leading_double_slash(self):
        path = parse_xpath("//a")
        assert path.steps[0].axis == "descendant"

    def test_wildcard_step(self):
        path = parse_xpath("//*/b")
        assert path.steps[0].name == "*"

    def test_attribute_predicate(self):
        path = parse_xpath("//a[@year >= '2000']")
        (comparison,) = path.steps[0].comparisons
        assert comparison.subject == "attribute"
        assert comparison.attribute == "year"
        assert comparison.op == ">="

    def test_text_predicate(self):
        path = parse_xpath("//a[text() = 'x']")
        (comparison,) = path.steps[0].comparisons
        assert comparison.subject == "text"

    def test_dot_comparison(self):
        path = parse_xpath("//a[. = 'x']")
        (comparison,) = path.steps[0].comparisons
        assert comparison.subject == "text"

    def test_nested_path_predicate(self):
        path = parse_xpath("//a[.//b/c]")
        (predicate,) = path.steps[0].paths
        assert [step.name for step in predicate.path.steps] == ["b", "c"]
        assert predicate.path.steps[0].axis == "descendant"

    def test_bare_relative_predicate_defaults_to_child(self):
        path = parse_xpath("//a[b]")
        (predicate,) = path.steps[0].paths
        assert predicate.path.steps[0].axis == "child"

    def test_predicate_with_trailing_comparison(self):
        path = parse_xpath("//a[b = 'x']")
        (predicate,) = path.steps[0].paths
        assert predicate.comparison is not None
        assert predicate.comparison.value == "x"

    def test_and_conjunction(self):
        path = parse_xpath("//a[b and @k = '1' and .//c]")
        step = path.steps[0]
        assert len(step.paths) == 2
        assert len(step.comparisons) == 1

    def test_trailing_garbage(self):
        with pytest.raises(XPathSyntaxError, match="trailing"):
            parse_xpath("//a]")

    def test_empty_expression(self):
        with pytest.raises(XPathSyntaxError, match="empty"):
            parse_xpath("   ")

    def test_missing_name(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("//")

    def test_unclosed_bracket(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("//a[b")


class TestCompiler:
    def test_chain_compilation(self):
        pattern = compile_xpath("//manager/employee")
        assert len(pattern) == 2
        assert pattern.edge_between(0, 1).axis is Axis.CHILD
        assert pattern.order_by == 1

    def test_branching_predicates(self):
        pattern = compile_xpath(
            "//manager[.//employee/name]//department/name")
        assert len(pattern) == 5
        # root manager; employee+name as one branch; department/name
        assert sorted(pattern.children(0)) == [1, 3]
        assert pattern.edge_between(0, 3).axis is Axis.DESCENDANT
        assert pattern.order_by == 4  # the final name step

    def test_value_predicates_attached(self):
        pattern = compile_xpath("//book[@year >= '2000']/title")
        (predicate,) = pattern.node(0).predicates
        assert predicate.name == "year"
        assert predicate.op == ">="

    def test_trailing_comparison_lands_on_nested_step(self):
        pattern = compile_xpath("//book[author = 'Knuth']/title")
        author = pattern.node(1)
        assert author.tag == "author"
        (predicate,) = author.predicates
        assert predicate.value == "Knuth"

    def test_order_by_optional(self):
        pattern = compile_xpath("//a/b", order_by_result=False)
        assert pattern.order_by is None

    def test_execution_matches_navigational(self, small_database,
                                            small_document):
        from repro.engine.nestedloop import navigational_matches

        xpath = "//manager[.//department/name]/employee/name"
        pattern = compile_xpath(xpath, order_by_result=False)
        result = small_database.query(pattern)
        oracle = navigational_matches(small_document, pattern)
        expected = {tuple(b[k].start for k in sorted(b)) for b in oracle}
        assert result.execution.canonical() == expected
