"""Crash-injection recovery tests.

The write path's crash model: because commits are copy-on-write, the
pages file plus *any* prefix of the write-ahead log is a valid crash
state.  So we run a random mutation workload against a durable
database, snapshot the expected document after every commit, and then
reopen a copy of the directory with the log cut at **every** record
boundary (and mid-record, and with corrupted bytes): recovery must
surface exactly the transactions whose COMMIT made it into the
prefix, and the recovered database must answer queries identically to
one rebuilt from scratch from the expected document — on both
execution engines.
"""

from __future__ import annotations

import random
import shutil

import pytest

from repro.api import Database
from repro.document.document import XmlDocument
from repro.txn.db import (PAGES_FILE, WAL_FILE, create_database,
                          open_database)
from repro.txn.wal import COMMIT, WriteAheadLog
from tests.conftest import random_document
from tests.test_txn import node_shape, query_bindings

TXNS = 5
XPATHS = ("//a//b", "//root//c/d", "//b/c")


def small_subtree(rng: random.Random) -> XmlDocument:
    return random_document(rng.randrange(1 << 30),
                           size=rng.randint(3, 12))


def run_workload(path, seed: int = 7):
    """Create a database, run TXNS random transactions against it.

    Returns ``(oracle, committed_at)``: the expected node list after
    each commit (``oracle[0]`` is the initial document), and the WAL
    offset at which each transaction's COMMIT record ends.
    """
    rng = random.Random(seed)
    database = create_database(path, document=random_document(seed,
                                                              size=50))
    oracle = {0: list(database.document.nodes)}
    for txn_id in range(1, TXNS + 1):
        document = database.document
        with database.transaction() as txn:
            action = rng.random()
            victims = [node for node in document.nodes
                       if node.parent_id >= 0]
            if action < 0.30 and victims:
                target = rng.choice(victims)
                subtree = len(list(document.subtree(target)))
                if subtree <= len(document) // 3:
                    txn.delete_subtree(target.node_id)
                else:
                    txn.append_document(small_subtree(rng))
            elif action < 0.65 and victims:
                parent = rng.choice(victims)
                txn.insert_subtree(parent.node_id, small_subtree(rng))
            else:
                txn.append_document(small_subtree(rng))
        oracle[txn_id] = list(database.document.nodes)
    committed_at = {}
    for record in database.transactions.wal.replay():
        if record.type == COMMIT:
            committed_at[record.txn_id] = record.end_offset
    assert sorted(committed_at) == list(range(1, TXNS + 1))
    return oracle, committed_at


def reopen_with_wal(workdir, crash_dir, wal_bytes: bytes):
    """Copy the pages file, install *wal_bytes*, and recover."""
    crash_dir.mkdir(exist_ok=True)
    shutil.copyfile(workdir / PAGES_FILE, crash_dir / PAGES_FILE)
    (crash_dir / WAL_FILE).write_bytes(wal_bytes)
    return open_database(crash_dir)


class TestCrashInjection:
    @pytest.fixture(scope="class")
    def workload(self, tmp_path_factory):
        workdir = tmp_path_factory.mktemp("txn-workload") / "db"
        oracle, committed_at = run_workload(workdir)
        wal_bytes = (workdir / WAL_FILE).read_bytes()
        scratch = WriteAheadLog(None)
        scratch.restore_bytes(wal_bytes)
        list(scratch.replay())
        assert scratch.torn_offset is None
        return (workdir, oracle, committed_at, wal_bytes,
                scratch.record_boundaries())

    def test_truncation_at_every_boundary(self, workload, tmp_path):
        workdir, oracle, committed_at, wal_bytes, boundaries = workload
        assert boundaries[-1] == len(wal_bytes)
        # also cut 3 bytes into the next record: same visible prefix
        cuts = sorted(set(boundaries)
                      | {cut + 3 for cut in boundaries[:-1]})
        for index, cut in enumerate(cuts):
            expected = sorted(txn_id for txn_id, end
                              in committed_at.items() if end <= cut)
            reopened = reopen_with_wal(workdir, tmp_path / f"c{index}",
                                       wal_bytes[:cut])
            recovery = reopened.transactions.last_recovery
            assert recovery.committed == expected, cut
            tail = max(expected, default=0)
            # anything in flight at the cut must be discarded, and
            # nothing committed may be
            assert all(txn_id > tail for txn_id in recovery.discarded)
            assert node_shape(reopened.document) == node_shape(
                XmlDocument(oracle[tail], name="oracle")), cut

    def test_recovered_database_queries_like_rebuilt(self, workload,
                                                     tmp_path):
        workdir, oracle, committed_at, wal_bytes, _ = workload
        # cut at each commit boundary: the interesting visible states
        for txn_id, end in sorted(committed_at.items()):
            reopened = reopen_with_wal(workdir, tmp_path / f"q{txn_id}",
                                       wal_bytes[:end])
            rebuilt = Database.from_document(
                XmlDocument(oracle[txn_id], name="oracle"))
            for xpath in XPATHS:
                for engine in ("block", "tuple"):
                    assert (query_bindings(reopened, xpath, engine)
                            == query_bindings(rebuilt, xpath, engine)
                            ), (txn_id, xpath, engine)

    def test_corrupted_record_ends_replay(self, workload, tmp_path):
        workdir, oracle, committed_at, wal_bytes, boundaries = workload
        # flip one byte inside the record that follows txn 2's COMMIT
        cut = committed_at[2]
        raw = bytearray(wal_bytes)
        raw[cut + 12] ^= 0xFF
        reopened = reopen_with_wal(workdir, tmp_path / "corrupt",
                                   bytes(raw))
        recovery = reopened.transactions.last_recovery
        assert recovery.committed == [1, 2]
        assert recovery.torn_offset == cut
        assert node_shape(reopened.document) == node_shape(
            XmlDocument(oracle[2], name="oracle"))

    def test_full_log_recovers_final_state(self, workload, tmp_path):
        workdir, oracle, committed_at, wal_bytes, _ = workload
        reopened = reopen_with_wal(workdir, tmp_path / "full",
                                   wal_bytes)
        recovery = reopened.transactions.last_recovery
        assert recovery.committed == list(range(1, TXNS + 1))
        assert recovery.torn_offset is None
        assert node_shape(reopened.document) == node_shape(
            XmlDocument(oracle[TXNS], name="oracle"))
        # and the recovered database accepts new transactions
        with reopened.transaction() as txn:
            txn.append_document(random_document(99, size=5))
        assert reopened.transactions.metrics.committed == 1
