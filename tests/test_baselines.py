"""Tests for the baseline evaluators and execution metrics."""

import pytest

from repro.core.cost import CostFactors
from repro.core.pattern import QueryPattern
from repro.document.parser import parse_xml
from repro.engine.metrics import ExecutionMetrics
from repro.engine.nestedloop import (naive_pattern_matches,
                                     navigational_matches)


@pytest.fixture
def tiny_document():
    return parse_xml(
        "<r><a><b><c/></b><b/></a><a><c/><b><c/><c/></b></a></r>")


@pytest.fixture
def branching_pattern():
    return QueryPattern.build({
        "nodes": ["a", "b", "c"],
        "edges": [(0, 1, "//"), (1, 2, "/")],
    })


class TestOracles:
    def test_oracles_agree(self, tiny_document, branching_pattern):
        naive = naive_pattern_matches(tiny_document, branching_pattern)
        navigational = navigational_matches(tiny_document,
                                            branching_pattern)
        as_set = lambda matches: {
            tuple(m[k].start for k in sorted(m)) for m in matches}
        assert as_set(naive) == as_set(navigational)
        assert len(naive) == len(navigational)

    def test_branching_pattern_oracles(self, tiny_document):
        pattern = QueryPattern.build({
            "nodes": ["a", "b", "c"],
            "edges": [(0, 1, "/"), (0, 2, "//")],
        })
        naive = naive_pattern_matches(tiny_document, pattern)
        navigational = navigational_matches(tiny_document, pattern)
        as_set = lambda matches: {
            tuple(m[k].start for k in sorted(m)) for m in matches}
        assert as_set(naive) == as_set(navigational)

    def test_wildcard_pattern(self, tiny_document):
        pattern = QueryPattern.build({
            "nodes": ["*", "c"], "edges": [(0, 1, "/")]})
        naive = naive_pattern_matches(tiny_document, pattern)
        assert len(naive) == sum(
            1 for c in tiny_document.nodes_with_tag("c")
            for p in [tiny_document.parent(c)] if p is not None)

    def test_no_matches(self, tiny_document, branching_pattern):
        pattern = QueryPattern.build({
            "nodes": ["c", "a"], "edges": [(0, 1, "//")]})
        assert naive_pattern_matches(tiny_document, pattern) == []
        assert navigational_matches(tiny_document, pattern) == []

    def test_single_node_pattern(self, tiny_document):
        pattern = QueryPattern.build({"nodes": ["b"], "edges": []})
        assert len(naive_pattern_matches(tiny_document, pattern)) == \
            tiny_document.tag_count("b")
        assert len(navigational_matches(tiny_document, pattern)) == \
            tiny_document.tag_count("b")


class TestExecutionMetrics:
    def test_simulated_cost_formula(self):
        metrics = ExecutionMetrics(factors=CostFactors(
            f_index=1.0, f_sort=2.0, f_io=16.0, f_stack=1.0))
        metrics.index_items = 100
        metrics.record_sort(8)  # 8 * log2(8) = 24 units
        metrics.buffered_results = 50
        metrics.stack_tuple_ops = 30
        expected = (1.0 * 100 + 2.0 * 24 + 16.0 * 2 * 50 + 1.0 * 2 * 30)
        assert metrics.simulated_cost() == pytest.approx(expected)

    def test_record_sort_tracks_counts(self):
        metrics = ExecutionMetrics()
        metrics.record_sort(0)
        metrics.record_sort(1)
        metrics.record_sort(16)
        assert metrics.sort_count == 3
        assert metrics.sorted_items == 17
        assert metrics.sort_units == pytest.approx(16 * 4)

    def test_merge_accumulates(self):
        first = ExecutionMetrics()
        first.index_items = 5
        first.output_tuples = 2
        second = ExecutionMetrics()
        second.index_items = 7
        second.page_reads = 3
        first.merge(second)
        assert first.index_items == 12
        assert first.page_reads == 3
        assert first.output_tuples == 2

    def test_summary_is_readable(self):
        metrics = ExecutionMetrics()
        metrics.index_items = 4
        text = metrics.summary()
        assert "index=4" in text
        assert "cost=" in text
