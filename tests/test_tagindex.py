"""Unit tests for the tag index."""

import pytest

from repro.errors import StorageError
from repro.document.node import NodeRecord, Region
from repro.document.parser import parse_xml
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.tagindex import TagIndex


@pytest.fixture
def index():
    return TagIndex(BufferPool(InMemoryDisk(), capacity=16))


class TestTagIndex:
    def test_index_document(self, index, small_document):
        index.index_document(small_document)
        assert index.count("manager") == 3
        assert index.count("employee") == 5
        assert index.count("zzz") == 0

    def test_postings_in_document_order(self, index, small_document):
        index.index_document(small_document)
        postings = index.regions("employee")
        assert [r.start for r in postings] == sorted(
            r.start for r in postings)
        expected = [node.region for node in
                    small_document.nodes_with_tag("employee")]
        assert postings == expected

    def test_postings_carry_full_region(self, index, small_document):
        index.index_document(small_document)
        by_start = {node.start: node for node in small_document}
        for region in index.scan("manager"):
            node = by_start[region.start]
            assert region == node.region

    def test_out_of_order_add_rejected(self, index):
        index.add(NodeRecord(5, "a", Region(5, 6, 1), parent_id=0))
        with pytest.raises(StorageError, match="document order"):
            index.add(NodeRecord(3, "a", Region(3, 4, 1), parent_id=0))

    def test_tags_listing(self, index, small_document):
        index.index_document(small_document)
        assert "manager" in index.tags()
        assert index.tags() == sorted(index.tags())

    def test_large_posting_list_spans_pages(self, index):
        document = parse_xml(
            "<r>" + "<n/>" * 3000 + "</r>")
        index.index_document(document)
        assert index.count("n") == 3000
        assert index.page_count("n") > 1
        postings = index.regions("n")
        assert len(postings) == 3000
        assert [r.start for r in postings] == list(range(1, 3001))

    def test_scan_missing_tag_is_empty(self, index):
        assert list(index.scan("nothing")) == []

    def test_page_count_total(self, index, small_document):
        index.index_document(small_document)
        assert index.page_count() == sum(
            index.page_count(tag) for tag in index.tags())
