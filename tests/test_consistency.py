"""Cross-cutting consistency checks.

The optimizers annotate plans incrementally during search;
``estimate_plan_cost`` re-derives cost bottom-up from the same cost
model and statistics.  The two must agree exactly — any drift would
mean the search is optimizing a different objective than it reports.
Also checks that the engine's measured cardinalities line up with the
plan's estimated ones when the estimator is exact.
"""

import pytest

from repro.api import Database
from repro.core import QueryPattern, get_optimizer
from repro.core.cost import CostModel
from repro.core.enumeration import EnumerationContext, estimate_plan_cost
from repro.core.plans import StructuralJoinPlan
from repro.estimation.estimator import ExactEstimator
from repro.workloads import personnel_document

ALGORITHMS = ("DP", "DPP", "DPP'", "DPAP-EB", "DPAP-LD", "FP")

PATTERNS = [
    {"nodes": ["manager", "employee"], "edges": [(0, 1, "//")]},
    {"nodes": ["manager", "employee", "name"],
     "edges": [(0, 1, "//"), (1, 2, "/")]},
    {"nodes": ["manager", "employee", "name", "department"],
     "edges": [(0, 1, "//"), (1, 2, "/"), (0, 3, "//")]},
    {"nodes": ["manager", "employee", "name", "manager", "department",
               "name"],
     "edges": [(0, 1, "//"), (1, 2, "/"), (0, 3, "//"), (3, 4, "/"),
               (4, 5, "/")]},
]


@pytest.fixture(scope="module")
def database():
    return Database.from_document(personnel_document(target_nodes=600))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("spec", PATTERNS,
                         ids=[f"p{i}" for i in range(len(PATTERNS))])
def test_reported_cost_matches_replayed_cost(database, algorithm, spec):
    pattern = QueryPattern.build(spec)
    estimator = ExactEstimator(database.document)
    result = get_optimizer(algorithm).optimize(pattern, estimator)
    context = EnumerationContext(pattern, CostModel(), estimator)
    replayed = estimate_plan_cost(result.plan, context)
    # order_by-free final sorts never appear, so replay must be exact
    assert replayed == pytest.approx(result.estimated_cost)


@pytest.mark.parametrize("spec", PATTERNS,
                         ids=[f"p{i}" for i in range(len(PATTERNS))])
def test_exact_estimates_match_measured_cardinalities(database, spec):
    """With exact pairwise statistics, every single-edge join's
    estimated cardinality equals the engine's measured output."""
    pattern = QueryPattern.build(spec)
    result = database.optimize(pattern, algorithm="DPP", exact=True)
    execution = database.execute(result.plan, pattern)
    # find single-edge joins (both inputs are scans) and check them
    for node in result.plan.walk():
        if isinstance(node, StructuralJoinPlan) and len(
                node.pattern_nodes()) == 2:
            sub_execution = database.execute(node, QueryPattern.build({
                "nodes": spec["nodes"],
                "edges": spec["edges"],
            }))
            assert len(sub_execution) == pytest.approx(
                node.estimated_cardinality)
    assert len(execution) > 0


def test_simulated_cost_tracks_estimates_loosely(database):
    """Measured engine work should land within an order of magnitude
    of the optimizer's estimate when statistics are exact (the
    residual gap is the independence assumption)."""
    pattern = QueryPattern.build(PATTERNS[2])
    result = database.optimize(pattern, algorithm="DPP", exact=True)
    execution = database.execute(result.plan, pattern)
    measured = execution.metrics.simulated_cost()
    estimated = result.estimated_cost
    assert estimated / 10 <= measured <= estimated * 10
