"""Smoke tests: every example script runs end to end.

Examples are part of the public surface; they must not rot.  Each is
executed in-process (patching ``sys.argv`` where the script takes
arguments) with sizes small enough for the test suite.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    script = EXAMPLES / name
    assert script.exists(), f"missing example {name}"
    old_argv = sys.argv
    sys.argv = [str(script)] + argv
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    output = run_example("quickstart.py", [], capsys)
    assert "Matches: 2" in output
    assert "Chosen plan" in output


def test_personnel_query(capsys):
    output = run_example("personnel_query.py", ["500"], capsys)
    for algorithm in ("DP", "DPP", "DPAP-EB", "DPAP-LD", "FP", "bad"):
        assert algorithm in output
    assert "Optimal plan" in output


def test_bibliography_search(capsys):
    output = run_example("bibliography_search.py", [], capsys)
    assert "//article/author" in output
    assert "estimator check" in output


def test_storage_tour(capsys):
    output = run_example("storage_tour.py", [], capsys)
    assert "Re-opened" in output
    assert "matches from the reopened" in output


def test_company_analytics(capsys):
    output = run_example("company_analytics.py", [], capsys)
    assert "direct reports" in output
    assert "Time to first result" in output


def test_search_trace(capsys):
    output = run_example("search_trace.py", [], capsys)
    assert "Search process" in output
    assert "deadends avoided" in output
    assert "Chosen plan" in output


@pytest.mark.slow
def test_reproduce_paper_quick(capsys):
    output = run_example("reproduce_paper.py", ["--quick"], capsys)
    for artifact in ("Table 1", "Table 2", "Table 3", "Figure 7",
                     "Figure 8"):
        assert artifact in output
