"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.api import Database
from repro.core.pattern import QueryPattern
from repro.document.builder import DocumentBuilder
from repro.document.document import XmlDocument
from repro.document.parser import parse_xml

PERSONNEL_XML = """
<company>
  <manager id="m1"><name>Ada Adams</name>
    <employee id="e1"><name>Bob Baker</name></employee>
    <employee id="e2"><name>Carol Chen</name><phone>+1-555-0000</phone></employee>
    <department id="d1"><name>Sales</name>
      <employee id="e3"><name>Dan Diaz</name></employee>
    </department>
    <manager id="m2"><name>Eve Evans</name>
      <department id="d2"><name>Research</name></department>
      <employee id="e4"><name>Frank Fischer</name></employee>
    </manager>
  </manager>
  <manager id="m3"><name>Grace Gupta</name>
    <employee id="e5"><name>Hugo Hansen</name></employee>
  </manager>
</company>
"""


@pytest.fixture(scope="session")
def personnel_xml() -> str:
    return PERSONNEL_XML


@pytest.fixture(scope="session")
def small_document() -> XmlDocument:
    """A hand-written personnel document used across the suite."""
    return parse_xml(PERSONNEL_XML, name="small-pers")


@pytest.fixture(scope="session")
def small_database(small_document: XmlDocument) -> Database:
    return Database.from_document(small_document)


@pytest.fixture(scope="session")
def running_example_pattern() -> QueryPattern:
    """The Fig. 1 running example: manager//employee/name +
    manager//manager/department/name (shape c, 6 nodes)."""
    return QueryPattern.build({
        "nodes": ["manager", "employee", "name", "manager", "department",
                  "name"],
        "edges": [(0, 1, "//"), (1, 2, "/"), (0, 3, "//"), (3, 4, "/"),
                  (4, 5, "/")],
    })


@pytest.fixture
def chain_pattern() -> QueryPattern:
    """manager // employee / name — the simplest multi-join pattern."""
    return QueryPattern.build({
        "nodes": ["manager", "employee", "name"],
        "edges": [(0, 1, "//"), (1, 2, "/")],
    })


def random_document(seed: int, size: int = 40,
                    tags: tuple[str, ...] = ("a", "b", "c", "d")) -> XmlDocument:
    """A random tree document for property-style tests.

    Grows a tree by attaching each new node under a uniformly chosen
    existing open path; deterministic for a given seed.
    """
    rng = random.Random(seed)
    builder = DocumentBuilder(name=f"random-{seed}")
    builder.start_element("root")
    open_depth = 1
    created = 1
    while created < size:
        action = rng.random()
        if action < 0.55 or open_depth == 1:
            builder.start_element(rng.choice(tags))
            open_depth += 1
            created += 1
        elif open_depth > 1:
            builder.end_element()
            open_depth -= 1
    while open_depth > 0:
        builder.end_element()
        open_depth -= 1
    return builder.finish()


def canonical_bindings(bindings: list[dict[int, object]]) -> set[tuple]:
    """Order-independent identity for lists of binding dicts."""
    return {tuple(binding[key].start for key in sorted(binding))
            for binding in bindings}
