"""Unit tests for positional and level histograms."""

import pytest

from repro.errors import EstimationError
from repro.document.node import Region
from repro.document.parser import parse_xml
from repro.estimation.estimator import count_containment_pairs
from repro.estimation.histogram import (LevelHistogram,
                                        PositionalHistogram,
                                        _overlap_uniform_less)


class TestOverlapProbability:
    def test_disjoint_intervals(self):
        assert _overlap_uniform_less(0, 1, 5, 6) == 1.0
        assert _overlap_uniform_less(5, 6, 0, 1) == 0.0

    def test_identical_intervals(self):
        assert _overlap_uniform_less(0, 10, 0, 10) == pytest.approx(0.5)

    def test_partial_overlap(self):
        # X ~ U[0,2), Y ~ U[1,3): P(X<Y) = 7/8
        assert _overlap_uniform_less(0, 2, 1, 3) == pytest.approx(7 / 8)

    def test_point_masses(self):
        assert _overlap_uniform_less(1, 1, 2, 2) == 1.0
        assert _overlap_uniform_less(2, 2, 1, 1) == 0.0
        assert _overlap_uniform_less(1, 1, 0, 2) == pytest.approx(0.5)
        assert _overlap_uniform_less(0, 2, 1, 1) == pytest.approx(0.5)

    def test_probability_bounds(self):
        for args in [(0, 3, 1, 9), (2, 7, 0, 4), (0, 1, 0, 100)]:
            p = _overlap_uniform_less(*args)
            assert 0.0 <= p <= 1.0


class TestPositionalHistogram:
    def test_add_and_total(self):
        histogram = PositionalHistogram(position_space=100, grid=4)
        histogram.add(Region(0, 50, 0))
        histogram.add(Region(60, 70, 1))
        assert len(histogram) == 2

    def test_out_of_space_rejected(self):
        histogram = PositionalHistogram(position_space=10, grid=2)
        with pytest.raises(EstimationError):
            histogram.add(Region(5, 10, 0))

    def test_invalid_parameters(self):
        with pytest.raises(EstimationError):
            PositionalHistogram(position_space=0)
        with pytest.raises(EstimationError):
            PositionalHistogram(position_space=10, grid=0)

    def test_empty_join_estimate(self):
        left = PositionalHistogram(10, 2)
        right = PositionalHistogram(10, 2)
        assert left.estimate_containment_join(right) == 0.0

    def test_estimate_accuracy_on_real_document(self):
        """Histogram estimate should be within ~3x of truth on a
        moderately recursive document at grid=16."""
        from repro.workloads import personnel_document

        document = personnel_document(target_nodes=600, seed=9)
        space = len(document)
        managers = [n.region for n in document.nodes_with_tag("manager")]
        employees = [n.region for n in document.nodes_with_tag("employee")]
        anc = PositionalHistogram(space, 16)
        anc.add_all(managers)
        desc = PositionalHistogram(space, 16)
        desc.add_all(employees)
        truth = count_containment_pairs(managers, employees)
        estimate = anc.estimate_containment_join(desc)
        assert truth > 0
        assert truth / 3 <= estimate <= truth * 3

    def test_finer_grid_not_worse(self):
        from repro.workloads import personnel_document

        document = personnel_document(target_nodes=600, seed=9)
        space = len(document)
        managers = [n.region for n in document.nodes_with_tag("manager")]
        names = [n.region for n in document.nodes_with_tag("name")]
        truth = count_containment_pairs(managers, names)
        errors = []
        for grid in (1, 8, 32):
            anc = PositionalHistogram(space, grid)
            anc.add_all(managers)
            desc = PositionalHistogram(space, grid)
            desc.add_all(names)
            estimate = anc.estimate_containment_join(desc)
            errors.append(abs(estimate - truth) / truth)
        assert errors[-1] <= errors[0]


class TestLevelHistogram:
    def test_probability(self):
        histogram = LevelHistogram()
        for level in (1, 1, 2, 3):
            histogram.add(level)
        assert histogram.probability(1) == pytest.approx(0.5)
        assert histogram.probability(9) == 0.0

    def test_empty(self):
        assert LevelHistogram().probability(0) == 0.0

    def test_parent_child_fraction(self):
        parents = LevelHistogram()
        parents.add(1)
        children = LevelHistogram()
        children.add(2)
        children.add(3)
        # of deeper pairs, half are exactly one level apart
        assert parents.parent_child_fraction(children) == pytest.approx(0.5)

    def test_parent_child_fraction_no_deeper(self):
        parents = LevelHistogram()
        parents.add(5)
        children = LevelHistogram()
        children.add(2)
        assert parents.parent_child_fraction(children) == 0.0


class TestCountContainmentPairs:
    def test_simple_nesting(self):
        document = parse_xml("<a><b><a><b/></a></b></a>")
        a_regions = [n.region for n in document.nodes_with_tag("a")]
        b_regions = [n.region for n in document.nodes_with_tag("b")]
        assert count_containment_pairs(a_regions, b_regions) == 3
        assert count_containment_pairs(
            a_regions, b_regions, parent_child=True) == 2

    def test_self_join(self):
        document = parse_xml("<a><a><a/></a></a>")
        regions = [n.region for n in document.nodes_with_tag("a")]
        assert count_containment_pairs(regions, regions) == 3

    def test_matches_bruteforce(self, small_document):
        tags = small_document.tags()
        for anc_tag in tags:
            for desc_tag in tags:
                ancs = [n.region for n in
                        small_document.nodes_with_tag(anc_tag)]
                descs = [n.region for n in
                         small_document.nodes_with_tag(desc_tag)]
                brute = sum(1 for a in ancs for d in descs
                            if a.contains(d))
                assert count_containment_pairs(ancs, descs) == brute
                brute_pc = sum(1 for a in ancs for d in descs
                               if a.is_parent_of(d))
                assert count_containment_pairs(
                    ancs, descs, parent_child=True) == brute_pc
