"""Smoke tests for the experiment drivers, on miniature data sets.

The real experiments run from ``benchmarks/``; these tests verify that
each driver produces well-formed rows, renders a table, and exhibits
the paper's headline shape properties at small scale.
"""

import pytest

from repro.bench.experiments import (ALGORITHMS, TABLE2_ALGORITHMS,
                                     figure8, table1, table2, table3)
from repro.bench.harness import ExperimentSetup
from repro.bench.tables import render_table


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(pers_nodes=400, dblp_entries=60,
                           mbench_nodes=400, bad_plan_samples=10)


class TestRenderTable:
    def test_renders_aligned(self):
        text = render_table("T", ["x", "y"], [[1, 2.5], ["ab", 10000.0]],
                            note="n")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "x" in lines[2] and "y" in lines[2]
        assert "10,000" in text
        assert text.endswith("n")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table("T", ["x"], [[1, 2]])


class TestTable1(object):
    @pytest.fixture(scope="class")
    def output(self, setup):
        return table1(setup)

    def test_all_cells_present(self, output):
        assert len(output.rows) == 8
        for row in output.rows:
            for algorithm in ALGORITHMS:
                assert row[f"{algorithm}.opt_ms"] >= 0
                assert row[f"{algorithm}.eval_sim"] > 0
            assert row["bad.eval_sim"] > 0

    def test_optimal_algorithms_agree(self, output):
        """DP and DPP must select equally good plans everywhere."""
        for row in output.rows:
            assert row["DP.eval_sim"] == pytest.approx(
                row["DPP.eval_sim"], rel=0.01)

    def test_bad_plan_is_much_worse(self, output):
        for row in output.rows:
            assert row["bad.eval_sim"] >= 2 * row["DPP.eval_sim"]

    def test_heuristics_close_to_optimal_in_magnitude(self, output):
        for row in output.rows:
            assert row["DPAP-EB.eval_sim"] <= 20 * row["DPP.eval_sim"]
            assert row["FP.eval_sim"] <= 20 * row["DPP.eval_sim"]

    def test_render(self, output):
        assert "Table 1" in output.text
        assert "Q.Pers.3.d" in output.text


class TestTable2:
    @pytest.fixture(scope="class")
    def output(self, setup):
        return table2(setup)

    def test_six_variants(self, output):
        assert [row["algorithm"] for row in output.rows] == list(
            TABLE2_ALGORITHMS)

    def test_plan_count_ordering(self, output):
        plans = {row["algorithm"]: row["plans"] for row in output.rows}
        assert plans["DP"] > plans["DPP"]
        assert plans["DPP'"] > plans["DPP"]
        assert plans["DPP"] > plans["FP"]
        assert plans["DPAP-EB"] < plans["DPP"]
        assert plans["DPAP-LD"] < plans["DPP"]

    def test_exact_variants_same_eval(self, output):
        sims = {row["algorithm"]: row["eval_sim"] for row in output.rows}
        assert sims["DP"] == pytest.approx(sims["DPP"], rel=0.01)
        assert sims["DP"] == pytest.approx(sims["DPP'"], rel=0.01)


class TestTable3:
    @pytest.fixture(scope="class")
    def output(self, setup):
        return table3(setup, foldings=(1, 4))

    def test_rows_per_folding(self, output):
        foldings = {row["folding"] for row in output.rows}
        assert foldings == {1, 4}
        algorithms = {row["algorithm"] for row in output.rows}
        assert algorithms == set(ALGORITHMS) | {"bad"}

    def test_eval_grows_with_folding(self, output):
        by_algorithm = {}
        for row in output.rows:
            by_algorithm.setdefault(row["algorithm"], {})[
                row["folding"]] = row["eval_sim"]
        for algorithm, series in by_algorithm.items():
            assert series[4] > series[1], algorithm

    def test_opt_time_stays_flat(self, output):
        """Sec 4.3: optimization time does not grow with data size."""
        dpp_rows = {row["folding"]: row["opt_ms"]
                    for row in output.rows if row["algorithm"] == "DPP"}
        assert dpp_rows[4] < 25 * max(dpp_rows[1], 0.5)


class TestFigure8:
    @pytest.fixture(scope="class")
    def output(self, setup):
        return figure8(setup, query_name="Q.Pers.3.d")

    def test_te_sweep_series(self, output):
        sweep = [row for row in output.rows
                 if row["series"].startswith("DPAP-EB(")]
        assert len(sweep) == 7  # one per T_e in 1..7 (7-node pattern)

    def test_eval_improves_with_te(self, output):
        """Larger T_e must not pick a meaningfully worse plan (the
        optimizer minimizes *estimated* cost, so measured evaluation
        may wobble within estimation error)."""
        sweep = [row["eval_sim"] for row in output.rows
                 if row["series"].startswith("DPAP-EB(")]
        assert sweep[-1] <= sweep[0] * 1.25

    def test_full_bound_matches_dpp_plan(self, output):
        sims = {row["series"]: row["eval_sim"] for row in output.rows}
        assert sims["DPAP-EB(7)"] == pytest.approx(sims["DPP"],
                                                   rel=0.01)

    def test_fp_cheapest_optimizer(self, output):
        opt = {row["series"]: row["opt_ms"] for row in output.rows}
        assert opt["FP"] <= opt["DPP"]
        assert opt["FP"] <= opt["DP"]


class TestIngestCrossover:
    @pytest.fixture(scope="class")
    def output(self):
        from repro.bench.ingest import ingest_crossover_report

        return ingest_crossover_report(
            ExperimentSetup(pers_nodes=300), foldings=(1, 3))

    def test_rows_well_formed(self, output):
        assert [row["folding"] for row in output.rows] == [1, 3]
        assert output.rows[1]["nodes"] > output.rows[0]["nodes"]
        assert output.rows[1]["commits"] >= 1
        assert "Folding" in output.text

    def test_baseline_audit_is_clean(self, output):
        # the x1 audit replays the log it just wrote: zero flips
        assert output.rows[0]["flips"] == 0

    def test_growth_happened_without_reload(self, output):
        # every growth step bumped the statistics epoch via a commit
        assert (output.rows[1]["epoch"] - output.rows[0]["epoch"]
                == output.rows[1]["commits"])
        assert output.rows[1]["wal_kib"] > 0
