"""Property/fuzz tests for the XPath pipeline.

Round-trip property: any generated :class:`QueryPattern` rendered to
XPath (:func:`pattern_to_xpath`) and compiled back
(:func:`compile_xpath`) yields an isomorphic pattern — compilation
renumbers node ids, so isomorphism is checked via
:func:`pattern_signature`.

Robustness property: no input string, however malformed, may escape
the front-end as anything but a :class:`ReproError` subclass.  The
fuzzer throws curated near-miss inputs and random token soup at the
compiler; a bare ``ValueError``/``IndexError``/... is a bug.
"""

from __future__ import annotations

import random
import string

import pytest

from repro.errors import ReproError, XPathSyntaxError
from repro.workloads import make_rng, random_pattern
from repro.xpath import compile_xpath
from repro.xpath.render import pattern_signature, pattern_to_xpath

ROUND_TRIPS = 300
SOUP_CASES = 400

MALFORMED = [
    "",
    "   ",
    "/",
    "//",
    "a",
    "///a",
    "//a//",
    "//a[",
    "//a]",
    "//a[@]",
    "//a[.//]",
    "//a[1]",
    "//a[@id=]",
    "//a/[b]",
    "//a b",
    "//a[text()=unquoted]",
    "//a[text() ~ 'x']",
    "//a@b",
    "//9a",
    "//a[[b]]",
    "//*[",
    "//a['x' =]",
    "//a[@id='x' and]",
    "//a[text()='x'",
]


def test_round_trip_random_patterns():
    rng = make_rng(77)
    for _ in range(ROUND_TRIPS):
        pattern = random_pattern(
            rng, tags=("alpha", "beta", "gamma", "delta"),
            min_nodes=1, max_nodes=6, wildcard_chance=0.15,
            predicate_chance=0.4, order_by_chance=0.0)
        xpath = pattern_to_xpath(pattern)
        recompiled = compile_xpath(xpath)
        assert pattern_signature(recompiled) == \
            pattern_signature(pattern), xpath
        # rendering must be a fixed point once in compiled form
        assert pattern_signature(compile_xpath(
            pattern_to_xpath(recompiled))) == pattern_signature(pattern)


@pytest.mark.parametrize("text", MALFORMED, ids=repr)
def test_malformed_inputs_raise_repro_errors(text):
    with pytest.raises(ReproError):
        compile_xpath(text)


def test_syntax_errors_carry_a_position():
    with pytest.raises(XPathSyntaxError) as excinfo:
        compile_xpath("//a[@id=]")
    assert excinfo.value.position is not None


@pytest.mark.slow
def test_token_soup_never_escapes_the_error_hierarchy():
    """Random character soup either compiles or raises ReproError."""
    alphabet = string.ascii_lowercase + "/[]@*()'\"=<>! ."
    rng = random.Random(424242)
    compiled = 0
    for _ in range(SOUP_CASES):
        text = "".join(rng.choice(alphabet)
                       for _ in range(rng.randint(1, 24)))
        try:
            compile_xpath(text)
            compiled += 1
        except ReproError:
            pass
    # sanity: the soup is not all garbage nor all valid
    assert 0 <= compiled < SOUP_CASES


def test_mutated_valid_paths_never_escape():
    """Single-character mutations of valid XPaths stay well-behaved."""
    rng = make_rng(99)
    for _ in range(120):
        pattern = random_pattern(
            rng, tags=("a", "b", "c"), min_nodes=2, max_nodes=4,
            predicate_chance=0.3, order_by_chance=0.0)
        text = pattern_to_xpath(pattern)
        position = rng.randrange(len(text))
        mutation = rng.choice("/[]@*='x ")
        mutated = text[:position] + mutation + text[position + 1:]
        try:
            compile_xpath(mutated)
        except ReproError:
            pass
