"""Correctness tests for the holistic twig join (TwigStack)."""

import pytest

from repro.api import Database
from repro.core.pattern import QueryPattern
from repro.document.parser import parse_xml
from repro.engine.nestedloop import naive_pattern_matches

from tests.conftest import random_document


def oracle_keys(document, pattern):
    return {tuple(binding[k].start for k in sorted(binding))
            for binding in naive_pattern_matches(document, pattern)}


PATTERNS = {
    "single": {"nodes": ["manager"], "edges": []},
    "pair_ad": {"nodes": ["manager", "employee"],
                "edges": [(0, 1, "//")]},
    "pair_pc": {"nodes": ["manager", "employee"],
                "edges": [(0, 1, "/")]},
    "path": {"nodes": ["manager", "employee", "name"],
             "edges": [(0, 1, "//"), (1, 2, "/")]},
    "twig": {"nodes": ["manager", "employee", "department"],
             "edges": [(0, 1, "//"), (0, 2, "//")]},
    "running": {"nodes": ["manager", "employee", "name", "manager",
                          "department", "name"],
                "edges": [(0, 1, "//"), (1, 2, "/"), (0, 3, "//"),
                          (3, 4, "/"), (4, 5, "/")]},
}


@pytest.mark.parametrize("name", sorted(PATTERNS))
def test_matches_oracle_on_personnel(small_database, small_document,
                                     name):
    pattern = QueryPattern.build(PATTERNS[name])
    result = small_database.holistic_query(pattern)
    assert result.canonical() == oracle_keys(small_document, pattern)


def test_matches_binary_join_plans(small_database,
                                   running_example_pattern):
    binary = small_database.query(running_example_pattern)
    holistic = small_database.holistic_query(running_example_pattern)
    assert holistic.canonical() == binary.execution.canonical()
    assert len(holistic) == len(binary)


def test_self_join_pattern(small_database, small_document):
    pattern = QueryPattern.build({
        "nodes": ["manager", "manager", "name"],
        "edges": [(0, 1, "//"), (1, 2, "/")],
    })
    result = small_database.holistic_query(pattern)
    assert result.canonical() == oracle_keys(small_document, pattern)


def test_no_matches(small_database):
    pattern = QueryPattern.build({
        "nodes": ["name", "manager"], "edges": [(0, 1, "//")]})
    assert len(small_database.holistic_query(pattern)) == 0


def test_missing_tag(small_database):
    pattern = QueryPattern.build({
        "nodes": ["manager", "unicorn"], "edges": [(0, 1, "//")]})
    assert len(small_database.holistic_query(pattern)) == 0


def test_predicates_respected(small_database, small_document):
    pattern = small_database.compile(
        "//manager[.//department]/employee[name = 'Bob Baker']")
    result = small_database.holistic_query(pattern)
    assert result.canonical() == oracle_keys(small_document, pattern)
    assert len(result) >= 1


def test_metrics_populated(small_database, running_example_pattern):
    result = small_database.holistic_query(running_example_pattern)
    metrics = result.metrics
    assert metrics.index_items > 0
    assert metrics.stack_tuple_ops > 0
    assert metrics.output_tuples == len(result)
    assert metrics.wall_seconds > 0


def test_phase1_skips_useless_elements(small_database):
    """TwigStack's look-ahead should push fewer elements than the
    total candidate count when many candidates are irrelevant."""
    pattern = small_database.compile("//department/employee/name")
    result = small_database.holistic_query(pattern)
    assert result.metrics.stack_tuple_ops < result.metrics.index_items


@pytest.mark.parametrize("seed", range(8))
def test_random_documents_random_patterns(seed):
    document = random_document(seed, size=35)
    database = Database.from_document(document)
    patterns = [
        {"nodes": ["a", "b"], "edges": [(0, 1, "//")]},
        {"nodes": ["a", "b", "c"], "edges": [(0, 1, "//"), (0, 2, "/")]},
        {"nodes": ["a", "b", "c", "d"],
         "edges": [(0, 1, "//"), (1, 2, "/"), (0, 3, "//")]},
        {"nodes": ["b", "a", "a"], "edges": [(0, 1, "/"), (1, 2, "//")]},
    ]
    for spec in patterns:
        pattern = QueryPattern.build(spec)
        result = database.holistic_query(pattern)
        assert result.canonical() == oracle_keys(document, pattern), spec
