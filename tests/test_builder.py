"""Unit tests for DocumentBuilder."""

import pytest

from repro.errors import DocumentError
from repro.document.builder import DocumentBuilder
from repro.document.parser import parse_xml


def build_simple():
    builder = DocumentBuilder(name="t")
    with builder.element("root"):
        builder.leaf("child", text="hello")
        with builder.element("branch", {"k": "v"}):
            builder.leaf("leaf")
    return builder.finish()


class TestDocumentBuilder:
    def test_preorder_numbering(self):
        document = build_simple()
        assert [node.tag for node in document] == [
            "root", "child", "branch", "leaf"]
        assert [node.start for node in document] == [0, 1, 2, 3]

    def test_region_nesting(self):
        document = build_simple()
        root, child, branch, leaf = document.nodes
        assert root.region.end == 3
        assert child.region.end == 1
        assert branch.region.end == 3
        assert root.is_parent_of(child)
        assert branch.is_parent_of(leaf)
        assert root.is_ancestor_of(leaf)
        assert not root.is_parent_of(leaf)

    def test_levels(self):
        document = build_simple()
        assert [node.level for node in document] == [0, 1, 1, 2]

    def test_text_is_stripped_and_joined(self):
        builder = DocumentBuilder()
        builder.start_element("a")
        builder.text("  hello ")
        builder.text(" world  ")
        builder.end_element("a")
        document = builder.finish()
        assert document.root.text == "hello  world"

    def test_attributes_preserved(self):
        document = build_simple()
        assert document.nodes[2].attributes == {"k": "v"}

    def test_mismatched_end_tag(self):
        builder = DocumentBuilder()
        builder.start_element("a")
        with pytest.raises(DocumentError, match="mismatched end tag"):
            builder.end_element("b")

    def test_end_without_start(self):
        builder = DocumentBuilder()
        with pytest.raises(DocumentError, match="no open element"):
            builder.end_element()

    def test_unclosed_element(self):
        builder = DocumentBuilder()
        builder.start_element("a")
        with pytest.raises(DocumentError, match="unclosed"):
            builder.finish()

    def test_two_roots_rejected(self):
        builder = DocumentBuilder()
        builder.start_element("a")
        builder.end_element()
        with pytest.raises(DocumentError, match="one root"):
            builder.start_element("b")

    def test_empty_document_rejected(self):
        with pytest.raises(DocumentError):
            DocumentBuilder().finish()

    def test_builder_single_use(self):
        builder = DocumentBuilder()
        builder.start_element("a")
        builder.end_element()
        builder.finish()
        with pytest.raises(DocumentError, match="already finished"):
            builder.start_element("b")

    def test_text_outside_root(self):
        builder = DocumentBuilder()
        builder.text("   \n ")  # whitespace is tolerated
        with pytest.raises(DocumentError, match="outside the root"):
            builder.text("oops")


class TestSplice:
    def test_splice_shifts_regions(self):
        inner = parse_xml("<x><y/><z><w/></z></x>")
        builder = DocumentBuilder()
        builder.start_element("outer")
        builder.leaf("pre")
        builder.splice(inner)
        builder.end_element()
        document = builder.finish()
        assert [node.tag for node in document] == [
            "outer", "pre", "x", "y", "z", "w"]
        spliced_root = document.nodes[2]
        assert spliced_root.level == 1
        assert spliced_root.parent_id == 0
        assert spliced_root.region.end == 5
        assert document.nodes[5].level == 3

    def test_splice_requires_open_parent(self):
        inner = parse_xml("<x/>")
        builder = DocumentBuilder()
        with pytest.raises(DocumentError, match="open parent"):
            builder.splice(inner)

    def test_splice_twice_produces_two_copies(self):
        inner = parse_xml("<x><y/></x>")
        builder = DocumentBuilder()
        builder.start_element("outer")
        builder.splice(inner)
        builder.splice(inner)
        builder.end_element()
        document = builder.finish()
        assert [node.tag for node in document] == [
            "outer", "x", "y", "x", "y"]
        assert document.tag_count("x") == 2
