"""Tests for catalog persistence and Database.open."""

import pytest

from repro.api import Database
from repro.errors import ReproError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.catalog import (read_catalog, reserve_catalog_page,
                                   write_catalog)
from repro.storage.disk import FileDisk, InMemoryDisk
from repro.workloads import personnel_document


class TestCatalog:
    def test_roundtrip_small(self):
        pool = BufferPool(InMemoryDisk(), capacity=8)
        reserve_catalog_page(pool)
        payload = {"name": "x", "values": [1, 2, 3]}
        write_catalog(pool, payload)
        assert read_catalog(pool) == payload

    def test_roundtrip_multichunk(self):
        pool = BufferPool(InMemoryDisk(), capacity=8)
        reserve_catalog_page(pool)
        payload = {"big": ["chunk" * 10] * 500}
        write_catalog(pool, payload)
        assert read_catalog(pool) == payload

    def test_rewrite_replaces(self):
        pool = BufferPool(InMemoryDisk(), capacity=8)
        reserve_catalog_page(pool)
        write_catalog(pool, {"version": 1})
        write_catalog(pool, {"version": 2})
        assert read_catalog(pool) == {"version": 2}

    def test_reserve_requires_empty_disk(self):
        disk = InMemoryDisk()
        disk.allocate()
        with pytest.raises(StorageError, match="empty disk"):
            reserve_catalog_page(BufferPool(disk, capacity=4))

    def test_read_without_catalog(self):
        pool = BufferPool(InMemoryDisk(), capacity=4)
        reserve_catalog_page(pool)
        with pytest.raises(StorageError, match="no catalog"):
            read_catalog(pool)


class TestDatabasePersistence:
    def test_memory_roundtrip(self):
        document = personnel_document(target_nodes=400)
        database = Database.from_document(document)
        reference = database.query("//manager//employee/name")
        database.persist()

        reopened = Database.open(database.disk)
        assert len(reopened.document) == len(document)
        result = reopened.query("//manager//employee/name")
        assert result.execution.canonical() == (
            reference.execution.canonical())

    def test_file_roundtrip(self, tmp_path, personnel_xml):
        path = tmp_path / "db.pages"
        with FileDisk(path) as disk:
            database = Database(disk=disk)
            from repro.document.parser import parse_xml

            database.load(parse_xml(personnel_xml, name="pers"))
            expected = database.query("//manager/name")
            expected_keys = expected.execution.canonical()
            database.persist()

        with FileDisk(path) as disk:
            reopened = Database.open(disk)
            assert reopened.name == "pers"
            result = reopened.query("//manager/name")
            assert result.execution.canonical() == expected_keys
            # predicates work too: text lives in the element store
            filtered = reopened.query("//name[text() = 'Ada Adams']")
            assert len(filtered) == 1

    def test_reopened_statistics_rebuilt(self, tmp_path):
        path = tmp_path / "stats.pages"
        document = personnel_document(target_nodes=300)
        with FileDisk(path) as disk:
            database = Database(disk=disk)
            database.load(document)
            pattern = database.compile("//manager//employee")
            original = database.estimator.edge_cardinality(pattern, 0, 1)
            database.persist()
        with FileDisk(path) as disk:
            reopened = Database.open(disk)
            pattern = reopened.compile("//manager//employee")
            rebuilt = reopened.estimator.edge_cardinality(pattern, 0, 1)
            assert rebuilt == pytest.approx(original)

    def test_open_unpersisted_disk_fails(self):
        database = Database.from_document(
            personnel_document(target_nodes=200))
        with pytest.raises(StorageError, match="no catalog"):
            Database.open(database.disk)

    def test_persist_requires_document(self):
        with pytest.raises(ReproError, match="no document"):
            Database().persist()

    def test_repersist_after_no_changes(self):
        database = Database.from_document(
            personnel_document(target_nodes=200))
        database.persist()
        database.persist()
        reopened = Database.open(database.disk)
        assert len(reopened.document) == len(database.document)
