"""Correctness tests for the Stack-Tree join operators.

Every test checks both Stack-Tree-Desc and Stack-Tree-Anc against a
brute-force oracle, and asserts the documented output orders.
"""

import pytest

from repro.api import Database
from repro.core.pattern import Axis, PatternNode
from repro.document.parser import parse_xml
from repro.engine.context import EngineContext
from repro.engine.nestedloop import NestedLoopJoin
from repro.engine.scan import IndexScan
from repro.engine.stackjoin import StackTreeAncJoin, StackTreeDescJoin


def engine_for(document):
    database = Database.from_document(document)
    return EngineContext(database.index, database.store, document)


def oracle_pairs(document, anc_tag, desc_tag, axis):
    pairs = []
    for anc in document.nodes_with_tag(anc_tag):
        for desc in document.nodes_with_tag(desc_tag):
            if not anc.is_ancestor_of(desc):
                continue
            if axis is Axis.CHILD and not anc.is_parent_of(desc):
                continue
            pairs.append((anc.start, desc.start))
    return sorted(pairs)


def run_join(document, join_class, anc_tag, desc_tag, axis):
    engine = engine_for(document)
    join = join_class(
        IndexScan(PatternNode(0, anc_tag), engine),
        IndexScan(PatternNode(1, desc_tag), engine),
        0, 1, axis)
    rows = list(join.run())
    return engine, join, [(match[0].start, match[1].start)
                          for match in rows]


DOCUMENTS = {
    "flat": "<r><a/><b/><a/><b/></r>",
    "nested": "<r><a><b/><a><b/><b/></a></a><b/></r>",
    "deep": "<r><a><a><a><b/></a></a></a></r>",
    "siblings": "<r><a><b/></a><a><b/></a><a/></r>",
    "mixed": ("<r><a><c/><b><c/></b><a><b><b/></b></a></a>"
              "<b><a><b/></a></b></r>"),
}


@pytest.mark.parametrize("xml_name", sorted(DOCUMENTS))
@pytest.mark.parametrize("axis", [Axis.DESCENDANT, Axis.CHILD])
class TestAgainstOracle:
    def test_stack_tree_desc(self, xml_name, axis):
        document = parse_xml(DOCUMENTS[xml_name])
        expected = oracle_pairs(document, "a", "b", axis)
        __, __, pairs = run_join(document, StackTreeDescJoin, "a", "b",
                                 axis)
        assert sorted(pairs) == expected
        # output ordered by descendant start
        assert [p[1] for p in pairs] == sorted(p[1] for p in pairs)

    def test_stack_tree_anc(self, xml_name, axis):
        document = parse_xml(DOCUMENTS[xml_name])
        expected = oracle_pairs(document, "a", "b", axis)
        __, __, pairs = run_join(document, StackTreeAncJoin, "a", "b",
                                 axis)
        assert sorted(pairs) == expected
        assert [p[0] for p in pairs] == sorted(p[0] for p in pairs)


class TestSelfJoin:
    def test_same_tag_both_sides(self):
        document = parse_xml("<r><a><a><a/></a><a/></a></r>")
        expected = oracle_pairs(document, "a", "a", Axis.DESCENDANT)
        __, __, pairs = run_join(document, StackTreeDescJoin, "a", "a",
                                 Axis.DESCENDANT)
        assert sorted(pairs) == expected
        assert expected  # non-trivial

    def test_self_join_parent_child(self):
        document = parse_xml("<r><a><a><a/></a><a/></a></r>")
        expected = oracle_pairs(document, "a", "a", Axis.CHILD)
        __, __, pairs = run_join(document, StackTreeAncJoin, "a", "a",
                                 Axis.CHILD)
        assert sorted(pairs) == expected


class TestMetrics:
    def test_desc_counts_stack_tuples(self):
        document = parse_xml(DOCUMENTS["mixed"])
        engine, __, __ = run_join(document, StackTreeDescJoin, "a", "b",
                                  Axis.DESCENDANT)
        # every 'a' posting that starts before the last 'b' is pushed
        assert engine.metrics.stack_tuple_ops > 0
        assert engine.metrics.buffered_results == 0  # STD never buffers

    def test_anc_counts_buffered_results(self):
        document = parse_xml(DOCUMENTS["mixed"])
        engine, __, pairs = run_join(document, StackTreeAncJoin, "a",
                                     "b", Axis.DESCENDANT)
        assert engine.metrics.buffered_results == len(pairs)
        assert engine.metrics.output_tuples == len(pairs)


class TestCascadedJoins:
    def test_three_way_pipeline(self, small_document):
        """a//b joined, then result joined with c: checks tuple
        streams with duplicate join-column bindings (grouping)."""
        engine = engine_for(small_document)
        inner = StackTreeDescJoin(
            IndexScan(PatternNode(0, "manager"), engine),
            IndexScan(PatternNode(1, "employee"), engine),
            0, 1, Axis.DESCENDANT)
        outer = StackTreeDescJoin(
            inner,
            IndexScan(PatternNode(2, "name"), engine),
            1, 2, Axis.CHILD)
        rows = list(outer.run())
        # oracle: manager//employee/name triples
        expected = set()
        for m in small_document.nodes_with_tag("manager"):
            for e in small_document.nodes_with_tag("employee"):
                if not m.is_ancestor_of(e):
                    continue
                for n in small_document.nodes_with_tag("name"):
                    if e.is_parent_of(n):
                        expected.add((m.start, e.start, n.start))
        got = {(r[0].start, r[1].start, r[2].start) for r in rows}
        assert got == expected
        # ordered by name (the descendant column of the outer join)
        name_starts = [r[2].start for r in rows]
        assert name_starts == sorted(name_starts)

    def test_anc_side_duplicates_grouped(self, small_document):
        """The ancestor-side stream binds the same manager repeatedly
        (one tuple per employee); STA must group them correctly."""
        engine = engine_for(small_document)
        inner = StackTreeAncJoin(
            IndexScan(PatternNode(0, "manager"), engine),
            IndexScan(PatternNode(1, "employee"), engine),
            0, 1, Axis.DESCENDANT)
        outer = StackTreeAncJoin(
            inner,
            IndexScan(PatternNode(3, "department"), engine),
            0, 3, Axis.DESCENDANT)
        rows = list(outer.run())
        expected = set()
        for m in small_document.nodes_with_tag("manager"):
            for e in small_document.nodes_with_tag("employee"):
                for d in small_document.nodes_with_tag("department"):
                    if m.is_ancestor_of(e) and m.is_ancestor_of(d):
                        expected.add((m.start, e.start, d.start))
        got = {(r[0].start, r[1].start, r[2].start) for r in rows}
        assert got == expected
        manager_starts = [r[0].start for r in rows]
        assert manager_starts == sorted(manager_starts)


class TestNestedLoopOracle:
    def test_nested_loop_agrees_with_stack_tree(self, small_document):
        engine = engine_for(small_document)
        nested = NestedLoopJoin(
            IndexScan(PatternNode(0, "manager"), engine),
            IndexScan(PatternNode(1, "department"), engine),
            0, 1, Axis.DESCENDANT)
        nested_rows = {(r[0].start, r[1].start) for r in nested.run()}
        __, __, stack_rows = run_join(small_document, StackTreeDescJoin,
                                      "manager", "department",
                                      Axis.DESCENDANT)
        assert nested_rows == set(stack_rows)


class TestEdgeCases:
    def test_empty_ancestor_side(self):
        document = parse_xml("<r><b/><b/></r>")
        __, __, pairs = run_join(document, StackTreeDescJoin, "a", "b",
                                 Axis.DESCENDANT)
        assert pairs == []

    def test_empty_descendant_side(self):
        document = parse_xml("<r><a/><a/></r>")
        __, __, pairs = run_join(document, StackTreeAncJoin, "a", "b",
                                 Axis.DESCENDANT)
        assert pairs == []

    def test_no_matches_despite_candidates(self):
        document = parse_xml("<r><a/><b/></r>")  # siblings, no nesting
        __, __, pairs = run_join(document, StackTreeDescJoin, "a", "b",
                                 Axis.DESCENDANT)
        assert pairs == []

    def test_root_ancestor(self):
        document = parse_xml("<a><b/><c><b/></c></a>")
        __, __, pairs = run_join(document, StackTreeAncJoin, "a", "b",
                                 Axis.DESCENDANT)
        assert len(pairs) == 2
