"""Unit tests for the disk managers."""

import pytest

from repro.errors import StorageError
from repro.storage.disk import FileDisk, InMemoryDisk
from repro.storage.pages import Page


@pytest.fixture(params=["memory", "file"])
def disk(request, tmp_path):
    if request.param == "memory":
        yield InMemoryDisk()
    else:
        with FileDisk(tmp_path / "data.db") as file_disk:
            yield file_disk


class TestDiskManagers:
    def test_allocate_sequential_ids(self, disk):
        assert disk.allocate() == 0
        assert disk.allocate() == 1
        assert disk.page_count == 2
        assert disk.stats.allocations == 2

    def test_write_and_read_back(self, disk):
        page_id = disk.allocate()
        page = Page(page_id)
        page.insert(b"payload")
        disk.write_page(page)
        loaded = disk.read_page(page_id)
        assert loaded.records() == [b"payload"]

    def test_io_counters(self, disk):
        page_id = disk.allocate()
        disk.write_page(Page(page_id))
        disk.read_page(page_id)
        disk.read_page(page_id)
        assert disk.stats.writes == 1
        assert disk.stats.reads == 2
        assert disk.stats.total == 3

    def test_stats_reset_and_snapshot(self, disk):
        disk.allocate()
        snapshot = disk.stats.snapshot()
        disk.stats.reset()
        assert snapshot.allocations == 1
        assert disk.stats.allocations == 0

    def test_unallocated_read_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.read_page(42)

    def test_unallocated_write_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.write_page(Page(42))

    def test_write_clears_dirty(self, disk):
        page_id = disk.allocate()
        page = Page(page_id)
        page.insert(b"x")
        assert page.dirty
        disk.write_page(page)
        assert not page.dirty


class TestFileDisk:
    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "persist.db"
        with FileDisk(path) as disk:
            page_id = disk.allocate()
            page = Page(page_id)
            page.insert(b"durable")
            disk.write_page(page)
        with FileDisk(path) as disk:
            assert disk.page_count == 1
            assert disk.read_page(0).records() == [b"durable"]

    def test_closed_disk_rejects_io(self, tmp_path):
        disk = FileDisk(tmp_path / "closed.db")
        disk.allocate()
        disk.close()
        with pytest.raises(StorageError, match="closed"):
            disk.read_page(0)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "broken.db"
        path.write_bytes(b"not a page")
        with pytest.raises(StorageError, match="whole number"):
            FileDisk(path)


class TestReadViews:
    def test_view_matches_read_page(self, disk):
        page_id = disk.allocate()
        page = Page(page_id)
        page.insert(b"view parity")
        disk.write_page(page)
        view = disk.read_view(page_id)
        assert view is not None
        assert bytes(view) == disk.read_page(page_id).to_bytes()
        assert disk.stats.view_reads >= 1

    def test_view_reflects_later_writes(self, disk):
        page_id = disk.allocate()
        first = Page(page_id)
        first.insert(b"one")
        disk.write_page(first)
        disk.read_view(page_id)
        second = Page(page_id)
        second.insert(b"two")
        disk.write_page(second)
        # a *new* view must observe the overwrite
        assert bytes(disk.read_view(page_id)) == second.to_bytes()

    def test_view_survives_file_growth(self, tmp_path):
        with FileDisk(tmp_path / "grow.db") as disk:
            first_id = disk.allocate()
            page = Page(first_id)
            page.insert(b"before growth")
            disk.write_page(page)
            early_view = bytes(disk.read_view(first_id))
            # grow well past the initial mapping, then map the tail
            for _ in range(8):
                last_id = disk.allocate()
            tail = Page(last_id)
            tail.insert(b"after growth")
            disk.write_page(tail)
            assert bytes(disk.read_view(last_id)) == tail.to_bytes()
            assert bytes(disk.read_view(first_id)) == early_view

    def test_view_unallocated_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.read_view(13)

    def test_mmap_disabled_returns_none(self, tmp_path):
        with FileDisk(tmp_path / "plain.db", mmap_reads=False) as disk:
            page_id = disk.allocate()
            assert disk.read_view(page_id) is None

    def test_exported_view_does_not_break_close(self, tmp_path):
        disk = FileDisk(tmp_path / "export.db")
        page_id = disk.allocate()
        disk.write_page(Page(page_id))
        view = disk.read_view(page_id)
        disk.close()  # must not raise even while `view` is alive
        assert len(view) > 0

    def test_views_persist_across_reopen(self, tmp_path):
        path = tmp_path / "reopen.db"
        with FileDisk(path) as disk:
            page_id = disk.allocate()
            page = Page(page_id)
            page.insert(b"mapped later")
            disk.write_page(page)
        with FileDisk(path) as disk:
            assert bytes(disk.read_view(page_id)) == page.to_bytes()
