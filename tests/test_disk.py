"""Unit tests for the disk managers."""

import pytest

from repro.errors import StorageError
from repro.storage.disk import FileDisk, InMemoryDisk
from repro.storage.pages import Page


@pytest.fixture(params=["memory", "file"])
def disk(request, tmp_path):
    if request.param == "memory":
        yield InMemoryDisk()
    else:
        with FileDisk(tmp_path / "data.db") as file_disk:
            yield file_disk


class TestDiskManagers:
    def test_allocate_sequential_ids(self, disk):
        assert disk.allocate() == 0
        assert disk.allocate() == 1
        assert disk.page_count == 2
        assert disk.stats.allocations == 2

    def test_write_and_read_back(self, disk):
        page_id = disk.allocate()
        page = Page(page_id)
        page.insert(b"payload")
        disk.write_page(page)
        loaded = disk.read_page(page_id)
        assert loaded.records() == [b"payload"]

    def test_io_counters(self, disk):
        page_id = disk.allocate()
        disk.write_page(Page(page_id))
        disk.read_page(page_id)
        disk.read_page(page_id)
        assert disk.stats.writes == 1
        assert disk.stats.reads == 2
        assert disk.stats.total == 3

    def test_stats_reset_and_snapshot(self, disk):
        disk.allocate()
        snapshot = disk.stats.snapshot()
        disk.stats.reset()
        assert snapshot.allocations == 1
        assert disk.stats.allocations == 0

    def test_unallocated_read_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.read_page(42)

    def test_unallocated_write_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.write_page(Page(42))

    def test_write_clears_dirty(self, disk):
        page_id = disk.allocate()
        page = Page(page_id)
        page.insert(b"x")
        assert page.dirty
        disk.write_page(page)
        assert not page.dirty


class TestFileDisk:
    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "persist.db"
        with FileDisk(path) as disk:
            page_id = disk.allocate()
            page = Page(page_id)
            page.insert(b"durable")
            disk.write_page(page)
        with FileDisk(path) as disk:
            assert disk.page_count == 1
            assert disk.read_page(0).records() == [b"durable"]

    def test_closed_disk_rejects_io(self, tmp_path):
        disk = FileDisk(tmp_path / "closed.db")
        disk.allocate()
        disk.close()
        with pytest.raises(StorageError, match="closed"):
            disk.read_page(0)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "broken.db"
        path.write_bytes(b"not a page")
        with pytest.raises(StorageError, match="whole number"):
            FileDisk(path)
