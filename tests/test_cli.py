"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestQueryCommand:
    def test_query_generated_dataset(self):
        code, output = run_cli(
            "query", "--dataset", "pers", "--nodes", "400",
            "//manager//employee/name")
        assert code == 0
        assert "matches" in output
        assert "engine:" in output

    def test_query_with_explain(self):
        code, output = run_cli(
            "query", "--dataset", "pers", "--nodes", "400", "--explain",
            "--algorithm", "FP", "//manager/employee")
        assert code == 0
        assert "IndexScan" in output

    def test_query_xml_file(self, tmp_path, personnel_xml):
        path = tmp_path / "pers.xml"
        path.write_text(personnel_xml)
        code, output = run_cli("query", "--xml", str(path),
                               "//manager/name")
        assert code == 0
        assert "matches" in output
        assert "Ada Adams" in output

    def test_query_holistic(self):
        code, output = run_cli(
            "query", "--dataset", "pers", "--nodes", "400",
            "--holistic", "//manager//employee")
        assert code == 0
        assert "holistic" in output

    def test_limit_zero_hides_rows(self):
        code, output = run_cli(
            "query", "--dataset", "pers", "--nodes", "400",
            "--limit", "0", "//manager/name")
        assert code == 0
        assert "<name>" not in output

    def test_missing_file_is_clean_error(self, capsys):
        code, __ = run_cli("query", "--xml", "/nonexistent.xml", "//a")
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestOtherCommands:
    def test_explain_lists_all_algorithms(self):
        code, output = run_cli("explain", "--dataset", "pers",
                               "--nodes", "400",
                               "//manager//employee/name")
        assert code == 0
        for algorithm in ("DP", "DPP", "DPAP-EB", "DPAP-LD", "FP"):
            assert f"=== {algorithm} " in output

    def test_stats(self):
        code, output = run_cli("stats", "--dataset", "dblp",
                               "--nodes", "300")
        assert code == 0
        assert "nodes" in output
        assert "article" in output

    def test_generate_to_stdout(self):
        code, output = run_cli("generate", "mbench", "--nodes", "60")
        assert code == 0
        assert output.startswith("<?xml")
        assert "<eNest" in output

    def test_generate_to_file_roundtrips(self, tmp_path):
        path = tmp_path / "pers.xml"
        code, output = run_cli("generate", "pers", "--nodes", "200",
                               "--output", str(path))
        assert code == 0
        assert "wrote" in output
        code, output = run_cli("query", "--xml", str(path),
                               "//manager/name")
        assert code == 0

    def test_bench_table2(self):
        code, output = run_cli("bench", "table2", "--pers-nodes", "400")
        assert code == 0
        assert "Table 2" in output
        assert "DPP'" in output

    def test_bad_xpath_is_clean_error(self, capsys):
        code, __ = run_cli("query", "--dataset", "pers", "--nodes",
                           "300", "//a[")
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTraceCommand:
    def test_narrative(self):
        code, output = run_cli("trace", "--dataset", "pers", "--nodes",
                               "300", "//manager//employee/name")
        assert code == 0
        assert "generate" in output
        assert "expand" in output
        assert "chosen plan" in output

    def test_dot_output(self):
        code, output = run_cli("trace", "--dataset", "pers", "--nodes",
                               "300", "--dot", "//manager/employee")
        assert code == 0
        assert output.startswith("digraph")
