"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestQueryCommand:
    def test_query_generated_dataset(self):
        code, output = run_cli(
            "query", "--dataset", "pers", "--nodes", "400",
            "//manager//employee/name")
        assert code == 0
        assert "matches" in output
        assert "engine:" in output

    def test_query_with_explain(self):
        code, output = run_cli(
            "query", "--dataset", "pers", "--nodes", "400", "--explain",
            "--algorithm", "FP", "//manager/employee")
        assert code == 0
        assert "IndexScan" in output

    def test_query_xml_file(self, tmp_path, personnel_xml):
        path = tmp_path / "pers.xml"
        path.write_text(personnel_xml)
        code, output = run_cli("query", "--xml", str(path),
                               "//manager/name")
        assert code == 0
        assert "matches" in output
        assert "Ada Adams" in output

    def test_query_holistic(self):
        code, output = run_cli(
            "query", "--dataset", "pers", "--nodes", "400",
            "--holistic", "//manager//employee")
        assert code == 0
        assert "holistic" in output

    def test_limit_zero_hides_rows(self):
        code, output = run_cli(
            "query", "--dataset", "pers", "--nodes", "400",
            "--limit", "0", "//manager/name")
        assert code == 0
        assert "<name>" not in output

    def test_missing_file_is_clean_error(self, capsys):
        code, __ = run_cli("query", "--xml", "/nonexistent.xml", "//a")
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestOtherCommands:
    def test_explain_lists_all_algorithms(self):
        code, output = run_cli("explain", "--dataset", "pers",
                               "--nodes", "400",
                               "//manager//employee/name")
        assert code == 0
        for algorithm in ("DP", "DPP", "DPAP-EB", "DPAP-LD", "FP"):
            assert f"=== {algorithm} " in output

    def test_stats(self):
        code, output = run_cli("stats", "--dataset", "dblp",
                               "--nodes", "300")
        assert code == 0
        assert "nodes" in output
        assert "article" in output

    def test_generate_to_stdout(self):
        code, output = run_cli("generate", "mbench", "--nodes", "60")
        assert code == 0
        assert output.startswith("<?xml")
        assert "<eNest" in output

    def test_generate_to_file_roundtrips(self, tmp_path):
        path = tmp_path / "pers.xml"
        code, output = run_cli("generate", "pers", "--nodes", "200",
                               "--output", str(path))
        assert code == 0
        assert "wrote" in output
        code, output = run_cli("query", "--xml", str(path),
                               "//manager/name")
        assert code == 0

    def test_bench_table2(self):
        code, output = run_cli("bench", "table2", "--pers-nodes", "400")
        assert code == 0
        assert "Table 2" in output
        assert "DPP'" in output

    def test_bad_xpath_is_clean_error(self, capsys):
        code, __ = run_cli("query", "--dataset", "pers", "--nodes",
                           "300", "//a[")
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTraceCommand:
    def test_narrative(self):
        code, output = run_cli("trace", "--dataset", "pers", "--nodes",
                               "300", "//manager//employee/name")
        assert code == 0
        assert "generate" in output
        assert "expand" in output
        assert "chosen plan" in output

    def test_dot_output(self):
        code, output = run_cli("trace", "--dataset", "pers", "--nodes",
                               "300", "--dot", "//manager/employee")
        assert code == 0
        assert output.startswith("digraph")


class TestFeedbackLoopCommands:
    def test_log_calibrate_audit_loop(self, tmp_path):
        log_path = tmp_path / "query-log.jsonl"
        code, output = run_cli(
            "log", "--dataset", "pers", "--nodes", "400",
            "--serve", "2", "--output", str(log_path))
        assert code == 0
        assert "logged 8 records" in output
        assert log_path.exists()

        code, output = run_cli("log", "--read", str(log_path))
        assert code == 0
        assert "8 records" in output
        assert "0 malformed" in output

        json_path = tmp_path / "calibration.json"
        code, output = run_cli(
            "calibrate", "--log", str(log_path),
            "--json", str(json_path))
        assert code == 0
        assert "calibrated cost factors" in output
        assert "improved" in output
        assert json_path.exists()

        code, output = run_cli(
            "audit", "--dataset", "pers", "--nodes", "400",
            "--log", str(log_path))
        assert code == 0
        assert "0 plan flip(s)" in output

    def test_audit_flags_flip_with_exit_3(self, tmp_path):
        log_path = tmp_path / "query-log.jsonl"
        run_cli("log", "--dataset", "pers", "--nodes", "400",
                "--serve", "1", "--output", str(log_path))
        # a different document size changes the statistics the
        # optimizer sees, which is exactly the drift audit exists for;
        # assert only on the exit-code contract (0 or 3, never crash)
        code, output = run_cli(
            "audit", "--dataset", "pers", "--nodes", "2000",
            "--log", str(log_path))
        assert code in (0, 3)
        assert "plan audit:" in output

    def test_audit_exit_3_on_tampered_log(self, tmp_path):
        import json as jsonlib
        log_path = tmp_path / "query-log.jsonl"
        run_cli("log", "--dataset", "pers", "--nodes", "400",
                "--serve", "1", "--output", str(log_path))
        records = [jsonlib.loads(line) for line in
                   log_path.read_text().splitlines()]
        records[0]["plan_digest"] = "tampered"
        log_path.write_text("".join(jsonlib.dumps(r) + "\n"
                                    for r in records))
        code, output = run_cli(
            "audit", "--dataset", "pers", "--nodes", "400",
            "--log", str(log_path))
        assert code == 3
        assert "FLIP" in output

    def test_calibrate_self_contained(self):
        code, output = run_cli(
            "calibrate", "--dataset", "pers", "--nodes", "400",
            "--serve", "2")
        assert code == 0
        assert "calibrated cost factors" in output

    def test_calibrate_without_source_or_log_is_clean_error(
            self, capsys):
        code, __ = run_cli("calibrate")
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_log_without_source_or_read_is_clean_error(self, capsys):
        code, __ = run_cli("log")
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestServiceFlags:
    def test_slow_log_flags_reach_the_service(self):
        from repro.cli import _open_database, build_parser

        arguments = build_parser().parse_args(
            ["stats", "--dataset", "pers", "--nodes", "400",
             "--slow-query-seconds", "0.0", "--slow-log-capacity", "2"])
        database = _open_database(arguments)
        service = database.service
        assert service.slow_query_seconds == 0.0
        assert service.slow_log_capacity == 2
        database.query_many(["//manager/name"] * 5)
        # threshold 0 marks everything slow; capacity bounds retention
        assert len(service.snapshot()["slow_queries"]) == 2

    def test_negative_slow_log_capacity_is_clean_error(self, capsys):
        code, __ = run_cli(
            "stats", "--dataset", "pers", "--nodes", "400",
            "--slow-log-capacity", "-1")
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestMetricsListener:
    def test_listen_port_in_use_exits_2(self, capsys):
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            port = blocker.getsockname()[1]
            code, __ = run_cli(
                "stats", "--dataset", "pers", "--nodes", "400",
                "--listen", str(port))
        finally:
            blocker.close()
        assert code == 2
        assert "cannot listen" in capsys.readouterr().err

    def test_listen_serves_metrics_and_shuts_down_cleanly(self):
        import io as iolib
        import urllib.error
        import urllib.request

        from repro.cli import _open_database, build_parser
        from repro.server import QueryServer, ServerConfig

        arguments = build_parser().parse_args(
            ["stats", "--dataset", "pers", "--nodes", "400"])
        database = _open_database(arguments)
        database.query_many(["//manager/name"])

        # stats --listen is an alias for the query server; drive the
        # same object it constructs, on its background-thread API
        out = iolib.StringIO()
        server = QueryServer(database, ServerConfig(port=0), out=out)
        host, port = server.start()
        try:
            with urllib.request.urlopen(
                    f"http://{host}:{port}/metrics",
                    timeout=5.0) as response:
                body = response.read().decode()
            assert "repro_queries_total" in body
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{host}:{port}/nope", timeout=5.0)
        finally:
            server.stop()
        assert server.exit_code == 0
        text = out.getvalue()
        assert "serving /query, /metrics" in text
        assert "drained:" in text


class TestIngestCommands:
    def test_ingest_creates_then_appends(self, tmp_path):
        db_dir = str(tmp_path / "db")
        code, output = run_cli(
            "ingest", "--db", db_dir, "--dataset", "pers",
            "--nodes", "200", "--batches", "3")
        assert code == 0
        assert "created" in output
        assert "txn 1:" in output and "txn 2:" in output
        code, output = run_cli(
            "query", "--db", db_dir, "//manager//employee/name")
        assert code == 0
        assert "matches" in output

    def test_ingest_reopen_and_checkpoint(self, tmp_path):
        db_dir = str(tmp_path / "db")
        run_cli("ingest", "--db", db_dir, "--dataset", "pers",
                "--nodes", "200", "--batches", "2")
        code, output = run_cli(
            "ingest", "--db", db_dir, "--dataset", "pers",
            "--nodes", "200", "--batches", "2",
            "--checkpoint-every", "1")
        assert code == 0
        assert "recovery:" in output
        assert "checkpoint: dropped" in output
        code, output = run_cli("checkpoint", "--db", db_dir)
        assert code == 0
        assert "pages durable" in output

    def test_ingest_rejects_bad_batches(self, tmp_path):
        code, _ = run_cli("ingest", "--db", str(tmp_path / "db"),
                          "--dataset", "pers", "--batches", "-1")
        assert code == 1

    def test_checkpoint_missing_db(self, tmp_path):
        code, _ = run_cli("checkpoint", "--db",
                          str(tmp_path / "missing"))
        assert code == 1


class TestIngestCrashDrills:
    """The crash flags call os._exit, so they need a subprocess."""

    def run_repro(self, *argv):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(
            __file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env=env, timeout=120)

    def test_torn_tail_transaction_vanishes(self, tmp_path):
        db_dir = str(tmp_path / "db")
        proc = self.run_repro(
            "ingest", "--db", db_dir, "--dataset", "pers",
            "--nodes", "200", "--batches", "2", "--torn-tail")
        assert proc.returncode == 17, proc.stderr
        assert "tore the WAL tail" in proc.stdout
        code, output = run_cli("checkpoint", "--db", db_dir)
        assert code == 0
        assert "1 discarded" in output
        assert "torn tail at byte" in output

    def test_crash_after_commit_is_durable(self, tmp_path):
        db_dir = str(tmp_path / "db")
        proc = self.run_repro(
            "ingest", "--db", db_dir, "--dataset", "pers",
            "--nodes", "200", "--batches", "4", "--crash-after", "2")
        assert proc.returncode == 17, proc.stderr
        code, output = run_cli("checkpoint", "--db", db_dir)
        assert code == 0
        assert "2 committed transaction(s) replayed" in output
