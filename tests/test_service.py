"""Serving-layer tests: plan cache, concurrency, metrics isolation.

Covers the service acceptance criteria directly: repeated queries hit
the plan cache (one optimization per distinct pattern per statistics
epoch), concurrent batches return byte-identical results to serial
execution without leaking buffer-pool pins, and per-execution metrics
never cross-pollute between runs sharing one engine context.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import Database
from repro.engine.context import EngineContext
from repro.engine.executor import Executor
from repro.errors import ReproError
from repro.service import (PlanCache, cache_key, canonical_signature,
                           pattern_isomorphism, remap_plan)
from repro.workloads.personnel import personnel_document
from repro.workloads.queries import PAPER_QUERIES
from repro.xpath import compile_xpath

REPEATED = "//manager//employee/name"
UNIQUE = [
    "//manager//department/name",
    "//manager/employee/phone",
    "//department//employee/name",
    "//manager//manager/department",
]


@pytest.fixture
def database():
    return Database.from_document(personnel_document(target_nodes=900))


# -- plan cache ------------------------------------------------------------


class TestPlanCache:
    def test_repeated_query_optimizes_once(self, database):
        results = database.query_many([REPEATED] * 100, workers=1)
        assert len(results) == 100
        cache = database.stats()["plan_cache"]
        assert cache["misses"] == 1
        assert cache["hits"] == 99
        assert cache["hit_rate"] >= 0.99

    def test_concurrent_misses_are_single_flight(self, database):
        database.query_many([REPEATED] * 100, workers=4)
        cache = database.stats()["plan_cache"]
        assert cache["misses"] == 1
        assert cache["hit_rate"] >= 0.99

    def test_isomorphic_patterns_share_one_entry(self, database):
        first = compile_xpath(REPEATED)
        second = compile_xpath(REPEATED)
        assert first is not second
        database.query_many([first, second], workers=1)
        cache = database.stats()["plan_cache"]
        assert cache["misses"] == 1 and cache["hits"] == 1

    def test_algorithms_get_distinct_entries(self, database):
        database.query_many([REPEATED], algorithm="DPP", workers=1)
        database.query_many([REPEATED], algorithm="DP", workers=1)
        assert database.stats()["plan_cache"]["misses"] == 2

    def test_lru_eviction(self, database):
        cache = PlanCache(capacity=2)
        patterns = [compile_xpath(text) for text in UNIQUE[:3]]
        for pattern in patterns:
            key = cache_key(pattern, "DPP", {}, 1)
            cache.get_or_compute(
                key, pattern,
                lambda p=pattern: database.optimize(p))
        assert len(cache) == 2
        assert cache.stats.evictions == 1

    def test_reload_invalidates_cache_and_bumps_epoch(self, database):
        [before] = database.query_many([REPEATED], workers=1)
        epoch = database.statistics_epoch
        database.reload(personnel_document(target_nodes=300, seed=7))
        assert database.statistics_epoch == epoch + 1
        assert database.stats()["plan_cache"]["size"] == 0
        [after] = database.query_many([REPEATED], workers=1)
        # new document, new statistics epoch: the query re-optimizes
        assert database.stats()["plan_cache"]["misses"] == 2
        assert len(after.execution) != len(before.execution) or \
            after.execution.canonical() != before.execution.canonical()

    def test_reload_requires_a_document(self):
        empty = Database()
        with pytest.raises(ReproError):
            empty.reload(personnel_document(target_nodes=100))

    def test_cached_plan_remaps_to_requesting_pattern_ids(self, database):
        pattern = compile_xpath(REPEATED)
        cached = database.service.optimize_cached(pattern)
        again = database.service.optimize_cached(compile_xpath(REPEATED))
        assert again.plan.pattern_nodes() == frozenset(
            range(len(pattern)))
        assert cached.estimated_cost == again.estimated_cost


class TestCanonicalIdentity:
    def test_isomorphic_patterns_equal_signatures(self):
        from repro.core.pattern import QueryPattern

        left = QueryPattern.build({
            "nodes": ["a", "b", "c"],
            "edges": [(0, 1, "//"), (0, 2, "/")],
        })
        right = QueryPattern.build({
            "nodes": ["a", "c", "b"],
            "edges": [(0, 2, "//"), (0, 1, "/")],
        })
        assert canonical_signature(left) == canonical_signature(right)
        mapping = pattern_isomorphism(left, right)
        assert mapping[0] == 0
        assert mapping[1] == 2 and mapping[2] == 1

    def test_order_by_distinguishes_signatures(self):
        from repro.core.pattern import QueryPattern

        spec = {"nodes": ["a", "b"], "edges": [(0, 1, "//")]}
        plain = QueryPattern.build(spec)
        ordered = QueryPattern.build({**spec, "order_by": 1})
        assert canonical_signature(plain) != canonical_signature(ordered)

    def test_remapped_plan_executes_identically(self, database):
        source = compile_xpath(REPEATED)
        target = compile_xpath(REPEATED)
        plan = database.optimize(source).plan
        mapping = pattern_isomorphism(source, target)
        remapped = remap_plan(plan, mapping)
        original = database.execute(plan, source).canonical()
        replayed = database.execute(remapped, target).canonical()
        assert original == replayed


# -- concurrency stress -----------------------------------------------------


class TestConcurrency:
    def test_parallel_matches_serial_byte_for_byte(self, database):
        batch = ([REPEATED] * 6 + UNIQUE) * 3
        serial = database.query_many(batch, workers=1)
        parallel = database.query_many(batch, workers=4)
        assert [r.execution.tuples for r in serial] == \
            [r.execution.tuples for r in parallel]
        assert [r.execution.schema.node_ids for r in serial] == \
            [r.execution.schema.node_ids for r in parallel]

    def test_figure7_workload_parallel_equals_serial(self, database):
        patterns = [query.pattern
                    for query in PAPER_QUERIES.values()
                    if query.dataset == "pers"] * 4
        serial = database.query_many(patterns, workers=1)
        parallel = database.query_many(patterns, workers=4)
        assert [r.execution.tuples for r in serial] == \
            [r.execution.tuples for r in parallel]

    def test_no_pin_leaks_and_hits_after_stress(self, database):
        batch = ([REPEATED] * 10 + UNIQUE) * 4
        database.query_many(batch, workers=8)
        assert database.pool.pinned_pages() == []
        database.pool.check_invariants()
        assert len(database.pool) <= database.pool.capacity
        stats = database.stats()
        assert stats["queries"] == len(batch)
        assert stats["errors"] == 0
        assert stats["plan_cache"]["hit_rate"] > 0

    def test_holistic_queries_run_concurrently(self, database):
        pattern = compile_xpath(REPEATED)
        reference = database.holistic_query(pattern).canonical()
        results: list = [None] * 8

        def work(index: int) -> None:
            results[index] = database.holistic_query(pattern).canonical()

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(len(results))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(result == reference for result in results)
        assert database.pool.pinned_pages() == []

    def test_small_pool_under_concurrency(self):
        database = Database.from_document(
            personnel_document(target_nodes=900), buffer_capacity=8)
        batch = ([REPEATED] + UNIQUE) * 4
        serial = database.query_many(batch, workers=1)
        parallel = database.query_many(batch, workers=4)
        assert [r.execution.tuples for r in serial] == \
            [r.execution.tuples for r in parallel]
        assert database.pool.pinned_pages() == []


# -- service observability ---------------------------------------------------


class TestSnapshot:
    def test_latency_percentiles_ordered(self, database):
        database.query_many([REPEATED] * 20 + UNIQUE, workers=2)
        latency = database.stats()["latency"]
        assert 0 < latency["p50_seconds"] <= latency["p95_seconds"]
        assert latency["p95_seconds"] <= latency["p99_seconds"]
        assert latency["p99_seconds"] <= latency["max_seconds"]
        assert latency["samples"] == 24

    def test_engine_counters_aggregate(self, database):
        one = database.query(REPEATED)
        database.service.reset_stats()
        database.query_many([REPEATED] * 5, workers=1)
        engine = database.stats()["engine"]
        # output_tuples counts every operator's emissions, so compare
        # against the single-run counter, not the final result size
        assert engine["output_tuples"] == \
            5 * one.execution.metrics.output_tuples
        assert engine["index_items"] == \
            5 * one.execution.metrics.index_items
        assert engine["index_items"] > 0

    def test_snapshot_includes_storage_and_pool(self, database):
        database.query(REPEATED)
        stats = database.stats()
        assert stats["storage"]["nodes"] == len(database.document)
        assert stats["buffer_pool"]["pinned_pages"] == 0

    def test_percentile_helper(self):
        from repro.service import percentile

        assert percentile([], 0.5) == 0.0
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.95) == 4.0


# -- metrics isolation (regression) ------------------------------------------


class TestMetricsIsolation:
    def test_execute_does_not_mutate_shared_context(self, database):
        pattern = compile_xpath(REPEATED)
        plan = database.optimize(pattern).plan
        context = EngineContext(database.index, database.store,
                                database.document)
        shared_metrics = context.metrics
        executor = Executor(context, pattern)
        result = executor.execute(plan)
        assert context.metrics is shared_metrics
        assert result.metrics is not shared_metrics
        assert shared_metrics.index_items == 0
        assert result.metrics.index_items > 0

    def test_concurrent_executions_have_private_counters(self, database):
        pattern = compile_xpath(REPEATED)
        plan = database.optimize(pattern).plan
        context = EngineContext(database.index, database.store,
                                database.document)
        reference = Executor(context, pattern).execute(plan)
        results: list = [None] * 8
        barrier = threading.Barrier(len(results))

        def work(index: int) -> None:
            barrier.wait()
            results[index] = Executor(context, pattern).execute(plan)

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(len(results))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for result in results:
            # deterministic work counters must match the serial run
            assert result.metrics.index_items == \
                reference.metrics.index_items
            assert result.metrics.output_tuples == \
                reference.metrics.output_tuples
            assert result.metrics.stack_tuple_ops == \
                reference.metrics.stack_tuple_ops
            assert result.metrics.sort_count == \
                reference.metrics.sort_count
