"""Tests for the random-plan sampler ("bad plan" yardstick)."""

import pytest

from repro.core.plans import validate_plan
from repro.core.random_plans import RandomPlanGenerator, worst_random_plan
from repro.engine.nestedloop import naive_pattern_matches
from repro.estimation.estimator import ExactEstimator


class TestRandomPlanGenerator:
    def test_samples_are_valid_plans(self, running_example_pattern):
        generator = RandomPlanGenerator(running_example_pattern, seed=1)
        for _ in range(20):
            plan = generator.sample()
            validate_plan(plan, running_example_pattern)

    def test_deterministic_for_seed(self, running_example_pattern):
        first = RandomPlanGenerator(running_example_pattern, seed=7)
        second = RandomPlanGenerator(running_example_pattern, seed=7)
        for _ in range(5):
            assert first.sample().signature() == \
                second.sample().signature()

    def test_diversity(self, running_example_pattern):
        generator = RandomPlanGenerator(running_example_pattern, seed=3)
        signatures = {generator.sample().signature() for _ in range(30)}
        assert len(signatures) > 10

    def test_single_edge_pattern(self, chain_pattern):
        generator = RandomPlanGenerator(chain_pattern, seed=2)
        plan = generator.sample()
        validate_plan(plan, chain_pattern)


class TestWorstRandomPlan:
    def test_worst_has_max_cost_in_sample(self, small_document,
                                          running_example_pattern):
        estimator = ExactEstimator(small_document)
        __, worst_cost = worst_random_plan(
            running_example_pattern, estimator, samples=25, seed=11)
        __, smaller_cost = worst_random_plan(
            running_example_pattern, estimator, samples=1, seed=11)
        assert worst_cost >= smaller_cost

    def test_worst_plan_still_correct(self, small_database,
                                      small_document,
                                      running_example_pattern):
        estimator = ExactEstimator(small_document)
        plan, __ = worst_random_plan(running_example_pattern, estimator,
                                     samples=10, seed=4)
        validate_plan(plan, running_example_pattern)
        execution = small_database.execute(plan,
                                           running_example_pattern)
        oracle = naive_pattern_matches(small_document,
                                       running_example_pattern)
        expected = {tuple(b[k].start for k in sorted(b)) for b in oracle}
        assert execution.canonical() == expected

    def test_worst_is_worse_than_optimal(self, small_database,
                                         running_example_pattern):
        optimized = small_database.optimize(running_example_pattern,
                                            algorithm="DPP")
        __, bad_cost = worst_random_plan(
            running_example_pattern, small_database.estimator,
            samples=30, seed=0, cost_model=small_database.cost_model)
        # the worst of 30 random plans should be clearly worse
        assert bad_cost > optimized.estimated_cost
