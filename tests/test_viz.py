"""Tests for the dot exporters."""

import pytest

from repro.core.dpp import DPPOptimizer
from repro.core.trace import SearchTrace
from repro.core.viz import plan_to_dot, trace_to_dot
from repro.estimation.estimator import ExactEstimator


@pytest.fixture
def optimized(small_database, running_example_pattern):
    return small_database.optimize(running_example_pattern,
                                   algorithm="DPP")


class TestPlanToDot:
    def test_structure(self, optimized, running_example_pattern):
        dot = plan_to_dot(optimized.plan, running_example_pattern)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        # 6 scans + 5 joins (+ sorts) => at least 11 nodes
        assert dot.count("[label=") >= 11
        assert "IndexScan manager" in dot
        assert "->" in dot

    def test_sorts_highlighted(self, small_database,
                               running_example_pattern):
        result = small_database.optimize(running_example_pattern,
                                         algorithm="DPP")
        dot = plan_to_dot(result.plan)
        if result.plan.sort_count():
            assert "fillcolor" in dot

    def test_escaping(self, small_database):
        pattern = small_database.compile("//name[text() = 'Ada\"s']")
        result = small_database.optimize(pattern)
        dot = plan_to_dot(result.plan, pattern)
        assert '\\"' in dot

    def test_cardinalities_present(self, optimized):
        dot = plan_to_dot(optimized.plan)
        assert "card=" in dot
        assert "cost=" in dot


class TestTraceToDot:
    def test_search_graph(self, small_document, running_example_pattern):
        trace = SearchTrace()
        DPPOptimizer(trace=trace).optimize(
            running_example_pattern, ExactEstimator(small_document))
        dot = trace_to_dot(trace)
        assert dot.startswith("digraph")
        assert "s0 [" in dot
        # every generated status appears as a node
        assert dot.count("[label=") == trace.status_count()
        # finals highlighted
        assert "#eeffee" in dot
        # expanded statuses get a double border
        assert "peripheries=2" in dot
        assert "->" in dot
