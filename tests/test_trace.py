"""Tests for the search-trace instrumentation."""

import pytest

from repro.core.dpp import DPPOptimizer
from repro.core.dpap import DPAPEBOptimizer
from repro.core.status import Status
from repro.core.trace import SearchTrace, TraceEvent
from repro.estimation.estimator import ExactEstimator


@pytest.fixture
def traced_run(small_document, running_example_pattern):
    trace = SearchTrace()
    optimizer = DPPOptimizer(trace=trace)
    result = optimizer.optimize(running_example_pattern,
                                ExactEstimator(small_document))
    return trace, result


class TestSearchTrace:
    def test_start_status_is_zero(self, traced_run,
                                  running_example_pattern):
        trace, __ = traced_run
        first = trace.events[0]
        assert first.kind == "generate"
        assert first.status_id == 0
        assert first.detail == "start"
        start = Status.start(running_example_pattern)
        assert trace.status_id(start) == 0

    def test_generation_order_numbering(self, traced_run):
        trace, __ = traced_run
        generated = [event.status_id
                     for event in trace.events_of_kind("generate")]
        assert generated == sorted(generated)
        assert generated[0] == 0

    def test_counts_match_report(self, traced_run, small_document,
                                 running_example_pattern):
        trace, result = traced_run
        report = result.report
        assert len(trace.events_of_kind("generate")) + \
            len([e for e in trace.events_of_kind("final")
                 ]) >= report.statuses_generated - 1
        assert len(trace.events_of_kind("expand")) == \
            report.statuses_expanded
        assert len(trace.events_of_kind("deadend")) == \
            report.deadends_avoided

    def test_final_event_has_optimal_cost(self, traced_run):
        trace, result = traced_run
        finals = trace.events_of_kind("final")
        assert finals
        assert min(event.cost for event in finals) == pytest.approx(
            result.estimated_cost)

    def test_narrative_renders(self, traced_run):
        trace, __ = traced_run
        text = trace.narrative(limit=5)
        assert "generate status0" in text.replace("  ", " ") or \
            "generate" in text
        assert "more events" in text

    def test_expansion_follows_priority(self, traced_run):
        """The first expansion must be the start status."""
        trace, __ = traced_run
        first_expand = trace.events_of_kind("expand")[0]
        assert first_expand.status_id == 0

    def test_dpap_inherits_tracing(self, small_document,
                                   running_example_pattern):
        trace = SearchTrace()
        optimizer = DPAPEBOptimizer(expansion_bound=2, trace=trace)
        optimizer.optimize(running_example_pattern,
                           ExactEstimator(small_document))
        assert trace.events_of_kind("expand")

    def test_event_str(self):
        event = TraceEvent("expand", 3, 12.5, "why")
        assert "status3" in str(event)
        assert "why" in str(event)
