"""Unit tests for the element store."""

import pytest

from repro.errors import StorageError
from repro.document.node import NodeRecord, Region
from repro.document.parser import parse_xml
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.store import ElementStore, decode_node, encode_node


@pytest.fixture
def store():
    return ElementStore(BufferPool(InMemoryDisk(), capacity=8))


def sample_node(node_id=0, **overrides):
    defaults = dict(node_id=node_id, tag="manager",
                    region=Region(node_id, node_id + 3, 1),
                    parent_id=node_id - 1, text="Ada",
                    attributes={"id": "m1", "grade": "7"})
    defaults.update(overrides)
    return NodeRecord(**defaults)


class TestEncoding:
    def test_roundtrip_full(self):
        node = sample_node()
        assert decode_node(encode_node(node)) == node

    def test_roundtrip_minimal(self):
        node = NodeRecord(0, "a", Region(0, 0, 0))
        assert decode_node(encode_node(node)) == node

    def test_roundtrip_unicode(self):
        node = sample_node(text="Ünïcødé — ✓",
                           attributes={"k": "väl"})
        assert decode_node(encode_node(node)) == node

    def test_oversized_record_rejected(self):
        node = sample_node(text="x" * 5000)
        with pytest.raises(StorageError, match="too large"):
            encode_node(node)


class TestElementStore:
    def test_store_and_fetch(self, store):
        node = sample_node(5, parent_id=0)
        store.store_node(node)
        assert store.fetch_node(5) == node

    def test_duplicate_rejected(self, store):
        store.store_node(sample_node(1, parent_id=0))
        with pytest.raises(StorageError, match="already stored"):
            store.store_node(sample_node(1, parent_id=0))

    def test_missing_node_rejected(self, store):
        with pytest.raises(StorageError, match="not stored"):
            store.fetch_node(9)

    def test_store_document_and_scan(self, store, small_document):
        store.store_document(small_document)
        assert store.node_count == len(small_document)
        scanned = list(store.scan())
        assert scanned == list(small_document.nodes)

    def test_spills_to_multiple_pages(self, store):
        document = parse_xml(
            "<r>" + "".join(f'<n k="{"x" * 200}">{("t" * 200)}</n>'
                            for _ in range(60)) + "</r>")
        store.store_document(document)
        assert store.page_count > 1
        assert list(store.scan()) == list(document.nodes)

    def test_fetch_goes_through_buffer_pool(self, small_document):
        pool = BufferPool(InMemoryDisk(), capacity=8)
        store = ElementStore(pool)
        store.store_document(small_document)
        accesses_before = pool.stats.accesses
        store.fetch_node(0)
        assert pool.stats.accesses == accesses_before + 1
