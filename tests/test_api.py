"""Tests for the Database facade."""

import pytest

from repro.api import Database
from repro.errors import ReproError
from repro.core import QueryPattern
from repro.core.cost import CostFactors
from repro.storage.disk import FileDisk


class TestConstruction:
    def test_from_xml(self, personnel_xml):
        database = Database.from_xml(personnel_xml, name="pers")
        assert database.statistics()["nodes"] > 10

    def test_from_document(self, small_document):
        database = Database.from_document(small_document)
        assert database.document is small_document

    def test_double_load_rejected(self, small_document):
        database = Database.from_document(small_document)
        with pytest.raises(ReproError, match="already holds"):
            database.load(small_document)

    def test_no_document_rejected(self):
        database = Database()
        with pytest.raises(ReproError, match="no document"):
            database.statistics()
        with pytest.raises(ReproError, match="no document"):
            __ = database.estimator

    def test_file_backed_database(self, small_document, tmp_path):
        with FileDisk(tmp_path / "db.pages") as disk:
            database = Database(disk=disk)
            database.load(small_document)
            result = database.query("//manager/employee")
            assert len(result) > 0


class TestQueries:
    def test_query_with_xpath_string(self, small_database):
        result = small_database.query("//manager//employee/name")
        assert len(result) > 0
        assert "IndexScan" in result.explain()

    def test_query_with_pattern(self, small_database, chain_pattern):
        result = small_database.query(chain_pattern)
        assert len(result) > 0

    def test_all_algorithms_agree_on_results(self, small_database,
                                             running_example_pattern):
        canonicals = set()
        for algorithm in ("DP", "DPP", "DPP'", "DPAP-EB", "DPAP-LD",
                          "FP"):
            result = small_database.query(running_example_pattern,
                                          algorithm=algorithm)
            canonicals.add(frozenset(result.execution.canonical()))
        assert len(canonicals) == 1

    def test_exact_estimator_option(self, small_database, chain_pattern):
        approx = small_database.optimize(chain_pattern)
        exact = small_database.optimize(chain_pattern, exact=True)
        # both must be valid; costs differ because statistics differ
        assert approx.plan is not exact.plan

    def test_optimizer_options_forwarded(self, small_database,
                                         running_example_pattern):
        result = small_database.optimize(running_example_pattern,
                                         algorithm="DPAP-EB",
                                         expansion_bound=2)
        assert result.report.algorithm == "DPAP-EB"

    def test_bad_plan_worse_than_optimized(self, small_database,
                                           running_example_pattern):
        optimized = small_database.optimize(running_example_pattern)
        bad_plan, bad_cost = small_database.bad_plan(
            running_example_pattern, samples=20)
        assert bad_cost >= optimized.estimated_cost
        execution = small_database.execute(bad_plan,
                                           running_example_pattern)
        reference = small_database.query(running_example_pattern)
        assert execution.canonical() == (
            reference.execution.canonical())


class TestConfiguration:
    def test_custom_cost_factors_used(self, small_document):
        database = Database.from_document(
            small_document,
            cost_factors=CostFactors(f_io=100.0))
        result = database.query("//manager//employee")
        assert result.execution.metrics.factors.f_io == 100.0

    def test_statistics_shape(self, small_database):
        statistics = small_database.statistics()
        for key in ("nodes", "depth", "tags", "store_pages",
                    "index_pages", "disk_pages", "buffer_capacity"):
            assert key in statistics

    def test_warm_statistics_idempotent(self, small_database,
                                        chain_pattern):
        small_database.warm_statistics(chain_pattern)
        small_database.warm_statistics(chain_pattern)

    def test_compile_passthrough(self, small_database, chain_pattern):
        assert small_database.compile(chain_pattern) is chain_pattern
        compiled = small_database.compile("//a/b")
        assert isinstance(compiled, QueryPattern)
