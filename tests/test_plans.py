"""Unit tests for physical plan trees."""

import pytest

from repro.errors import PlanError
from repro.core.pattern import Axis, QueryPattern
from repro.core.plans import (IndexScanPlan, JoinAlgorithm, SortPlan,
                              StructuralJoinPlan, validate_plan)


@pytest.fixture
def pattern():
    return QueryPattern.build({
        "nodes": ["a", "b", "c"],
        "edges": [(0, 1, "//"), (1, 2, "/")],
    })


def join(anc, desc, anc_node, desc_node, axis=Axis.DESCENDANT,
         algorithm=JoinAlgorithm.STACK_TREE_DESC):
    return StructuralJoinPlan(anc, desc, anc_node, desc_node, axis,
                              algorithm)


class TestPlanStructure:
    def test_scan_leaf(self):
        scan = IndexScanPlan(1, estimated_cardinality=10.0)
        assert scan.pattern_nodes() == frozenset({1})
        assert scan.ordered_by == 1
        assert scan.is_fully_pipelined
        assert scan.is_left_deep
        assert scan.join_count() == 0

    def test_join_output_order_follows_algorithm(self):
        std = join(IndexScanPlan(0), IndexScanPlan(1), 0, 1)
        assert std.ordered_by == 1
        sta = join(IndexScanPlan(0), IndexScanPlan(1), 0, 1,
                   algorithm=JoinAlgorithm.STACK_TREE_ANC)
        assert sta.ordered_by == 0

    def test_join_input_validation(self):
        with pytest.raises(PlanError, match="ancestor node"):
            join(IndexScanPlan(0), IndexScanPlan(1), 2, 1)
        with pytest.raises(PlanError, match="descendant node"):
            join(IndexScanPlan(0), IndexScanPlan(1), 0, 2)
        with pytest.raises(PlanError, match="overlap"):
            join(IndexScanPlan(0), IndexScanPlan(0), 0, 0)

    def test_sort_validation(self):
        scan = IndexScanPlan(0)
        with pytest.raises(PlanError, match="unbound"):
            SortPlan(scan, 5)

    def test_walk_preorder(self):
        plan = join(IndexScanPlan(0),
                    join(IndexScanPlan(1), IndexScanPlan(2), 1, 2), 0, 1)
        kinds = [type(node).__name__ for node in plan.walk()]
        assert kinds == ["StructuralJoinPlan", "IndexScanPlan",
                         "StructuralJoinPlan", "IndexScanPlan",
                         "IndexScanPlan"]


class TestTaxonomy:
    def test_left_deep_chain(self):
        plan = join(join(IndexScanPlan(0), IndexScanPlan(1), 0, 1,
                         algorithm=JoinAlgorithm.STACK_TREE_ANC),
                    IndexScanPlan(2), 1, 2)
        assert plan.is_left_deep

    def test_bushy_plan_detected(self):
        left = join(IndexScanPlan(0), IndexScanPlan(1), 0, 1)
        right = join(IndexScanPlan(2), IndexScanPlan(3), 2, 3)
        bushy = join(left, right, 1, 2)
        assert not bushy.is_left_deep

    def test_sort_breaks_pipeline(self):
        inner = join(IndexScanPlan(0), IndexScanPlan(1), 0, 1)
        sorted_plan = SortPlan(inner, 0)
        outer = join(sorted_plan, IndexScanPlan(2), 0, 2)
        assert not outer.is_fully_pipelined
        assert outer.sort_count() == 1
        assert inner.is_fully_pipelined


class TestValidatePlan:
    def test_valid_plan(self, pattern):
        plan = join(IndexScanPlan(0),
                    join(IndexScanPlan(1), IndexScanPlan(2), 1, 2,
                         axis=Axis.CHILD), 0, 1)
        validate_plan(plan, pattern)

    def test_missing_node_rejected(self, pattern):
        plan = join(IndexScanPlan(0), IndexScanPlan(1), 0, 1)
        with pytest.raises(PlanError, match="binds"):
            validate_plan(plan, pattern)

    def test_non_edge_join_rejected(self, pattern):
        plan = join(join(IndexScanPlan(0), IndexScanPlan(2), 0, 2),
                    IndexScanPlan(1), 0, 1)
        with pytest.raises(PlanError, match="no such pattern edge"):
            validate_plan(plan, pattern)

    def test_inverted_join_rejected(self, pattern):
        plan = join(join(IndexScanPlan(1), IndexScanPlan(0), 1, 0),
                    IndexScanPlan(2), 1, 2, axis=Axis.CHILD)
        with pytest.raises(PlanError, match="inverted"):
            validate_plan(plan, pattern)

    def test_wrong_axis_rejected(self, pattern):
        plan = join(IndexScanPlan(0),
                    join(IndexScanPlan(1), IndexScanPlan(2), 1, 2,
                         axis=Axis.DESCENDANT), 0, 1)
        with pytest.raises(PlanError, match="axis"):
            validate_plan(plan, pattern)


class TestRendering:
    def test_explain_shows_structure(self, pattern):
        plan = join(IndexScanPlan(0),
                    join(IndexScanPlan(1), IndexScanPlan(2), 1, 2,
                         axis=Axis.CHILD), 0, 1)
        text = plan.explain(pattern)
        assert "stack-tree-desc" in text
        assert "IndexScan($0:a)" in text
        assert text.count("IndexScan") == 3

    def test_signature_unique_per_shape(self):
        first = join(IndexScanPlan(0), IndexScanPlan(1), 0, 1)
        second = join(IndexScanPlan(0), IndexScanPlan(1), 0, 1,
                      algorithm=JoinAlgorithm.STACK_TREE_ANC)
        assert first.signature() != second.signature()
