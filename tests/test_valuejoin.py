"""Tests for value-based joins and grouping (the Sec. 6 extension)."""

import pytest

from repro.api import Database
from repro.errors import PlanError
from repro.document.parser import parse_xml
from repro.engine.valuejoin import (ValueJoin, group_counts,
                                    group_matches)

XML = """
<site>
  <people>
    <person><name>Ada</name><city>Paris</city></person>
    <person><name>Bob</name><city>Oslo</city></person>
    <person><name>Cat</name><city>Paris</city></person>
  </people>
  <orders>
    <order ref="Ada"><item>pen</item></order>
    <order ref="Ada"><item>ink</item></order>
    <order ref="Cat"><item>pad</item></order>
    <order ref="Zed"><item>nib</item></order>
  </orders>
</site>
"""


@pytest.fixture(scope="module")
def database():
    return Database.from_document(parse_xml(XML))


class TestValueJoin:
    def test_text_to_attribute_join(self, database):
        # person names joined with order @ref values
        result = database.value_join(
            "//person/name", "//orders/order",
            left_node=1, right_node=1, right_attribute="ref")
        # Ada x2 orders + Cat x1 = 3 joined rows
        assert len(result) == 3
        keys = result.keys(database.document, 1)
        assert sorted(keys) == ["Ada", "Ada", "Cat"]

    def test_text_to_text_join(self, database):
        # self-join of names on equal text: each name matches itself
        result = database.value_join(
            "//person/name", "//person/name",
            left_node=1, right_node=1)
        assert len(result) == 3

    def test_join_with_structural_context(self, database):
        # only people in Paris, joined with their orders
        result = database.value_join(
            "//person[city = 'Paris']/name", "//order",
            left_node=2, right_node=0, right_attribute="ref")
        keys = result.keys(database.document, 2)
        assert sorted(keys) == ["Ada", "Ada", "Cat"]

    def test_no_matches(self, database):
        result = database.value_join(
            "//person/city", "//order", left_node=1, right_node=0,
            right_attribute="ref")
        assert len(result) == 0

    def test_unbound_node_rejected(self, database):
        left = database.query("//person/name").execution
        right = database.query("//order").execution
        join = ValueJoin(database.document, left_node=9, right_node=0)
        with pytest.raises(PlanError, match="left side"):
            join.join(left, right)
        join = ValueJoin(database.document, left_node=1, right_node=9)
        with pytest.raises(PlanError, match="right side"):
            join.join(left, right)

    def test_metrics_charged(self, database):
        result = database.value_join(
            "//person/name", "//order", left_node=1, right_node=0,
            right_attribute="ref")
        assert result.metrics.index_items == 3 + 4  # one probe per tuple
        assert result.metrics.output_tuples == len(result)


class TestGrouping:
    def test_group_matches_by_ancestor(self, database):
        execution = database.query("//person/*").execution
        groups = group_matches(execution, by_node=0)
        assert len(groups) == 3  # three persons
        assert all(len(rows) == 2 for rows in groups.values())

    def test_group_counts(self, database):
        execution = database.query("//orders/order").execution
        counts = group_counts(execution, by_node=0)
        (orders_region,) = counts.keys()
        assert counts[orders_region] == 4

    def test_group_keys_are_document_ordered_regions(self, database):
        execution = database.query("//person/name").execution
        groups = group_matches(execution, by_node=0)
        starts = sorted(region.start for region in groups)
        persons = database.document.nodes_with_tag("person")
        assert starts == [person.start for person in persons]

    def test_grouping_personnel_scenario(self, small_database):
        """Employees per manager — the kind of aggregate the paper's
        Sec. 6 grouping would feed."""
        execution = small_database.query("//manager/employee").execution
        counts = group_counts(execution, by_node=0)
        document = small_database.document
        for region, count in counts.items():
            manager = document.node(region.start)
            direct = [child for child in document.children(manager)
                      if child.tag == "employee"]
            assert count == len(direct)
