"""Unit tests for the standalone XML parser."""

import pytest

from repro.errors import XmlParseError
from repro.document.parser import parse_xml


class TestBasicParsing:
    def test_single_element(self):
        document = parse_xml("<a/>")
        assert len(document) == 1
        assert document.root.tag == "a"

    def test_nested_elements(self):
        document = parse_xml("<a><b><c/></b><d/></a>")
        assert [node.tag for node in document] == ["a", "b", "c", "d"]
        assert [node.level for node in document] == [0, 1, 2, 1]

    def test_text_content(self):
        document = parse_xml("<a>hello <b>world</b> again</a>")
        assert document.root.text == "hello  again"
        assert document.nodes[1].text == "world"

    def test_attributes_double_and_single_quotes(self):
        document = parse_xml("""<a x="1" y='two'/>""")
        assert document.root.attributes == {"x": "1", "y": "two"}

    def test_self_closing_with_attributes(self):
        document = parse_xml('<a><b k="v"/></a>')
        assert document.nodes[1].attributes == {"k": "v"}
        assert document.nodes[1].region.end == 1

    def test_xml_declaration_and_doctype_skipped(self):
        document = parse_xml(
            '<?xml version="1.0"?>\n<!DOCTYPE a>\n<a/>')
        assert document.root.tag == "a"

    def test_comments_skipped(self):
        document = parse_xml("<a><!-- ignore <b/> --><c/></a>")
        assert [node.tag for node in document] == ["a", "c"]

    def test_cdata_becomes_text(self):
        document = parse_xml("<a><![CDATA[x < y & z]]></a>")
        assert document.root.text == "x < y & z"

    def test_processing_instruction_skipped(self):
        document = parse_xml("<a><?php echo; ?><b/></a>")
        assert [node.tag for node in document] == ["a", "b"]

    def test_whitespace_in_tags(self):
        document = parse_xml("<a >< b/></a >".replace("< b", "<b"))
        assert len(document) == 2


class TestEntities:
    def test_predefined_entities(self):
        document = parse_xml("<a>&lt;&amp;&gt;&quot;&apos;</a>")
        assert document.root.text == "<&>\"'"

    def test_numeric_entities(self):
        document = parse_xml("<a>&#65;&#x42;</a>")
        assert document.root.text == "AB"

    def test_entities_in_attributes(self):
        document = parse_xml('<a k="&lt;x&gt;"/>')
        assert document.root.attributes["k"] == "<x>"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlParseError, match="unknown entity"):
            parse_xml("<a>&nope;</a>")


class TestErrors:
    def test_mismatched_tags(self):
        with pytest.raises(XmlParseError):
            parse_xml("<a><b></a></b>")

    def test_unclosed_element(self):
        with pytest.raises(XmlParseError):
            parse_xml("<a><b>")

    def test_unterminated_comment(self):
        with pytest.raises(XmlParseError, match="comment"):
            parse_xml("<a><!-- oops</a>")

    def test_unterminated_attribute(self):
        with pytest.raises(XmlParseError, match="attribute"):
            parse_xml('<a k="oops/>')

    def test_duplicate_attribute(self):
        with pytest.raises(XmlParseError, match="duplicate"):
            parse_xml('<a k="1" k="2"/>')

    def test_missing_equals(self):
        with pytest.raises(XmlParseError, match="expected '='"):
            parse_xml("<a k/>")

    def test_error_carries_line_and_column(self):
        try:
            parse_xml("<a>\n  <b>&nope;</b>\n</a>")
        except XmlParseError as exc:
            assert exc.line == 2
            assert exc.column is not None
        else:  # pragma: no cover
            pytest.fail("expected XmlParseError")

    def test_empty_input(self):
        with pytest.raises(XmlParseError):
            parse_xml("")

    def test_text_only_input(self):
        with pytest.raises(XmlParseError):
            parse_xml("just text")


class TestRealisticDocument:
    def test_personnel_fixture(self, personnel_xml):
        document = parse_xml(personnel_xml)
        assert document.tag_count("manager") == 3
        assert document.tag_count("employee") == 5
        assert document.tag_count("department") == 2
        managers = document.nodes_with_tag("manager")
        assert managers[0].is_ancestor_of(managers[1])
        assert not managers[0].is_ancestor_of(managers[2])
