"""Unit tests for the block-at-a-time engine and the decode cache.

The randomized cross-check of whole plans lives in
``test_differential.py``; here the block operators are pinned down on
hand-written edge cases (empty inputs, fully nested runs, disjoint
runs — the shapes the skip-ahead logic jumps over), and the storage
additions backing the engine (posting decode cache, batched index
build, page-batched node reader) get direct coverage.
"""

import io

import pytest

from repro.api import Database
from repro.bench.speed import PARITY_COUNTERS
from repro.cli import main
from repro.core.pattern import Axis, QueryPattern
from repro.core.plans import (IndexScanPlan, JoinAlgorithm,
                              SortPlan, StructuralJoinPlan)
from repro.document.node import NodeRecord, Region
from repro.document.parser import parse_xml
from repro.errors import PlanError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.tagindex import TagIndex

from tests.test_executor import blocking_plan, fully_pipelined_plan


def counters(execution):
    return {name: getattr(execution.metrics, name)
            for name in PARITY_COUNTERS}


def assert_engines_agree(database, plan, pattern):
    """Both engines: identical tuples and cost-model counters."""
    tuple_run = database.execute(plan, pattern, engine="tuple")
    block_run = database.execute(plan, pattern, engine="block")
    assert tuple_run.tuples == block_run.tuples
    assert counters(tuple_run) == counters(block_run)
    return block_run


def pair_pattern(axis: str) -> QueryPattern:
    return QueryPattern.build({"nodes": ["a", "b"],
                               "edges": [(0, 1, axis)]})


def pair_plan(algorithm: JoinAlgorithm, axis: Axis):
    return StructuralJoinPlan(IndexScanPlan(0), IndexScanPlan(1),
                              0, 1, axis, algorithm)


#: edge-case document shapes for the skip-ahead paths: runs the join
#: must jump over (disjoint, before, after), fully nested chains the
#: Desc join's parent-chain climb walks, and repeated starts.
EDGE_DOCUMENTS = {
    "absent-desc": "<r><a/><a><a/></a></r>",
    "absent-anc": "<r><b/><b><b/></b></r>",
    "both-absent": "<r><c/></r>",
    "no-overlap": "<r><a/><a/><b/><b/></r>",
    "desc-first": "<r><b/><b/><a/><a/></r>",
    "fully-nested": "<r><a><a><a><b/></a></a></a><b/></r>",
    "nested-mixed": ("<r><a><b/><a><b/><b/></a></a><b/>"
                     "<a><a/><b><a><b/></a></b></a></r>"),
    "interleaved": "<r><a><b/></a><c/><a><c/><b/></a><b/></r>",
}


@pytest.mark.parametrize("shape", sorted(EDGE_DOCUMENTS))
@pytest.mark.parametrize("axis_name,axis",
                         [("//", Axis.DESCENDANT), ("/", Axis.CHILD)])
@pytest.mark.parametrize("algorithm", [JoinAlgorithm.STACK_TREE_DESC,
                                       JoinAlgorithm.STACK_TREE_ANC])
def test_skip_ahead_edge_cases(shape, axis_name, axis, algorithm):
    database = Database.from_document(
        parse_xml(EDGE_DOCUMENTS[shape], name=shape))
    pattern = pair_pattern(axis_name)
    assert_engines_agree(database, pair_plan(algorithm, axis), pattern)


@pytest.mark.parametrize("plan_builder", [fully_pipelined_plan,
                                          blocking_plan])
def test_running_example_plans_agree(small_database,
                                     running_example_pattern,
                                     plan_builder):
    execution = assert_engines_agree(small_database, plan_builder(),
                                     running_example_pattern)
    assert len(execution) > 0


def test_block_sort_counters(small_database, running_example_pattern):
    """A plan with an explicit sort charges identical sort counters."""
    execution = assert_engines_agree(small_database, blocking_plan(),
                                     running_example_pattern)
    assert execution.metrics.sort_count > 0


def test_wildcard_and_predicate_parity(small_database):
    for xpath in ("//manager/*", "//*", '//manager[@id="m2"]//name',
                  '//employee[@id="e3"]'):
        pattern = small_database.compile(xpath)
        plan = small_database.optimize(pattern).plan
        assert_engines_agree(small_database, plan, pattern)


# -- decode cache ---------------------------------------------------------


@pytest.fixture
def index():
    return TagIndex(BufferPool(InMemoryDisk(), capacity=16))


class TestDecodeCache:
    def test_scan_blocks_cached_identity(self, index, small_document):
        index.index_document(small_document)
        first = index.scan_blocks("manager")
        assert index.scan_blocks("manager") is first
        assert index.scan_blocks_all() is index.scan_blocks_all()
        assert [r.start for r in first.regions] == [
            r.start for r in index.scan("manager")]

    def test_merged_block_is_document_ordered(self, index,
                                              small_document):
        index.index_document(small_document)
        merged = index.scan_blocks_all()
        assert len(merged) == len(small_document)
        assert list(merged.starts) == sorted(merged.starts)

    def test_mutation_invalidates(self, index, small_document):
        index.index_document(small_document)
        stale = index.scan_blocks("manager")
        epoch = index.decode_epoch
        last = max(node.start for node in small_document)
        index.add(NodeRecord(last + 1, "manager",
                             Region(last + 1, last + 2, 1),
                             parent_id=0))
        assert index.decode_epoch == epoch + 1
        fresh = index.scan_blocks("manager")
        assert fresh is not stale
        assert len(fresh) == len(stale) + 1
        assert index.scan_blocks_all() is not None

    def test_reload_discards_cache(self, small_document):
        database = Database.from_document(small_document)
        pattern = database.compile("//manager//employee")
        before = database.query(pattern).execution
        database.reload(parse_xml(
            "<company><manager><employee/></manager></company>",
            name="tiny"))
        after = database.query(pattern).execution
        assert len(before) > len(after) == 1

    def test_tuple_engine_leaves_cache_cold(self, small_document):
        database = Database.from_document(small_document,
                                          engine="tuple")
        database.query("//manager//employee")
        assert not database.index._blocks
        database.query("//manager//employee", engine="block")
        assert database.index._blocks


# -- batched index build --------------------------------------------------


class TestAddMany:
    def _records(self, document):
        return [node for node in document]

    def test_matches_add_loop(self, small_document):
        one = TagIndex(BufferPool(InMemoryDisk(), capacity=16))
        many = TagIndex(BufferPool(InMemoryDisk(), capacity=16))
        for node in self._records(small_document):
            one.add(node)
        added = many.add_many(self._records(small_document))
        assert added == len(small_document)
        assert one.counts() == many.counts()
        for tag in one.tags():
            assert one.regions(tag) == many.regions(tag)

    def test_out_of_order_rejected(self, index):
        with pytest.raises(StorageError, match="document order"):
            index.add_many([
                NodeRecord(5, "a", Region(5, 6, 1), parent_id=0),
                NodeRecord(3, "a", Region(3, 4, 1), parent_id=0),
            ])

    def test_tags_stay_sorted_after_new_tag(self, index,
                                            small_document):
        index.index_document(small_document)
        listed = index.tags()
        assert listed == sorted(listed)
        last = max(node.start for node in small_document)
        index.add(NodeRecord(last + 1, "aaa",
                             Region(last + 1, last + 2, 1),
                             parent_id=0))
        assert "aaa" in index.tags()
        assert index.tags() == sorted(index.tags())


# -- page-batched node reader ---------------------------------------------


def test_node_reader_matches_fetch_node():
    document = parse_xml(
        "<r>" + "<n a='1'/>" * 700 + "</r>", name="wide")
    database = Database.from_document(document)
    reader = database.store.reader()
    for node in document:
        assert reader.node(node.start) == database.store.fetch_node(
            node.start)


# -- engine selection -----------------------------------------------------


class TestEngineSelection:
    def test_invalid_engine_rejected(self, small_document):
        with pytest.raises(PlanError, match="unknown engine"):
            Database.from_document(small_document, engine="vector")
        database = Database.from_document(small_document)
        with pytest.raises(PlanError, match="unknown engine"):
            database.query("//manager", engine="vector")

    def test_per_call_override(self, small_database):
        base = small_database.query("//manager//employee")
        for engine in ("tuple", "block"):
            result = small_database.query("//manager//employee",
                                          engine=engine)
            assert result.execution.tuples == base.execution.tuples

    def test_query_many_engine(self, small_database):
        queries = ["//manager//employee", "//department/name"]
        for engine in ("tuple", "block"):
            batch = small_database.query_many(queries, engine=engine,
                                              workers=2)
            for query, result in zip(queries, batch):
                solo = small_database.query(query, engine=engine)
                assert result.execution.tuples == solo.execution.tuples

    def test_cli_engine_flag(self, tmp_path, personnel_xml):
        path = tmp_path / "pers.xml"
        path.write_text(personnel_xml)
        outputs = {}
        for engine in ("tuple", "block"):
            out = io.StringIO()
            code = main(["query", "--xml", str(path),
                         "--engine", engine, "--limit", "0",
                         "//manager//employee/name"], out=out)
            assert code == 0
            first_line = out.getvalue().splitlines()[0]
            outputs[engine] = first_line.split(" matches")[0]
            assert "matches" in first_line
        assert outputs["tuple"] == outputs["block"]
