"""Differential-testing harness: optimizers and engines cross-check.

Two oracles over a corpus of generated patterns:

* **Cost oracle** — DP and DPP both claim the global optimum, so
  their reported plan costs must agree exactly on every pattern; FP
  claims the optimum of the fully-pipelined subspace, so its cost must
  match DP whenever DP's optimum is itself fully pipelined (and never
  beat DP).

* **Binding oracle** — every evaluation strategy must produce the
  identical binding set: the optimized structural-join plan (DP and
  DPP), a nested-loop-join plan, the brute-force matcher, and the
  holistic TwigStack operator.  This is the binary-vs-holistic
  cross-check the "Demythization" line of work motivates: structural
  join plans and holistic twig joins are independent implementations
  of the same semantics, so any disagreement is a bug in one of them.

Quick mode runs ``QUICK_CORPUS`` (>= 200) patterns; the ``slow``-marked
case widens the corpus and documents.
"""

from __future__ import annotations

import pytest

from repro.api import Database
from repro.errors import ReproError
from repro.core.plans import (IndexScanPlan, JoinAlgorithm, PhysicalPlan,
                              StructuralJoinPlan)
from repro.engine.nestedloop import naive_pattern_matches
from repro.workloads import make_rng, random_pattern
from repro.workloads.personnel import personnel_document

from tests.conftest import random_document

QUICK_CORPUS = 220
SLOW_CORPUS = 600

#: document tags match the random-pattern tag alphabet plus noise
DOCUMENT_SEEDS = (1, 2, 3)


def _documents(size: int):
    documents = [random_document(seed, size=size)
                 for seed in DOCUMENT_SEEDS]
    documents.append(personnel_document(target_nodes=200))
    return documents


def _pattern_for(document, rng):
    """A random pattern whose tag alphabet matches *document*."""
    tags = tuple(sorted(document.tags()))
    return random_pattern(rng, tags=tags, min_nodes=2, max_nodes=5,
                          wildcard_chance=0.1, order_by_chance=0.5)


def nested_loop_plan(pattern) -> PhysicalPlan:
    """A left-deep all-nested-loop plan — the engine baseline."""
    plan: PhysicalPlan = IndexScanPlan(pattern.root)
    covered = {pattern.root}
    frontier = [pattern.root]
    while frontier:
        node_id = frontier.pop()
        for edge in pattern.child_edges(node_id):
            plan = StructuralJoinPlan(
                plan, IndexScanPlan(edge.child),
                edge.parent, edge.child, edge.axis,
                JoinAlgorithm.NESTED_LOOP)
            covered.add(edge.child)
            frontier.append(edge.child)
    assert covered == set(range(len(pattern)))
    return plan


def _check_pattern(database, pattern):
    """Run both oracles on one (document, pattern) case.

    Returns a list of disagreement descriptions (empty = pass).
    """
    problems: list[str] = []

    dp = database.optimize(pattern, algorithm="DP")
    dpp = database.optimize(pattern, algorithm="DPP")
    tolerance = 1e-6 * max(1.0, abs(dp.estimated_cost))
    if abs(dp.estimated_cost - dpp.estimated_cost) > tolerance:
        problems.append(
            f"DP cost {dp.estimated_cost} != DPP cost "
            f"{dpp.estimated_cost}")

    fp = database.optimize(pattern, algorithm="FP")
    if fp.estimated_cost < dp.estimated_cost - tolerance:
        problems.append(
            f"FP cost {fp.estimated_cost} beats the DP optimum "
            f"{dp.estimated_cost}")
    if dp.plan.is_fully_pipelined and abs(
            fp.estimated_cost - dp.estimated_cost) > tolerance:
        problems.append(
            f"DP optimum is fully pipelined but FP found "
            f"{fp.estimated_cost} != {dp.estimated_cost}")

    reference = database.execute(dpp.plan, pattern).canonical()
    for name, plan in (("DP", dp.plan), ("FP", fp.plan),
                       ("nested-loop", nested_loop_plan(pattern))):
        bindings = database.execute(plan, pattern).canonical()
        if bindings != reference:
            problems.append(
                f"{name} plan produced {len(bindings)} bindings, "
                f"DPP produced {len(reference)}")

    holistic = database.holistic_query(pattern).canonical()
    if holistic != reference:
        problems.append(
            f"TwigStack produced {len(holistic)} bindings, "
            f"structural joins produced {len(reference)}")

    naive = {
        tuple(binding[key].start for key in sorted(binding))
        for binding in naive_pattern_matches(database.document, pattern)}
    if naive != reference:
        problems.append(
            f"brute force produced {len(naive)} bindings, "
            f"structural joins produced {len(reference)}")
    return problems


def _run_corpus(corpus: int, document_size: int) -> tuple[int, list]:
    rng = make_rng(20030305)
    disagreements: list[str] = []
    databases = [Database.from_document(document)
                 for document in _documents(document_size)]
    checked = 0
    while checked < corpus:
        database = databases[checked % len(databases)]
        pattern = _pattern_for(database.document, rng)
        for problem in _check_pattern(database, pattern):
            disagreements.append(
                f"[doc={database.name} pattern="
                f"{pattern.describe()!r}] {problem}")
        checked += 1
    return checked, disagreements


def test_differential_quick_corpus():
    checked, disagreements = _run_corpus(QUICK_CORPUS, document_size=48)
    assert checked >= 200
    assert not disagreements, "\n".join(disagreements)


@pytest.mark.slow
def test_differential_slow_corpus():
    checked, disagreements = _run_corpus(SLOW_CORPUS, document_size=90)
    assert checked >= SLOW_CORPUS
    assert not disagreements, "\n".join(disagreements)


def test_nested_loop_plan_covers_pattern(running_example_pattern):
    plan = nested_loop_plan(running_example_pattern)
    assert plan.pattern_nodes() == frozenset(
        range(len(running_example_pattern)))
    assert plan.join_count() == len(running_example_pattern.edges)


# -- engine oracle: block vs tuple ---------------------------------------


def _check_engines(database, pattern) -> list[str]:
    """Exact-sequence cross-check of the two execution engines.

    Stricter than the binding oracle above: the block engine promises
    the *identical tuple list* (same order, same duplicates) and the
    identical cost-model counters as the iterator engine, for any
    plan — see the invariants in :mod:`repro.engine.blocks`.
    """
    from repro.bench.speed import PARITY_COUNTERS

    problems: list[str] = []
    plans = [("nested-loop", nested_loop_plan(pattern))]
    try:
        plans.append(
            ("DPP", database.optimize(pattern, algorithm="DPP").plan))
    except ReproError:
        # engine parity must hold for any *executable* plan; a pattern
        # the optimizer rejects still exercises the nested-loop pair
        pass
    for name, plan in plans:
        tuple_run = database.execute(plan, pattern, engine="tuple")
        block_run = database.execute(plan, pattern, engine="block")
        if tuple_run.tuples != block_run.tuples:
            problems.append(
                f"{name}: block engine emitted {len(block_run)} "
                f"tuples, tuple engine {len(tuple_run)} (or ordering "
                f"differs)")
        for counter in PARITY_COUNTERS:
            expected = getattr(tuple_run.metrics, counter)
            actual = getattr(block_run.metrics, counter)
            if expected != actual:
                problems.append(
                    f"{name}: counter {counter} diverged "
                    f"(tuple {expected}, block {actual})")
    return problems


def _run_engine_corpus(corpus: int,
                       document_size: int) -> tuple[int, list]:
    rng = make_rng(20030306)
    disagreements: list[str] = []
    databases = [Database.from_document(document)
                 for document in _documents(document_size)]
    checked = 0
    while checked < corpus:
        database = databases[checked % len(databases)]
        pattern = _pattern_for(database.document, rng)
        for problem in _check_engines(database, pattern):
            disagreements.append(
                f"[doc={database.name} pattern="
                f"{pattern.describe()!r}] {problem}")
        checked += 1
    return checked, disagreements


def test_engine_differential_quick_corpus():
    checked, disagreements = _run_engine_corpus(QUICK_CORPUS,
                                                document_size=48)
    assert checked >= 200
    assert not disagreements, "\n".join(disagreements)


@pytest.mark.slow
def test_engine_differential_slow_corpus():
    checked, disagreements = _run_engine_corpus(SLOW_CORPUS,
                                                document_size=90)
    assert checked >= SLOW_CORPUS
    assert not disagreements, "\n".join(disagreements)


# -- shard oracle: scatter-gather vs single node --------------------------


SHARDED_COUNTS = (1, 2, 4)


def _dominant_document():
    """Root with one giant child subtree and two tiny siblings — the
    worst case for the greedy partitioner (one shard overfills)."""
    from repro.document.builder import DocumentBuilder

    builder = DocumentBuilder(name="dominant")
    builder.start_element("root")
    builder.start_element("a")
    for _ in range(25):
        builder.start_element("b")
        builder.start_element("c")
        builder.end_element()
    for _ in range(25):
        builder.end_element()
    builder.end_element()  # the giant <a>
    for _ in range(2):
        builder.start_element("a")
        builder.end_element()
    builder.end_element()
    return builder.finish()


def _sparse_document():
    """Two small subtrees — fewer than the widest shard count, so some
    shards end up empty and must still answer queries."""
    from repro.document.builder import DocumentBuilder

    builder = DocumentBuilder(name="sparse")
    builder.start_element("root")
    for _ in range(2):
        builder.start_element("a")
        builder.start_element("b")
        builder.start_element("c")
        builder.end_element()
        builder.end_element()
        builder.end_element()
    builder.end_element()
    return builder.finish()


def _sharded_documents():
    return [personnel_document(target_nodes=240),
            random_document(7, size=60),
            _dominant_document(),
            _sparse_document()]


def test_sharded_differential_binding_and_order_oracle():
    """Scatter-gather must be observationally equivalent to one node.

    For every document (including the empty-shard and the
    single-subtree-dominant edge cases), shard count in
    ``SHARDED_COUNTS`` and both execution engines, the same physical
    plan runs sharded and single-node: the merged binding sets must be
    identical, and the merged tuple stream must arrive in global
    document order (non-decreasing merge keys).
    """
    from repro.shard import ShardedDatabase
    from repro.shard.worker import merge_key

    rng = make_rng(20030307)
    disagreements: list[str] = []
    for document in _sharded_documents():
        single = Database.from_document(document)
        patterns = [_pattern_for(document, rng) for _ in range(5)]
        for shards in SHARDED_COUNTS:
            with ShardedDatabase(document, shards=shards) as sharded:
                for pattern in patterns:
                    plan = sharded.optimize(pattern,
                                            algorithm="DPP").plan
                    reference = single.execute(plan,
                                               pattern).canonical()
                    for engine in ("block", "tuple"):
                        case = (f"[doc={document.name} shards={shards}"
                                f" engine={engine} pattern="
                                f"{pattern.describe()!r}]")
                        merged = sharded.execute(plan, pattern,
                                                 engine=engine)
                        if merged.canonical() != reference:
                            disagreements.append(
                                f"{case} sharded produced "
                                f"{len(merged.canonical())} bindings,"
                                f" single node {len(reference)}")
                        keys = [merge_key(row)
                                for row in merged.tuples]
                        if keys != sorted(keys):
                            disagreements.append(
                                f"{case} merged output is not in "
                                f"document order")
    assert not disagreements, "\n".join(disagreements)
