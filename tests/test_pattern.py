"""Unit tests for query patterns and predicates."""

import pytest

from repro.errors import PatternError
from repro.core.pattern import (Axis, PatternBuilder, PatternEdge,
                                PatternNode, Predicate, QueryPattern)
from repro.document.node import NodeRecord, Region


def node_with(tag="item", text="", attributes=None):
    return NodeRecord(0, tag, Region(0, 0, 0), text=text,
                      attributes=attributes or {})


class TestPredicate:
    def test_text_equality(self):
        predicate = Predicate(kind="text", op="=", value="Ada")
        assert predicate.matches(node_with(text="Ada"))
        assert not predicate.matches(node_with(text="Bob"))

    def test_attribute_equality(self):
        predicate = Predicate(kind="attribute", op="=", value="1",
                              name="year")
        assert predicate.matches(node_with(attributes={"year": "1"}))
        assert not predicate.matches(node_with(attributes={"year": "2"}))
        assert not predicate.matches(node_with())  # attribute absent

    def test_numeric_comparison(self):
        predicate = Predicate(kind="attribute", op=">=", value="2000",
                              name="year")
        assert predicate.matches(node_with(attributes={"year": "2001"}))
        assert not predicate.matches(node_with(attributes={"year": "99"}))

    def test_string_comparison_fallback(self):
        predicate = Predicate(kind="text", op="<", value="m")
        assert predicate.matches(node_with(text="abc"))
        assert not predicate.matches(node_with(text="zzz"))

    def test_contains(self):
        predicate = Predicate(kind="text", op="contains", value="dam")
        assert predicate.matches(node_with(text="Ada Adams"))

    def test_invalid_kind_and_op(self):
        with pytest.raises(PatternError):
            Predicate(kind="weird", op="=", value="x")
        with pytest.raises(PatternError):
            Predicate(kind="text", op="~", value="x")
        with pytest.raises(PatternError):
            Predicate(kind="attribute", op="=", value="x")  # no name


class TestPatternNode:
    def test_tag_match(self):
        node = PatternNode(0, "manager")
        assert node.matches(node_with(tag="manager"))
        assert not node.matches(node_with(tag="employee"))

    def test_wildcard(self):
        node = PatternNode(0, "*")
        assert node.is_wildcard
        assert node.matches(node_with(tag="anything"))

    def test_predicates_conjunctive(self):
        node = PatternNode(0, "m", (
            Predicate(kind="text", op="=", value="x"),
            Predicate(kind="attribute", op="=", value="1", name="k"),
        ))
        assert node.matches(node_with(tag="m", text="x",
                                      attributes={"k": "1"}))
        assert not node.matches(node_with(tag="m", text="x"))

    def test_label(self):
        node = PatternNode(0, "m",
                           (Predicate(kind="text", op="=", value="x"),))
        assert node.label() == "m[text() = 'x']"


class TestQueryPattern:
    def test_build_from_spec(self, running_example_pattern):
        pattern = running_example_pattern
        assert len(pattern) == 6
        assert pattern.root == 0
        assert pattern.edge_between(0, 1).axis is Axis.DESCENDANT
        assert pattern.edge_between(1, 2).axis is Axis.CHILD
        assert pattern.edge_between(2, 1) is pattern.edge_between(1, 2)
        assert pattern.edge_between(2, 5) is None

    def test_neighbors(self, running_example_pattern):
        assert sorted(running_example_pattern.neighbors(0)) == [1, 3]
        assert sorted(running_example_pattern.neighbors(1)) == [0, 2]
        assert running_example_pattern.neighbors(5) == [4]

    def test_connected_subsets(self, running_example_pattern):
        pattern = running_example_pattern
        assert pattern.is_connected_subset({0, 1, 2})
        assert pattern.is_connected_subset({0})
        assert not pattern.is_connected_subset({1, 3})
        assert not pattern.is_connected_subset(set())

    def test_edges_within(self, running_example_pattern):
        inner = running_example_pattern.edges_within(frozenset({0, 1, 2}))
        assert {(edge.parent, edge.child) for edge in inner} == {
            (0, 1), (1, 2)}

    def test_subtree_nodes(self, running_example_pattern):
        assert running_example_pattern.subtree_nodes(3) == frozenset(
            {3, 4, 5})
        assert running_example_pattern.subtree_nodes(0) == frozenset(
            range(6))

    def test_walk_preorder(self, running_example_pattern):
        order = list(running_example_pattern.walk_preorder())
        assert order[0] == 0
        assert set(order) == set(range(6))
        assert order.index(1) < order.index(2)
        assert order.index(3) < order.index(5)

    def test_depth(self, running_example_pattern, chain_pattern):
        assert running_example_pattern.depth() == 3
        assert chain_pattern.depth() == 2

    def test_describe_mentions_order_by(self):
        pattern = QueryPattern.build({
            "nodes": ["a", "b"], "edges": [(0, 1, "/")], "order_by": 1})
        assert "order by $1" in pattern.describe()

    def test_validation_rejects_cycles_and_forests(self):
        with pytest.raises(PatternError, match="two parents"):
            QueryPattern.build({"nodes": ["a", "b", "c"],
                                "edges": [(0, 1, "/"), (2, 1, "/")]})
        with pytest.raises(PatternError, match="edges"):
            QueryPattern.build({"nodes": ["a", "b", "c"],
                                "edges": [(0, 1, "/")]})
        with pytest.raises(PatternError, match="not connected"):
            QueryPattern.build({
                "nodes": ["a", "b", "c", "d"],
                "edges": [(0, 1, "/"), (2, 3, "/"), (3, 2, "/")]})

    def test_validation_rejects_bad_references(self):
        with pytest.raises(PatternError):
            QueryPattern.build({"nodes": ["a", "b"],
                                "edges": [(0, 5, "/")]})
        with pytest.raises(PatternError, match="order_by"):
            QueryPattern.build({"nodes": ["a"], "edges": [],
                                "order_by": 3})

    def test_single_node_pattern(self):
        pattern = QueryPattern.build({"nodes": ["a"], "edges": []})
        assert len(pattern) == 1
        assert pattern.root == 0


class TestPatternBuilder:
    def test_fluent_construction(self):
        builder = PatternBuilder()
        manager = builder.node("manager")
        employee = builder.node("employee")
        builder.edge(manager, employee, Axis.DESCENDANT)
        pattern = builder.finish(order_by=manager)
        assert len(pattern) == 2
        assert pattern.order_by == manager

    def test_add_predicate(self):
        builder = PatternBuilder()
        node = builder.node("a")
        builder.add_predicate(node, Predicate(kind="text", op="=",
                                              value="x"))
        pattern = builder.finish()
        assert len(pattern.node(0).predicates) == 1
