"""Write-path tests: WAL framing, mutations, snapshots, durability."""

from __future__ import annotations

import io
import threading

import pytest

from repro.api import Database
from repro.document.document import XmlDocument
from repro.document.parser import parse_xml
from repro.errors import StorageError, TransactionError
from repro.storage.pages import PAGE_SIZE
from repro.txn.db import create_database, open_database
from repro.txn.labels import pick_gap, relabel
from repro.txn.wal import (BEGIN, CATALOG, CHECKPOINT, COMMIT, PAGE,
                           WriteAheadLog)
from tests.conftest import PERSONNEL_XML, canonical_bindings

WIDGETS_XML = "<catalog><widget><name>gizmo</name></widget></catalog>"


def fresh_database() -> Database:
    """A private, mutable copy of the shared personnel document."""
    return Database.from_document(parse_xml(PERSONNEL_XML, name="pers"))


def node_shape(document) -> list[tuple]:
    """Structure-only identity: tags, text, and nesting order."""
    shape = []
    for node in document.nodes:
        parent = (document.node(node.parent_id).tag
                  if node.parent_id >= 0 else None)
        shape.append((node.tag, node.text, node.level, parent))
    return shape


def query_bindings(database: Database, xpath: str,
                   engine: str = "block") -> set[tuple]:
    pattern = database.compile(xpath)
    result = database.query(pattern, engine=engine)
    return canonical_bindings(result.execution.bindings())


class TestWalFraming:
    def test_roundtrip_all_record_types(self):
        wal = WriteAheadLog(None)
        wal.append_begin(7)
        wal.append_page(7, 3, bytes(PAGE_SIZE))
        wal.append_catalog(7, {"name": "db", "node_count": 5})
        wal.append_commit(7)
        wal.append_checkpoint({"pages": 4})
        records = list(wal.replay())
        assert [r.type for r in records] == [BEGIN, PAGE, CATALOG,
                                             COMMIT, CHECKPOINT]
        assert records[0].txn_id == 7
        assert records[1].page_id == 3
        assert records[1].page_image == bytes(PAGE_SIZE)
        assert records[2].json_payload()["node_count"] == 5
        assert records[4].json_payload() == {"pages": 4}
        assert wal.torn_offset is None

    def test_page_record_validates_size(self):
        wal = WriteAheadLog(None)
        with pytest.raises(StorageError):
            wal.append_page(1, 0, b"short")

    def test_torn_tail_is_discarded_silently(self):
        wal = WriteAheadLog(None)
        wal.append_begin(1)
        wal.append_commit(1)
        intact = wal.raw_bytes()
        boundaries = wal.record_boundaries()
        assert boundaries[0] == 0 and boundaries[-1] == len(intact)
        # every proper prefix cut mid-record keeps only whole records
        wal.restore_bytes(intact[:len(intact) - 5])
        records = list(wal.replay())
        assert [r.type for r in records] == [BEGIN]
        assert wal.torn_offset == boundaries[1]

    def test_corrupt_payload_ends_replay(self):
        wal = WriteAheadLog(None)
        wal.append_begin(1)
        wal.append_commit(1)
        wal.append_begin(2)
        raw = bytearray(wal.raw_bytes())
        middle = wal.record_boundaries()[1] + 13  # inside record 2
        raw[middle] ^= 0xFF
        wal.restore_bytes(bytes(raw))
        records = list(wal.replay())
        assert [r.type for r in records] == [BEGIN]
        assert wal.torn_offset is not None

    def test_file_backed_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append_begin(1)
            wal.append_commit(1)
        with WriteAheadLog(path) as wal:
            assert [r.type for r in wal.replay()] == [BEGIN, COMMIT]
            wal.truncate(0)
            assert wal.size == 0


class TestGappedLabels:
    def test_pick_gap(self):
        assert pick_gap(100, 4) == 20
        assert pick_gap(4, 4) == 1
        assert pick_gap(3, 4) is None

    def test_relabel_preserves_nesting(self):
        document = parse_xml("<a><b><c/><d/></b><e/></a>")
        placed = relabel(document.nodes, base=1000, gap=10,
                         level_of_top=2, parent_of_top=5)
        by_tag = {node.tag: node for node in placed}
        assert by_tag["a"].parent_id == 5 and by_tag["a"].level == 2
        for tag in "bcde":
            node = by_tag[tag]
            parent = by_tag[{"b": "a", "c": "b", "d": "b",
                             "e": "a"}[tag]]
            assert node.parent_id == parent.node_id
            assert parent.start < node.start <= parent.end
            assert node.level == parent.level + 1
        starts = [node.start for node in placed]
        assert starts == sorted(starts) and starts[0] == 1000


class TestMutations:
    def test_append_document_matches_oracle(self):
        database = fresh_database()
        before = len(database.document)
        with database.transaction() as txn:
            new_root = txn.append_document(parse_xml(PERSONNEL_XML))
        assert len(database.document) == 2 * before
        assert database.document.node(new_root).tag == "company"
        oracle = Database.from_document(
            parse_xml(PERSONNEL_XML, name="oracle"))
        with oracle.transaction() as txn:
            txn.append_document(parse_xml(PERSONNEL_XML))
        for engine in ("block", "tuple"):
            assert (query_bindings(database, "//manager//employee/name",
                                   engine)
                    != set())  # non-trivial
            assert node_shape(database.document) == node_shape(
                oracle.document)

    def test_mutated_database_queries_like_rebuilt(self):
        database = fresh_database()
        with database.transaction() as txn:
            txn.append_document(parse_xml(WIDGETS_XML))
            managers = [node for node in database.document.nodes
                        if node.tag == "manager"]
            txn.delete_subtree(managers[-1].node_id)
        rebuilt = Database.from_document(
            XmlDocument(database.document.nodes, name="rebuilt"))
        for xpath in ("//manager//employee/name", "//widget/name",
                      "//manager/name"):
            for engine in ("block", "tuple"):
                assert (query_bindings(database, xpath, engine)
                        == query_bindings(rebuilt, xpath, engine)), \
                    (xpath, engine)

    def test_insert_forces_local_relabel(self):
        # dense parser labels leave no gap under <b>: inserting there
        # must relabel an enclosing subtree, not corrupt the document
        database = Database.from_document(
            parse_xml("<a><b><c/></b><d/></a>"))
        b_id = next(node.node_id for node in database.document.nodes
                    if node.tag == "b")
        with database.transaction() as txn:
            txn.insert_subtree(b_id, parse_xml("<x><y/></x>"))
        tags = [node.tag for node in database.document.nodes]
        assert tags == ["a", "b", "c", "x", "y", "d"]
        assert query_bindings(database, "//b/x") != set()

    def test_delete_root_rejected(self):
        database = fresh_database()
        with pytest.raises(TransactionError):
            with database.transaction() as txn:
                txn.delete_subtree(database.document.root.node_id)
        # the failed transaction released the writer lock
        with database.transaction() as txn:
            txn.append_document(parse_xml(WIDGETS_XML))

    def test_transaction_reuse_after_commit_rejected(self):
        database = fresh_database()
        txn = database.transactions.begin()
        txn.append_document(parse_xml(WIDGETS_XML))
        txn.commit()
        with pytest.raises(TransactionError):
            txn.append_document(parse_xml(WIDGETS_XML))

    def test_abort_discards_everything(self):
        database = fresh_database()
        before = node_shape(database.document)
        epoch = database.statistics_epoch
        txn = database.transactions.begin()
        txn.append_document(parse_xml(WIDGETS_XML))
        txn.abort()
        assert node_shape(database.document) == before
        assert database.statistics_epoch == epoch
        assert query_bindings(database, "//widget") == set()

    def test_context_manager_aborts_on_error(self):
        database = fresh_database()
        with pytest.raises(RuntimeError):
            with database.transaction() as txn:
                txn.append_document(parse_xml(WIDGETS_XML))
                raise RuntimeError("boom")
        assert query_bindings(database, "//widget") == set()
        assert database.transactions.metrics.aborted == 1

    def test_empty_commit_is_free(self):
        database = fresh_database()
        epoch = database.statistics_epoch
        with database.transaction():
            pass
        assert database.statistics_epoch == epoch
        assert database.transactions.metrics.empty_commits == 1


class TestSnapshotIsolation:
    def test_old_snapshot_survives_commit(self):
        database = fresh_database()
        snapshot = database.read_snapshot()
        with database.transaction() as txn:
            txn.append_document(parse_xml(WIDGETS_XML))
        assert len(snapshot.document) < len(database.document)
        fresh = database.read_snapshot()
        assert fresh.statistics_epoch == snapshot.statistics_epoch + 1
        # the old snapshot's store still resolves every old node
        assert {node.tag for node in snapshot.store.scan()} == {
            node.tag for node in snapshot.document.nodes}

    def test_commit_invalidates_plan_cache(self):
        database = fresh_database()
        pattern = "//manager//employee/name"
        database.query_many([pattern, pattern])
        hits_before = database.stats()["plan_cache"]["hits"]
        assert hits_before >= 1
        with database.transaction() as txn:
            txn.append_document(parse_xml(PERSONNEL_XML))
        database.query_many([pattern])
        cache = database.stats()["plan_cache"]
        assert cache["misses"] >= 2  # re-planned after the commit

    def test_single_writer_blocks_second_begin(self):
        database = fresh_database()
        txn = database.transactions.begin()
        entered = threading.Event()
        done = threading.Event()

        def second_writer():
            entered.set()
            other = database.transactions.begin()
            other.abort()
            done.set()

        thread = threading.Thread(target=second_writer, daemon=True)
        thread.start()
        entered.wait(5.0)
        assert not done.wait(0.1)  # blocked while txn holds the lock
        txn.abort()
        assert done.wait(5.0)
        thread.join(5.0)

    def test_new_tag_becomes_estimable_without_reload(self):
        database = fresh_database()
        with database.transaction() as txn:
            txn.append_document(parse_xml(WIDGETS_XML))
        result = database.query("//widget/name")
        assert len(result.execution) == 1
        assert result.optimization.estimated_cost > 0


class TestDurability:
    def test_commits_survive_reopen(self, tmp_path):
        database = create_database(tmp_path / "db", xml=PERSONNEL_XML)
        with database.transaction() as txn:
            txn.append_document(parse_xml(WIDGETS_XML))
        shape = node_shape(database.document)
        reopened = open_database(tmp_path / "db")
        recovery = reopened.transactions.last_recovery
        assert recovery.committed == [1]
        assert node_shape(reopened.document) == shape
        assert query_bindings(reopened, "//widget/name") != set()

    def test_uncommitted_work_invisible_after_reopen(self, tmp_path):
        database = create_database(tmp_path / "db", xml=PERSONNEL_XML)
        txn = database.transactions.begin()
        txn.append_document(parse_xml(WIDGETS_XML))
        # crash before commit: nothing was logged, nothing survives
        reopened = open_database(tmp_path / "db")
        assert query_bindings(reopened, "//widget") == set()
        assert reopened.transactions.last_recovery.clean

    def test_checkpoint_truncates_and_stays_reopenable(self, tmp_path):
        database = create_database(tmp_path / "db", xml=PERSONNEL_XML)
        with database.transaction() as txn:
            txn.append_document(parse_xml(WIDGETS_XML))
        logged = database.transactions.wal.size
        dropped = database.checkpoint()
        assert dropped == logged
        assert database.transactions.wal.size < logged
        reopened = open_database(tmp_path / "db")
        assert reopened.transactions.last_recovery.clean
        assert query_bindings(reopened, "//widget/name") != set()

    def test_commit_after_torn_recovery_stays_durable(self, tmp_path):
        # regression: recovery must cut the torn tail off the log —
        # appends go to the file end, so a partial frame left in the
        # middle would strand every later commit behind it
        database = create_database(tmp_path / "db", xml=PERSONNEL_XML)
        with database.transaction() as txn:
            txn.append_document(parse_xml(WIDGETS_XML))
        wal = database.transactions.wal
        wal.truncate(wal.size - 7)  # tear into the COMMIT frame
        reopened = open_database(tmp_path / "db")
        assert reopened.transactions.last_recovery.torn_offset is not None
        with reopened.transaction() as txn:
            txn.append_document(parse_xml(WIDGETS_XML))
        final = open_database(tmp_path / "db")
        recovery = final.transactions.last_recovery
        assert recovery.clean and recovery.committed == [1]
        assert query_bindings(final, "//widget/name") != set()

    def test_create_twice_rejected(self, tmp_path):
        create_database(tmp_path / "db", xml=PERSONNEL_XML)
        with pytest.raises(TransactionError):
            create_database(tmp_path / "db", xml=PERSONNEL_XML)
        with pytest.raises(TransactionError):
            open_database(tmp_path / "missing")

    def test_write_path_metrics_exported(self, tmp_path):
        database = create_database(tmp_path / "db", xml=PERSONNEL_XML)
        with database.transaction() as txn:
            txn.append_document(parse_xml(WIDGETS_XML))
        stats = database.stats()
        assert stats["write_path"]["committed"] == 1
        assert stats["write_path"]["wal_bytes_current"] > 0
        text = database.service.export_metrics("prometheus")
        assert "repro_wal_size_bytes" in text
        assert 'counter="committed"' in text
