"""Tests for streaming execution and first-result latency (Sec. 3.4)."""

import pytest

from repro.api import Database
from repro.core.pattern import Axis
from repro.core.plans import (IndexScanPlan, JoinAlgorithm, SortPlan,
                              StructuralJoinPlan)
from repro.engine.context import EngineContext
from repro.engine.executor import Executor
from repro.workloads import personnel_document


@pytest.fixture(scope="module")
def database():
    return Database.from_document(personnel_document(target_nodes=1500))


@pytest.fixture(scope="module")
def pattern(database):
    return database.compile("//manager//employee/name")


def fp_plan():
    inner = StructuralJoinPlan(
        IndexScanPlan(1), IndexScanPlan(2), 1, 2, Axis.CHILD,
        JoinAlgorithm.STACK_TREE_ANC)  # ordered by 1
    return StructuralJoinPlan(
        IndexScanPlan(0), inner, 0, 1, Axis.DESCENDANT,
        JoinAlgorithm.STACK_TREE_DESC)  # ordered by 1


def blocking_plan():
    inner = StructuralJoinPlan(
        IndexScanPlan(0), IndexScanPlan(1), 0, 1, Axis.DESCENDANT,
        JoinAlgorithm.STACK_TREE_DESC)  # ordered by 1
    joined = StructuralJoinPlan(
        inner, IndexScanPlan(2), 1, 2, Axis.CHILD,
        JoinAlgorithm.STACK_TREE_DESC)  # ordered by 2
    return SortPlan(joined, 0)  # top-level blocking sort


class TestTimeToFirst:
    def test_counts_and_ordering(self, database, pattern):
        executor = Executor(
            EngineContext(database.index, database.store,
                          database.document), pattern)
        timing = executor.time_to_first(fp_plan(), results=5)
        assert timing.first_count == 5
        assert timing.total_count > 5
        assert 0 < timing.first_seconds <= timing.total_seconds

    def test_pipelined_beats_blocking_to_first_tuple(self, database,
                                                     pattern):
        executor = Executor(
            EngineContext(database.index, database.store,
                          database.document), pattern)
        pipelined = executor.time_to_first(fp_plan())
        blocked = executor.time_to_first(blocking_plan())
        assert pipelined.total_count == blocked.total_count
        # the blocking plan cannot emit anything before its sort has
        # consumed the entire input
        assert blocked.first_seconds > 0.5 * blocked.total_seconds
        # the pipelined plan's first tuple arrives early in its run
        assert pipelined.first_seconds < 0.7 * pipelined.total_seconds
        assert pipelined.first_seconds < blocked.first_seconds

    def test_fewer_results_than_requested(self, database):
        sparse = database.compile("//department/phone")
        executor = Executor(
            EngineContext(database.index, database.store,
                          database.document), sparse)
        plan = StructuralJoinPlan(
            IndexScanPlan(0), IndexScanPlan(1), 0, 1, Axis.CHILD,
            JoinAlgorithm.STACK_TREE_DESC)
        timing = executor.time_to_first(plan, results=10**9)
        assert timing.first_count == timing.total_count

    def test_database_facade(self, database, pattern):
        timing = database.time_to_first(pattern, algorithm="FP",
                                        results=3)
        assert timing.first_count == 3
        assert timing.first_seconds < timing.total_seconds
