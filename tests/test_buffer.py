"""Unit tests for the LRU buffer pool."""

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk


@pytest.fixture
def disk():
    return InMemoryDisk()


def make_pages(disk, count):
    ids = []
    for index in range(count):
        page_id = disk.allocate()
        from repro.storage.pages import Page

        page = Page(page_id)
        page.insert(f"page-{index}".encode())
        disk.write_page(page)
        ids.append(page_id)
    return ids


class TestBufferPool:
    def test_fetch_reads_through(self, disk):
        (page_id,) = make_pages(disk, 1)
        pool = BufferPool(disk, capacity=2)
        page = pool.fetch(page_id)
        assert page.records() == [b"page-0"]
        assert pool.stats.misses == 1

    def test_hit_on_second_fetch(self, disk):
        (page_id,) = make_pages(disk, 1)
        pool = BufferPool(disk, capacity=2)
        pool.fetch(page_id)
        pool.unpin(page_id)
        pool.fetch(page_id)
        assert pool.stats.hits == 1
        assert pool.stats.hit_rate == 0.5
        assert disk.stats.reads == 1

    def test_lru_eviction_order(self, disk):
        ids = make_pages(disk, 3)
        pool = BufferPool(disk, capacity=2)
        pool.fetch(ids[0]); pool.unpin(ids[0])
        pool.fetch(ids[1]); pool.unpin(ids[1])
        pool.fetch(ids[0]); pool.unpin(ids[0])  # refresh 0
        pool.fetch(ids[2]); pool.unpin(ids[2])  # evicts 1, not 0
        assert pool.stats.evictions == 1
        pool.fetch(ids[0])
        assert pool.stats.hits == 2  # page 0 survived

    def test_pinned_pages_not_evicted(self, disk):
        ids = make_pages(disk, 3)
        pool = BufferPool(disk, capacity=2)
        pool.fetch(ids[0])  # stays pinned
        pool.fetch(ids[1]); pool.unpin(ids[1])
        pool.fetch(ids[2]); pool.unpin(ids[2])  # must evict 1
        assert ids[0] in pool.pinned_pages()
        pool.fetch(ids[0])
        assert pool.stats.hits == 1

    def test_all_pinned_raises(self, disk):
        ids = make_pages(disk, 3)
        pool = BufferPool(disk, capacity=2)
        pool.fetch(ids[0])
        pool.fetch(ids[1])
        with pytest.raises(BufferPoolError, match="pinned"):
            pool.fetch(ids[2])

    def test_dirty_page_written_back_on_eviction(self, disk):
        ids = make_pages(disk, 2)
        pool = BufferPool(disk, capacity=1)
        page = pool.fetch(ids[0])
        page.insert(b"extra")
        pool.unpin(ids[0], dirty=True)
        pool.fetch(ids[1])  # evicts dirty page 0
        assert disk.read_page(ids[0]).records() == [b"page-0", b"extra"]

    def test_flush_writes_dirty_pages(self, disk):
        (page_id,) = make_pages(disk, 1)
        pool = BufferPool(disk, capacity=2)
        page = pool.fetch(page_id)
        page.insert(b"mutation")
        pool.unpin(page_id, dirty=True)
        pool.flush()
        assert disk.read_page(page_id).records() == [b"page-0", b"mutation"]

    def test_new_page_is_pinned_and_dirty(self, disk):
        pool = BufferPool(disk, capacity=2)
        page = pool.new_page()
        assert page.dirty
        assert page.page_id in pool.pinned_pages()

    def test_unpin_without_fetch_rejected(self, disk):
        make_pages(disk, 1)
        pool = BufferPool(disk, capacity=2)
        with pytest.raises(BufferPoolError):
            pool.unpin(0)

    def test_double_unpin_rejected(self, disk):
        (page_id,) = make_pages(disk, 1)
        pool = BufferPool(disk, capacity=2)
        pool.fetch(page_id)
        pool.unpin(page_id)
        with pytest.raises(BufferPoolError):
            pool.unpin(page_id)

    def test_clear_drops_unpinned(self, disk):
        ids = make_pages(disk, 2)
        pool = BufferPool(disk, capacity=4)
        pool.fetch(ids[0])
        pool.fetch(ids[1]); pool.unpin(ids[1])
        pool.clear()
        assert len(pool) == 1

    def test_capacity_validation(self, disk):
        with pytest.raises(BufferPoolError):
            BufferPool(disk, capacity=0)


class FlakyDisk(InMemoryDisk):
    """Disk whose next N write_page calls raise (evict-path injection)."""

    def __init__(self):
        super().__init__()
        self.failures = 0

    def write_page(self, page):
        if self.failures > 0:
            self.failures -= 1
            raise OSError("injected write failure")
        super().write_page(page)


class TestEvictionExceptionSafety:
    def test_failed_writeback_keeps_dirty_page(self):
        disk = FlakyDisk()
        ids = make_pages(disk, 2)
        pool = BufferPool(disk, capacity=1)
        page = pool.fetch(ids[0])
        page.insert(b"precious")
        pool.unpin(ids[0], dirty=True)
        disk.failures = 1
        # evicting the dirty victim fails mid-writeback: the miss must
        # surface the error but the dirty page must stay in the pool
        with pytest.raises(OSError):
            pool.fetch(ids[1])
        assert len(pool) == 1
        assert pool.stats.evictions == 0
        pool.check_invariants()
        # once the disk heals, nothing was lost
        refetched = pool.fetch(ids[0])
        assert b"precious" in refetched.records()
        pool.unpin(ids[0])
        pool.fetch(ids[1])
        assert disk.read_page(ids[0]).records() == [b"page-0",
                                                    b"precious"]


class TestFetchView:
    def test_dirty_resident_page_served_from_pool(self, disk):
        """A view must show dirty in-pool bytes, not stale disk bytes."""
        from repro.storage.pages import Page

        page_id = disk.allocate()
        disk.write_page(Page(page_id))
        pool = BufferPool(disk, capacity=4)
        page = pool.fetch(page_id)
        page.insert(b"unflushed edit")
        pool.unpin(page_id, dirty=True)
        view = pool.fetch_view(page_id)
        assert bytes(view) == page.to_bytes()
        assert bytes(view) != bytes(disk.read_view(page_id))
        assert pool.stats.view_misses == 0  # served as a hit

    def test_nonresident_page_served_zero_copy(self, disk):
        from repro.storage.pages import Page

        page_id = disk.allocate()
        page = Page(page_id)
        page.insert(b"on disk")
        disk.write_page(page)
        pool = BufferPool(disk, capacity=2)
        view = pool.fetch_view(page_id)
        assert bytes(view) == page.to_bytes()
        assert pool.stats.view_misses == 1
        # the view path must not populate a frame (no eviction
        # pressure from read-only scans)
        assert len(pool) == 0

    def test_view_falls_back_without_disk_support(self):
        from repro.storage.disk import DiskManager
        from repro.storage.pages import Page

        class NoViewDisk(InMemoryDisk):
            def read_view(self, page_id):
                return DiskManager.read_view(self, page_id)

        disk = NoViewDisk()
        page_id = disk.allocate()
        page = Page(page_id)
        page.insert(b"fallback")
        disk.write_page(page)
        pool = BufferPool(disk, capacity=2)
        view = pool.fetch_view(page_id)
        assert bytes(view) == page.to_bytes()
        assert pool.stats.view_misses == 0
        assert len(pool) == 1  # fallback caches the frame
