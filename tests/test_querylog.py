"""Query-log round-trip, rotation, sampling and wiring tests."""

import json
import threading

import pytest

from repro.api import Database
from repro.errors import ReproError
from repro.obs.querylog import (QueryLog, build_record, read_query_log,
                                signature_digest)

DOC = """
<company>
  <manager><name>ada</name>
    <employee><name>bob</name></employee>
    <employee><name>cid</name></employee>
  </manager>
  <manager><name>eve</name>
    <employee><name>dan</name></employee>
  </manager>
</company>
"""


@pytest.fixture()
def database():
    return Database.from_xml(DOC)


def _sample_records(n):
    return [{"query": f"//q{i}", "rows": i, "wall_seconds": i * 0.5,
             "counters": {"index_items": i}} for i in range(n)]


# -- file round-trip --------------------------------------------------------

def test_roundtrip_preserves_every_field(tmp_path):
    path = tmp_path / "log.jsonl"
    records = _sample_records(5)
    with QueryLog(path) as log:
        for record in records:
            log.record(record)
        log.flush()
        assert log.recorded == 5
        assert log.written == 5
        assert log.dropped == 0
    scan = read_query_log(path)
    assert scan.records == records
    assert scan.skipped == 0
    assert scan.files == [str(path)]


def test_rotation_keeps_chronology_and_bounds_files(tmp_path):
    path = tmp_path / "log.jsonl"
    # each record is well over max_bytes, so every append rotates
    with QueryLog(path, max_bytes=64, backups=2) as log:
        for i in range(5):
            log.record({"query": f"//q{i}", "pad": "x" * 80})
        log.flush()
    # every append exceeded max_bytes, so each rotated immediately and
    # only the newest `backups` generations survive
    survivors = sorted(p.name for p in tmp_path.iterdir())
    assert survivors == ["log.jsonl.1", "log.jsonl.2"]
    scan = read_query_log(path)
    # oldest rotations were deleted; the rest read back oldest-first
    assert [r["query"] for r in scan.records] == ["//q3", "//q4"]
    assert scan.files == [str(path) + ".2", str(path) + ".1"]


def test_malformed_lines_are_skipped_and_counted(tmp_path):
    path = tmp_path / "log.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"query": "//a"}) + "\n")
        handle.write("{torn write\n")
        handle.write("[1, 2, 3]\n")  # valid JSON, not an object
        handle.write("\n")  # blank lines are not corruption
        handle.write(json.dumps({"query": "//b"}) + "\n")
    scan = read_query_log(path)
    assert [r["query"] for r in scan.records] == ["//a", "//b"]
    assert scan.skipped == 2


def test_memory_mode_needs_no_files():
    with QueryLog(None, memory_capacity=3) as log:
        for record in _sample_records(5):
            log.record(record)
        kept = log.records()
    assert [r["rows"] for r in kept] == [2, 3, 4]  # bounded, newest win


def test_record_after_close_is_ignored(tmp_path):
    log = QueryLog(tmp_path / "log.jsonl")
    log.close()
    log.record({"query": "//late"})
    assert log.recorded == 0
    log.close()  # idempotent


def test_constructor_validation(tmp_path):
    with pytest.raises(ReproError):
        QueryLog(tmp_path / "l", max_bytes=0)
    with pytest.raises(ReproError):
        QueryLog(tmp_path / "l", backups=0)
    with pytest.raises(ReproError):
        QueryLog(tmp_path / "l", trace_sample=-1)


# -- trace sampling ---------------------------------------------------------

def test_want_span_sampling():
    log = QueryLog(None, trace_sample=3)
    assert [log.want_span() for _ in range(6)] == [
        False, False, True, False, False, True]
    always = QueryLog(None, trace_sample=1)
    assert all(always.want_span() for _ in range(4))
    never = QueryLog(None, trace_sample=0)
    assert not any(never.want_span() for _ in range(4))


def test_record_is_thread_safe(tmp_path):
    path = tmp_path / "log.jsonl"
    with QueryLog(path, queue_capacity=4096) as log:
        def hammer(base):
            for i in range(50):
                log.record({"n": base + i})

        threads = [threading.Thread(target=hammer, args=(t * 50,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.flush()
        assert log.recorded == 200
        assert log.written + log.dropped == 200
    seen = {r["n"] for r in read_query_log(path).records}
    assert len(seen) == log.written


# -- record building and Database wiring ------------------------------------

def test_build_record_fields(database):
    pattern = database.compile("//manager//employee/name")
    plan = database.optimize(pattern).plan
    execution = database.execute(plan, pattern, spans=True)
    record = build_record(pattern, plan, execution, algorithm="DPP",
                         engine="block", statistics_epoch=7,
                         factors=database.cost_factors)
    assert record["signature"] == signature_digest(pattern)
    assert record["algorithm"] == "DPP"
    assert record["engine"] == "block"
    assert record["statistics_epoch"] == 7
    assert record["rows"] == len(execution)
    assert record["plan"] == plan.signature()
    assert record["plan_digest"]
    assert record["factors"] == database.cost_factors.to_dict()
    assert record["counters"]["index_items"] > 0
    # traced run carries per-operator calibration inputs
    operators = record["operators"]
    assert operators[0]["estimated_rows"] >= 0
    assert any(entry["counters"]["index_items"] > 0
               for entry in operators)
    # the record must be JSON-serializable as written
    json.loads(json.dumps(record))


def test_signature_digest_is_renumbering_invariant(database):
    first = database.compile("//manager//employee/name")
    second = database.compile("//manager//employee/name")
    assert signature_digest(first) == signature_digest(second)
    other = database.compile("//manager/name")
    assert signature_digest(first) != signature_digest(other)


def test_database_logs_every_execution(database):
    log = QueryLog(None, trace_sample=2)
    database.attach_query_log(log)
    for _ in range(4):
        database.query("//manager/employee", algorithm="DPP")
    records = log.records()
    assert len(records) == 4
    assert all(r["algorithm"] == "DPP" for r in records)
    traced = [bool(r.get("operators")) for r in records]
    assert traced == [False, True, False, True]
    database.attach_query_log(None)
    database.query("//manager/employee")
    assert len(log.records()) == 4


def test_service_queries_are_logged(database):
    log = QueryLog(None)
    database.attach_query_log(log)
    database.query_many(["//manager/name"] * 3, algorithm="DPP'")
    records = log.records()
    assert len(records) == 3
    assert {r["algorithm"] for r in records} == {"DPP'"}
    assert {r["query"] for r in records} == {"//manager/name"}
