"""Unit tests for the cardinality estimators."""

import pytest

from repro.errors import EstimationError
from repro.core.pattern import PatternNode, Predicate, QueryPattern
from repro.estimation.estimator import (ExactEstimator,
                                        PatternCardinalities,
                                        PositionalEstimator,
                                        build_tag_statistics)


@pytest.fixture
def exact(small_document):
    return ExactEstimator(small_document)


@pytest.fixture
def positional(small_document):
    return PositionalEstimator.from_document(small_document)


@pytest.fixture
def pattern():
    return QueryPattern.build({
        "nodes": ["manager", "employee", "name"],
        "edges": [(0, 1, "//"), (1, 2, "/")],
    })


class TestTagStatistics:
    def test_counts(self, small_document):
        stats = build_tag_statistics(small_document)
        assert stats["manager"].count == 3
        assert stats["*"].count == len(small_document)

    def test_distinct_values(self, small_document):
        stats = build_tag_statistics(small_document)
        assert stats["name"].distinct_texts > 1
        assert stats["manager"].distinct_attribute_values["id"] == 3


class TestExactEstimator:
    def test_node_cardinality(self, exact):
        assert exact.node_cardinality(PatternNode(0, "manager")) == 3
        assert exact.node_cardinality(PatternNode(0, "nothing")) == 0

    def test_node_cardinality_with_predicate(self, exact):
        node = PatternNode(0, "name", (
            Predicate(kind="text", op="=", value="Ada Adams"),))
        assert exact.node_cardinality(node) == 1

    def test_wildcard(self, exact, small_document):
        assert exact.node_cardinality(PatternNode(0, "*")) == len(
            small_document)

    def test_edge_cardinality_matches_truth(self, exact, pattern,
                                            small_document):
        # manager // employee: count by brute force
        truth = sum(
            1 for m in small_document.nodes_with_tag("manager")
            for e in small_document.nodes_with_tag("employee")
            if m.is_ancestor_of(e))
        assert exact.edge_cardinality(pattern, 0, 1) == truth

    def test_edge_cardinality_parent_child(self, exact, pattern,
                                           small_document):
        truth = sum(
            1 for e in small_document.nodes_with_tag("employee")
            for n in small_document.nodes_with_tag("name")
            if e.is_parent_of(n))
        assert exact.edge_cardinality(pattern, 1, 2) == truth

    def test_edge_must_exist(self, exact, pattern):
        with pytest.raises(EstimationError):
            exact.edge_cardinality(pattern, 0, 2)
        with pytest.raises(EstimationError):
            exact.edge_cardinality(pattern, 1, 0)  # inverted

    def test_cluster_cardinality_single_edge_is_exact(self, exact,
                                                      pattern):
        pair = exact.edge_cardinality(pattern, 0, 1)
        assert exact.cluster_cardinality(
            pattern, frozenset({0, 1})) == pytest.approx(pair)

    def test_cluster_requires_connected(self, exact, pattern):
        with pytest.raises(EstimationError):
            exact.cluster_cardinality(pattern, frozenset({0, 2}))
        with pytest.raises(EstimationError):
            exact.cluster_cardinality(pattern, frozenset())

    def test_full_cluster_close_to_truth(self, exact, pattern,
                                         small_document):
        from repro.engine.nestedloop import naive_pattern_matches

        truth = len(naive_pattern_matches(small_document, pattern))
        estimate = exact.cluster_cardinality(pattern, frozenset({0, 1, 2}))
        # independence combination: right magnitude, not exact
        assert truth / 4 <= estimate <= truth * 4


class TestPositionalEstimator:
    def test_node_counts_match_exact(self, positional, exact):
        for tag in ("manager", "employee", "name", "*"):
            node = PatternNode(0, tag)
            assert positional.node_candidates(node) == \
                exact.node_candidates(node)

    def test_edge_estimates_right_magnitude(self, positional, exact,
                                            pattern):
        truth = exact.edge_cardinality(pattern, 0, 1)
        estimate = positional.edge_cardinality(pattern, 0, 1)
        assert truth / 4 <= estimate <= truth * 4

    def test_predicate_selectivity_reduces_cardinality(self, positional):
        plain = positional.node_cardinality(PatternNode(0, "name"))
        filtered = positional.node_cardinality(PatternNode(0, "name", (
            Predicate(kind="text", op="=", value="Ada Adams"),)))
        assert 0 < filtered < plain

    def test_range_predicate_selectivity(self, positional):
        filtered = positional.node_cardinality(PatternNode(0, "name", (
            Predicate(kind="text", op="<", value="M"),)))
        plain = positional.node_cardinality(PatternNode(0, "name"))
        assert filtered == pytest.approx(plain / 3)

    def test_edge_estimates_cached(self, positional, pattern):
        first = positional.edge_cardinality(pattern, 0, 1)
        assert positional.edge_cardinality(pattern, 0, 1) == first
        assert len(positional._edge_cache) == 1

    def test_missing_tag_estimates_zero(self, positional):
        pattern = QueryPattern.build({
            "nodes": ["manager", "unicorn"], "edges": [(0, 1, "//")]})
        assert positional.node_cardinality(PatternNode(0, "unicorn")) == 0
        assert positional.edge_cardinality(pattern, 0, 1) == 0.0


class TestPatternCardinalities:
    def test_caching(self, exact, pattern):
        cards = PatternCardinalities(pattern, exact)
        assert cards.node(0) == cards.node(0) == 3
        cluster = frozenset({0, 1})
        assert cards.cluster(cluster) == cards.cluster(cluster)
        assert cards.cluster(frozenset({2})) == cards.node(2)

    def test_candidates_vs_filtered(self, small_document, pattern):
        exact = ExactEstimator(small_document)
        filtered_pattern = QueryPattern.build({
            "nodes": [("name", [Predicate(kind="text", op="=",
                                          value="Ada Adams")])],
            "edges": [],
        })
        cards = PatternCardinalities(filtered_pattern, exact)
        assert cards.candidates(0) == small_document.tag_count("name")
        assert cards.node(0) == 1


class TestSamplingEstimator:
    def test_exact_when_sample_covers_all(self, small_document, exact,
                                          pattern):
        from repro.estimation.sampling import SamplingEstimator

        sampler = SamplingEstimator(small_document, sample_size=10**6)
        for parent, child in ((0, 1), (1, 2)):
            assert sampler.edge_cardinality(
                pattern, parent, child) == pytest.approx(
                    exact.edge_cardinality(pattern, parent, child))

    def test_sampled_estimate_close_on_generated_data(self, pattern):
        from repro.estimation.sampling import SamplingEstimator
        from repro.workloads import personnel_document

        document = personnel_document(target_nodes=1500, seed=3)
        exact = ExactEstimator(document)
        sampler = SamplingEstimator(document, sample_size=32)
        truth = exact.edge_cardinality(pattern, 0, 1)
        estimate = sampler.edge_cardinality(pattern, 0, 1)
        assert truth > 0
        assert truth / 2 <= estimate <= truth * 2

    def test_usually_beats_histograms(self, pattern):
        """On recursive data the sampler should not be (much) worse
        than the 16x16 positional histogram."""
        from repro.estimation.sampling import SamplingEstimator
        from repro.workloads import personnel_document

        document = personnel_document(target_nodes=1500, seed=3)
        exact = ExactEstimator(document)
        histogram = PositionalEstimator.from_document(document)
        sampler = SamplingEstimator(document, sample_size=64)
        truth = exact.edge_cardinality(pattern, 0, 1)
        histogram_error = abs(
            histogram.edge_cardinality(pattern, 0, 1) - truth)
        sampling_error = abs(
            sampler.edge_cardinality(pattern, 0, 1) - truth)
        assert sampling_error <= histogram_error * 1.5

    def test_node_cardinalities(self, small_document):
        from repro.core.pattern import PatternNode
        from repro.estimation.sampling import SamplingEstimator

        sampler = SamplingEstimator(small_document)
        assert sampler.node_cardinality(PatternNode(0, "manager")) == 3
        assert sampler.node_cardinality(PatternNode(0, "missing")) == 0

    def test_optimizers_accept_sampler(self, small_document, pattern):
        from repro.core.dpp import DPPOptimizer
        from repro.estimation.sampling import SamplingEstimator

        result = DPPOptimizer().optimize(
            pattern, SamplingEstimator(small_document))
        assert result.estimated_cost > 0

    def test_invalid_sample_size(self, small_document):
        from repro.estimation.sampling import SamplingEstimator

        with pytest.raises(EstimationError):
            SamplingEstimator(small_document, sample_size=0)
