"""Unit tests for region encodings (repro.document.node)."""

import pytest

from repro.document.node import NodeRecord, Region


class TestRegion:
    def test_basic_construction(self):
        region = Region(start=3, end=7, level=2)
        assert region.start == 3
        assert region.end == 7
        assert region.level == 2

    def test_invalid_regions_rejected(self):
        with pytest.raises(ValueError):
            Region(start=-1, end=0, level=0)
        with pytest.raises(ValueError):
            Region(start=5, end=4, level=0)
        with pytest.raises(ValueError):
            Region(start=0, end=0, level=-1)

    def test_contains_strict_nesting(self):
        outer = Region(0, 10, 0)
        inner = Region(1, 5, 1)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_contains_is_irreflexive(self):
        region = Region(2, 6, 1)
        assert not region.contains(region)

    def test_contains_boundary_end_inclusive(self):
        outer = Region(0, 5, 0)
        last_child = Region(5, 5, 1)
        assert outer.contains(last_child)

    def test_disjoint_regions(self):
        left = Region(0, 3, 1)
        right = Region(4, 8, 1)
        assert not left.contains(right)
        assert not right.contains(left)
        assert left.precedes(right)
        assert not right.precedes(left)

    def test_parent_of_requires_adjacent_level(self):
        outer = Region(0, 10, 0)
        child = Region(1, 4, 1)
        grandchild = Region(2, 3, 2)
        assert outer.is_parent_of(child)
        assert not outer.is_parent_of(grandchild)
        assert outer.is_ancestor_of(grandchild)

    def test_descendant_is_inverse_of_ancestor(self):
        outer = Region(0, 9, 0)
        inner = Region(4, 6, 3)
        assert inner.is_descendant_of(outer)
        assert not outer.is_descendant_of(inner)

    def test_subtree_size(self):
        assert Region(2, 2, 1).subtree_size == 1
        assert Region(2, 6, 1).subtree_size == 5

    def test_total_order_is_document_order(self):
        regions = [Region(4, 6, 2), Region(0, 9, 0), Region(1, 3, 1)]
        assert sorted(regions) == [Region(0, 9, 0), Region(1, 3, 1),
                                   Region(4, 6, 2)]

    def test_hashable_and_equal(self):
        assert Region(1, 2, 1) == Region(1, 2, 1)
        assert len({Region(1, 2, 1), Region(1, 2, 1)}) == 1


class TestNodeRecord:
    def test_node_id_must_match_start(self):
        with pytest.raises(ValueError):
            NodeRecord(node_id=5, tag="a", region=Region(4, 6, 1))

    def test_empty_tag_rejected(self):
        with pytest.raises(ValueError):
            NodeRecord(node_id=0, tag="", region=Region(0, 0, 0))

    def test_accessors(self):
        node = NodeRecord(node_id=2, tag="x", region=Region(2, 5, 1),
                          parent_id=0, text="hello",
                          attributes={"k": "v"})
        assert (node.start, node.end, node.level) == (2, 5, 1)
        assert node.attribute("k") == "v"
        assert node.attribute("missing", "dflt") == "dflt"
        assert node.sort_key() == (2, 5)

    def test_structural_tests_delegate_to_region(self):
        parent = NodeRecord(node_id=0, tag="a", region=Region(0, 3, 0))
        child = NodeRecord(node_id=1, tag="b", region=Region(1, 2, 1),
                           parent_id=0)
        assert parent.is_ancestor_of(child)
        assert parent.is_parent_of(child)
        assert not child.is_ancestor_of(parent)
