"""Calibration, runtime factor swap, plan auditing and quantiles."""

import random

import pytest

from repro.api import Database
from repro.core.cost import CostFactors
from repro.errors import ReproError
from repro.obs.audit import audit_records
from repro.obs.calibrate import (calibrate_records, cost_q_error,
                                 evaluate_factors, fit_cost_factors,
                                 nonnegative_least_squares,
                                 samples_from_records, split_holdout,
                                 TraceSample)
from repro.obs.querylog import QueryLog
from repro.obs.registry import Histogram, MetricsRegistry, SampleReservoir

DOC = """
<company>
  <manager><name>ada</name>
    <department><name>dev</name></department>
    <employee><name>bob</name></employee>
    <employee><name>cid</name></employee>
  </manager>
  <manager><name>eve</name>
    <employee><name>dan</name></employee>
  </manager>
</company>
"""

TRUE = CostFactors(f_index=2e-6, f_sort=5e-7, f_io=3e-6, f_stack=8e-7)


def _synthetic_records(n, factors=TRUE, noise=0.0, seed=7):
    """Records whose operator timings follow known factors exactly
    (plus optional multiplicative noise)."""
    rng = random.Random(seed)
    records = []
    for i in range(n):
        operators = []
        for counters in (
                {"index_items": 100 + 70 * (i % 11)},
                {"sort_units": 50 + 30 * ((i * 3) % 13)},
                {"buffered_results": 20 + 10 * ((i * 5) % 7)},
                {"stack_tuple_ops": 40 + 25 * ((i * 7) % 5)},
        ):
            seconds = (factors.f_index * counters.get("index_items", 0)
                       + factors.f_sort * counters.get("sort_units", 0)
                       + factors.f_io * 2 * counters.get(
                           "buffered_results", 0)
                       + factors.f_stack * 2 * counters.get(
                           "stack_tuple_ops", 0))
            if noise:
                seconds *= 1.0 + rng.uniform(-noise, noise)
            operators.append({"operator": "synthetic",
                              "counters": counters,
                              "self_seconds": seconds})
        records.append({"query": f"//q{i}", "operators": operators})
    return records


# -- NNLS and fitting --------------------------------------------------------

def test_nnls_recovers_exact_solution():
    rows = [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]
    targets = [2.0, 3.0, 5.0]
    beta, rss, active = nonnegative_least_squares(rows, targets)
    assert beta == pytest.approx([2.0, 3.0])
    assert rss == pytest.approx(0.0, abs=1e-18)
    assert active == (0, 1)


def test_nnls_clamps_negative_components():
    # unconstrained least squares would fit column 1 negative
    rows = [[1.0, 1.0], [1.0, 2.0], [1.0, 3.0]]
    targets = [3.0, 2.0, 1.0]
    beta, _, _ = nonnegative_least_squares(rows, targets)
    assert all(value >= 0.0 for value in beta)
    assert beta[1] == 0.0


def test_fit_recovers_known_factors_exactly():
    samples = samples_from_records(_synthetic_records(30))
    result = fit_cost_factors(samples)
    assert result.factors.f_index == pytest.approx(TRUE.f_index, rel=1e-9)
    assert result.factors.f_sort == pytest.approx(TRUE.f_sort, rel=1e-9)
    assert result.factors.f_io == pytest.approx(TRUE.f_io, rel=1e-9)
    assert result.factors.f_stack == pytest.approx(TRUE.f_stack, rel=1e-9)
    assert result.r2 == pytest.approx(1.0)


def test_fit_recovers_noisy_factors_within_5_percent():
    samples = samples_from_records(
        _synthetic_records(200, noise=0.05, seed=3))
    result = fit_cost_factors(samples)
    for name in ("f_index", "f_sort", "f_io", "f_stack"):
        assert getattr(result.factors, name) == pytest.approx(
            getattr(TRUE, name), rel=0.05), name


def test_uncovered_factor_fits_zero_with_no_stderr():
    records = _synthetic_records(20)
    for record in records:  # strip every sort operator
        record["operators"] = [
            entry for entry in record["operators"]
            if "sort_units" not in entry["counters"]]
    result = fit_cost_factors(samples_from_records(records))
    sort_fit = next(f for f in result.fits if f.name == "f_sort")
    assert sort_fit.value == 0.0
    assert sort_fit.coverage == 0
    assert sort_fit.relative_error is None


def test_fit_refuses_empty_input():
    with pytest.raises(ReproError):
        fit_cost_factors([])
    with pytest.raises(ReproError):
        calibrate_records([{"query": "//a"}])  # no counters anywhere


def test_split_holdout_is_deterministic_and_disjoint():
    samples = [TraceSample((float(i),), float(i)) for i in range(10)]
    train, held = split_holdout(samples, holdout_every=5)
    assert len(train) == 8 and len(held) == 2
    assert set(train).isdisjoint(held)
    assert split_holdout(samples, holdout_every=1) == (samples, samples)


def test_calibrate_records_beats_defaults_on_holdout():
    result = calibrate_records(_synthetic_records(100, noise=0.02))
    assert result.holdout["learned_q_error"] < result.holdout[
        "default_q_error"]
    assert result.improved
    assert "holdout" in result.render() or "samples" in result.render()


def test_cost_q_error_floor():
    assert cost_q_error(2.0, 1.0) == pytest.approx(2.0)
    assert cost_q_error(0.0, 0.0) == pytest.approx(1.0)
    assert cost_q_error(1e-4, 1e-2) == pytest.approx(100.0)


def test_evaluate_factors_perfect_model_scores_one():
    samples = samples_from_records(_synthetic_records(10))
    assert evaluate_factors(TRUE, samples) == pytest.approx(1.0)
    assert evaluate_factors(TRUE, []) == 1.0


# -- runtime factor swap -----------------------------------------------------

def test_set_cost_factors_bumps_epoch_and_invalidates_cache():
    database = Database.from_xml(DOC)
    service = database.service
    database.query_many(["//manager/employee"] * 2)
    assert len(service.cache) >= 1
    epoch = database.statistics_epoch
    learned = CostFactors(f_index=1e-6, f_sort=1e-7, f_io=2e-6,
                          f_stack=3e-7)
    database.set_cost_factors(learned)
    assert database.statistics_epoch == epoch + 1
    assert database.cost_factors == learned
    assert database.cost_model.factors == learned
    assert len(service.cache) == 0
    # the service keeps serving (and merging metrics) after the swap
    results = database.query_many(["//manager/employee"] * 2)
    assert all(len(r.execution) == 3 for r in results)
    # no-op swap must not churn the epoch
    database.set_cost_factors(learned)
    assert database.statistics_epoch == epoch + 1


def test_calibration_result_apply():
    database = Database.from_xml(DOC)
    result = calibrate_records(_synthetic_records(50))
    result.apply(database)
    assert database.cost_factors == result.factors


# -- plan auditing -----------------------------------------------------------

def _logged_database():
    database = Database.from_xml(DOC)
    log = QueryLog(None, trace_sample=1)
    database.attach_query_log(log)
    for query in ("//manager//employee/name", "//manager/name",
                  "//manager//employee/name"):
        database.query(query, algorithm="DPP")
    database.attach_query_log(None)
    return database, log.records()


def test_audit_unchanged_corpus_reports_zero_flips():
    database, records = _logged_database()
    registry = MetricsRegistry()
    report = audit_records(database, records, registry=registry)
    assert report.records_seen == 3
    assert report.queries_replayed == 2  # latest record per query
    assert report.plan_flips == 0
    assert report.skipped == 0
    assert registry.gauge("repro_plan_flips_total").value() == 0
    assert registry.gauge("repro_plan_audit_queries").value() == 2
    assert report.qerror_by_operator  # logged traces were aggregated
    text = report.render()
    assert "0 plan flip(s)" in text


def test_audit_detects_tampered_plan_as_flip():
    database, records = _logged_database()
    records[-1]["plan_digest"] = "not-the-plan-anymore"
    report = audit_records(database, records)
    assert report.plan_flips == 1
    flipped = [entry for entry in report.entries if entry.flipped]
    assert flipped[0].query == "//manager//employee/name"
    assert "FLIP" in report.render()


def test_audit_skips_unparseable_queries():
    database, records = _logged_database()
    records.append({"query": "//***not-xpath***("})
    report = audit_records(database, records)
    assert report.skipped == 1
    assert report.plan_flips == 0


def test_audit_algorithm_override():
    database, records = _logged_database()
    report = audit_records(database, records, algorithm="FP")
    assert {entry.algorithm for entry in report.entries} == {"FP"}


# -- histogram quantiles -----------------------------------------------------

def test_histogram_quantile_matches_reservoir_on_same_stream():
    registry = MetricsRegistry()
    histogram = registry.histogram("repro_test_latency")
    reservoir = SampleReservoir(capacity=8192, seed=0)
    rng = random.Random(11)
    for _ in range(5000):
        value = rng.lognormvariate(-5.0, 1.0)  # latency-ish spread
        histogram.observe(value)
        reservoir.add(value)
    exact = sorted(reservoir.values())
    for q in (0.5, 0.9, 0.95, 0.99):
        rank = max(1, round(q * len(exact))) - 1
        true_value = exact[rank]
        estimate = histogram.quantile(q)
        # the interpolated estimate can only be off by bucket width:
        # it must land in the same bucket as the exact quantile
        assert estimate <= 2.5 * true_value + 1e-12
        assert estimate >= true_value / 2.5 - 1e-12


def test_histogram_quantile_interpolates_within_bucket():
    registry = MetricsRegistry()
    histogram = registry.histogram("repro_test_uniform",
                                   buckets=(1.0, 2.0, 4.0))
    for value in (1.2, 1.4, 1.6, 1.8):  # all inside (1, 2]
        histogram.observe(value)
    assert histogram.quantile(0.0) == pytest.approx(1.25)
    assert histogram.quantile(0.5) == pytest.approx(1.5)
    assert histogram.quantile(1.0) == pytest.approx(2.0)


def test_histogram_quantile_edge_cases():
    registry = MetricsRegistry()
    histogram = registry.histogram("repro_test_edges",
                                   buckets=(1.0, 2.0))
    assert histogram.quantile(0.5) == 0.0  # no observations
    histogram.observe(10.0)  # beyond the last finite bucket
    assert histogram.quantile(0.99) == 2.0  # clamped to last bound
    with pytest.raises(ValueError):
        histogram.quantile(1.5)
    with pytest.raises(ValueError):
        histogram.quantile(-0.1)


def test_histogram_quantile_respects_labels():
    registry = MetricsRegistry()
    histogram = registry.histogram("repro_test_labelled",
                                   buckets=(1.0, 2.0, 4.0))
    histogram.observe(0.5, engine="block")
    histogram.observe(3.0, engine="tuple")
    assert histogram.quantile(0.5, engine="block") <= 1.0
    assert histogram.quantile(0.5, engine="tuple") > 2.0
