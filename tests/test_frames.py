"""Compressed posting-frame codec: round-trips and format guards.

Property tests (hypothesis) drive the delta/byte-packed codec with
adversarial posting lists — huge document-order gaps, maximal
extents, deep levels, single postings, empty frames — and assert the
decode is exact.  The format guard tests pin the *typed* failure
mode: bytes that are not a current-version frame (old slotted pages,
zeroed pages, truncated buffers, future versions) must raise
:class:`~repro.errors.PageFormatError`, never decode garbage.
"""

from __future__ import annotations

import struct
from array import array

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import PageFormatError, StorageError
from repro.storage.frames import (FRAME_MAGIC, FRAME_VERSION,
                                  HEADER_BYTES, frame_bytes, iter_chunks,
                                  pack_frame, pack_frames, peek_header,
                                  unpack_frame)
from repro.storage.pages import PAGE_SIZE, Page

U32 = 2 ** 32 - 1
U16 = 2 ** 16 - 1


@st.composite
def posting_columns(draw, max_count=400):
    """Parallel (starts, ends, levels) with valid structure.

    Deltas span the full 1..2^32 range class (so every column width is
    exercised), extents cover 0..u16-and-beyond, levels cover both the
    1-byte and 2-byte encodings.
    """
    count = draw(st.integers(min_value=0, max_value=max_count))
    deltas = draw(st.lists(
        st.integers(min_value=1, max_value=2 ** 20),
        min_size=count, max_size=count))
    first = draw(st.integers(min_value=0, max_value=2 ** 16))
    starts = []
    position = first
    for delta in deltas:
        starts.append(position)
        position += delta
    extents = draw(st.lists(
        st.integers(min_value=0, max_value=2 ** 18),
        min_size=count, max_size=count))
    ends = [start + extent for start, extent in zip(starts, extents)]
    levels = draw(st.lists(
        st.integers(min_value=0, max_value=U16),
        min_size=count, max_size=count))
    return starts, ends, levels


class TestFrameRoundtrip:
    @given(posting_columns())
    @settings(max_examples=120, deadline=None)
    def test_single_frame_roundtrip(self, columns):
        starts, ends, levels = columns
        frame = pack_frame(starts, ends, levels)
        got_starts, got_ends, got_levels = unpack_frame(frame)
        assert list(got_starts) == starts
        assert list(got_ends) == ends
        assert list(got_levels) == levels
        # decoded columns are the exact types RegionBlock bisects over
        assert (got_starts.typecode, got_ends.typecode,
                got_levels.typecode) == ("I", "I", "H")

    @given(posting_columns())
    @settings(max_examples=80, deadline=None)
    def test_paged_roundtrip_and_fences(self, columns):
        starts, ends, levels = columns
        capacity = 256  # force multi-frame chains even for small lists
        frames = pack_frames(starts, ends, levels, capacity=capacity)
        got = []
        previous_max = -1
        for frame in frames:
            assert len(frame) <= capacity
            header = peek_header(frame)
            assert header.count > 0
            assert header.first_start > previous_max
            assert header.max_start >= header.first_start
            previous_max = header.max_start
            chunk = list(iter_chunks(frame))
            assert chunk[0][0] == header.first_start
            assert chunk[-1][0] == header.max_start
            got.extend(chunk)
        assert got == list(zip(starts, ends, levels))

    @given(posting_columns(max_count=2000))
    @settings(max_examples=20, deadline=None)
    def test_page_sized_frames(self, columns):
        starts, ends, levels = columns
        for frame in pack_frames(starts, ends, levels):
            assert len(frame) <= PAGE_SIZE

    def test_huge_gaps_need_wide_deltas(self):
        starts = [0, 1, U32 - 1]  # one delta needs the full 4 bytes
        ends = [0, U32 - 1, U32]
        levels = [0, U16, 3]
        frame = pack_frame(starts, ends, levels)
        header = peek_header(frame)
        assert header.delta_width == 4
        assert header.extent_width == 4
        assert header.level_width == 2
        assert list(iter_chunks(frame)) == list(zip(starts, ends, levels))

    def test_small_values_pack_narrow(self):
        count = 50
        starts = list(range(0, count * 2, 2))
        ends = [start + 1 for start in starts]
        levels = [3] * count
        frame = pack_frame(starts, ends, levels)
        header = peek_header(frame)
        assert (header.delta_width, header.extent_width,
                header.level_width) == (1, 1, 1)
        # 3 bytes/posting (+header) vs the 10-byte uncompressed record
        assert len(frame) == HEADER_BYTES + 3 * count - 1

    def test_single_posting(self):
        frame = pack_frame([7], [9], [2])
        header = peek_header(frame)
        assert (header.count, header.first_start,
                header.max_start) == (1, 7, 7)
        assert list(iter_chunks(frame)) == [(7, 9, 2)]

    def test_empty_frame(self):
        frame = pack_frame([], [], [])
        assert peek_header(frame).count == 0
        starts, ends, levels = unpack_frame(frame)
        assert (len(starts), len(ends), len(levels)) == (0, 0, 0)
        assert pack_frames([], [], []) == []

    def test_frame_bytes_matches_encoding(self):
        starts, ends, levels = [1, 5, 300], [2, 6, 300], [1, 2, 3]
        frame = pack_frame(starts, ends, levels)
        header = peek_header(frame)
        assert len(frame) == frame_bytes(
            header.count, header.delta_width, header.extent_width,
            header.level_width) == header.length


class TestFrameValidation:
    def test_level_overflow_is_typed(self):
        with pytest.raises(StorageError):
            pack_frame([1], [2], [U16 + 1])

    def test_non_increasing_starts_rejected(self):
        with pytest.raises(StorageError):
            pack_frame([5, 5], [6, 6], [0, 0])
        with pytest.raises(StorageError):
            pack_frame([5, 4], [6, 6], [0, 0])

    def test_end_before_start_rejected(self):
        with pytest.raises(StorageError):
            pack_frame([5], [4], [0])

    def test_negative_level_rejected(self):
        with pytest.raises(StorageError):
            pack_frame([5], [6], [-1])

    def test_oversized_posting_never_silently_dropped(self):
        with pytest.raises(StorageError):
            pack_frames([1, 2], [1, 2], [0, 0], capacity=HEADER_BYTES)


class TestFormatGuard:
    def test_old_slotted_page_rejected(self):
        # a slotted posting page from the pre-compression format: its
        # leading u16 is a record count, which can never be the magic
        page = Page(0)
        for record in (b"\x01\x02\x03", b"\x04\x05"):
            page.insert(record)
        with pytest.raises(PageFormatError, match="magic"):
            peek_header(page.to_bytes())

    def test_zeroed_page_rejected(self):
        with pytest.raises(PageFormatError, match="magic"):
            unpack_frame(bytes(PAGE_SIZE))

    def test_truncated_buffer_rejected(self):
        frame = pack_frame([1, 2], [3, 4], [0, 1])
        with pytest.raises(PageFormatError, match="too short"):
            peek_header(frame[:HEADER_BYTES - 1])

    def test_future_version_rejected(self):
        frame = bytearray(pack_frame([1], [2], [0]))
        frame[2] = FRAME_VERSION + 1
        with pytest.raises(PageFormatError, match="version"):
            peek_header(bytes(frame))

    def test_corrupt_widths_rejected(self):
        frame = bytearray(pack_frame([1, 9], [2, 10], [0, 1]))
        frame[20] = 3  # not a legal delta width
        with pytest.raises(PageFormatError, match="width"):
            peek_header(bytes(frame))

    def test_length_mismatch_rejected(self):
        frame = pack_frame([1, 9], [2, 10], [0, 1])
        header = struct.pack("<HBBIIII", FRAME_MAGIC, FRAME_VERSION, 0,
                             2, 1, 9, len(frame) + 7)
        doctored = header + frame[len(header):]
        with pytest.raises(PageFormatError, match="declares"):
            peek_header(doctored)

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_random_bytes_never_decode_silently(self, junk):
        try:
            starts, ends, levels = unpack_frame(junk)
        except PageFormatError:
            return
        # the only way random bytes decode is by actually being a
        # well-formed frame; re-encoding must then agree
        frame = pack_frame(list(starts), list(ends), list(levels))
        assert unpack_frame(frame)[0] == starts

    def test_memoryview_input(self):
        frame = pack_frame([1, 4], [2, 8], [0, 1])
        padded = bytearray(frame) + bytes(PAGE_SIZE - len(frame))
        starts, ends, levels = unpack_frame(memoryview(padded))
        assert list(starts) == [1, 4]
        assert list(ends) == [2, 8]
        assert list(levels) == [0, 1]
