"""Tests for the pattern -> XPath renderer and the round-trip law."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import XPathSyntaxError
from repro.core.pattern import Predicate, QueryPattern
from repro.xpath.parser import compile_xpath
from repro.xpath.render import pattern_signature, pattern_to_xpath

ROUNDTRIP_CASES = [
    "//manager",
    "//manager/employee",
    "//manager//employee/name",
    "//manager[.//employee]//department/name",
    "//book[@year >= '2000']/title",
    "//a[b][.//c/d]//e",
    "//x[text() = 'v']//y[@k != '3']/z",
    "//*/b[.//c]",
]


class TestRenderer:
    @pytest.mark.parametrize("xpath", ROUNDTRIP_CASES)
    def test_compile_render_compile_fixpoint(self, xpath):
        pattern = compile_xpath(xpath)
        rendered = pattern_to_xpath(pattern)
        recompiled = compile_xpath(rendered)
        assert pattern_signature(recompiled) == pattern_signature(
            pattern), rendered

    def test_spine_follows_order_by(self):
        pattern = compile_xpath("//a[.//b/c]//d/e")
        rendered = pattern_to_xpath(pattern)
        # the result node (e) stays on the spine, b/c stays a predicate
        assert rendered.endswith("/e")
        assert "[" in rendered

    def test_no_order_by_uses_deepest_leaf(self):
        pattern = QueryPattern.build({
            "nodes": ["a", "b", "c", "d"],
            "edges": [(0, 1, "/"), (1, 2, "/"), (0, 3, "//")],
        })
        rendered = pattern_to_xpath(pattern)
        recompiled = compile_xpath(rendered, order_by_result=False)
        assert pattern_signature(recompiled) == pattern_signature(
            pattern)
        assert rendered.startswith("//a")

    def test_quote_selection(self):
        pattern = QueryPattern.build({
            "nodes": [("a", [Predicate(kind="text", op="=",
                                       value="it's")])],
            "edges": [],
        })
        rendered = pattern_to_xpath(pattern)
        assert '"it\'s"' in rendered
        assert pattern_signature(compile_xpath(rendered)) == \
            pattern_signature(pattern)

    def test_unrenderable_literal(self):
        pattern = QueryPattern.build({
            "nodes": [("a", [Predicate(kind="text", op="=",
                                       value="both'\"quotes")])],
            "edges": [],
        })
        with pytest.raises(XPathSyntaxError, match="both quote"):
            pattern_to_xpath(pattern)


class TestSignature:
    def test_isomorphic_under_child_order(self):
        first = QueryPattern.build({
            "nodes": ["a", "b", "c"],
            "edges": [(0, 1, "/"), (0, 2, "//")]})
        second = QueryPattern.build({
            "nodes": ["a", "c", "b"],
            "edges": [(0, 1, "//"), (0, 2, "/")]})
        assert pattern_signature(first) == pattern_signature(second)

    def test_distinguishes_axes_and_shape(self):
        child = compile_xpath("//a/b")
        descendant = compile_xpath("//a//b")
        assert pattern_signature(child) != pattern_signature(descendant)
        chain = compile_xpath("//a/b/c")
        star = compile_xpath("//a[b]/c")
        assert pattern_signature(chain) != pattern_signature(star)


@st.composite
def renderable_patterns(draw, max_nodes=5):
    """Random patterns with tags, axes and occasional predicates."""
    size = draw(st.integers(min_value=1, max_value=max_nodes))
    nodes = []
    for __ in range(size):
        tag = draw(st.sampled_from(("a", "b", "c", "item", "*")))
        predicates = []
        if draw(st.booleans()):
            kind = draw(st.sampled_from(("text", "attribute")))
            predicates.append(Predicate(
                kind=kind,
                op=draw(st.sampled_from(("=", "!=", "<", ">="))),
                value=draw(st.sampled_from(("1", "2000", "x y"))),
                name="k" if kind == "attribute" else ""))
        nodes.append((tag, predicates) if predicates else tag)
    edges = []
    for child in range(1, size):
        parent = draw(st.integers(min_value=0, max_value=child - 1))
        axis = draw(st.sampled_from(("/", "//")))
        edges.append((parent, child, axis))
    return QueryPattern.build({"nodes": nodes, "edges": edges})


class TestRoundTripProperty:
    @given(renderable_patterns())
    @settings(max_examples=120, deadline=None)
    def test_render_compile_isomorphism(self, pattern):
        rendered = pattern_to_xpath(pattern)
        recompiled = compile_xpath(rendered, order_by_result=False)
        assert pattern_signature(recompiled) == pattern_signature(
            pattern), rendered

    @given(renderable_patterns())
    @settings(max_examples=60, deadline=None)
    def test_roundtripped_pattern_gives_same_results(self, pattern):
        """Semantic check: the round-tripped pattern matches exactly
        the same bindings on a concrete document."""
        from repro.api import Database
        from tests.conftest import random_document

        document = random_document(11, size=30,
                                   tags=("a", "b", "c", "item"))
        database = Database.from_document(document)
        original = database.query(pattern)
        rendered = compile_xpath(pattern_to_xpath(pattern),
                                 order_by_result=False)
        roundtripped = database.query(rendered)
        assert len(original) == len(roundtripped)
        assert {tuple(sorted(r.start for r in row))
                for row in original.execution.tuples} == \
            {tuple(sorted(r.start for r in row))
             for row in roundtripped.execution.tuples}