"""Figure 7: DPAP-EB T_e sweep on the large (folded) data set.

On big data, plan quality dominates: evaluation cost falls rapidly as
T_e grows and flattens once the optimal plan is found, while
optimization time keeps rising — so "just use DPP" is the paper's
advice for expensive queries.
"""

import pytest

from benchmarks.conftest import FIGURE7_FOLDING, publish
from repro.bench.experiments import figure7


def test_figure7_summary(benchmark, setup):
    output = benchmark.pedantic(
        figure7, args=(setup,), kwargs={"folding": FIGURE7_FOLDING},
        rounds=1, iterations=1)
    publish("figure7", output.text)

    sweep = [row for row in output.rows
             if row["series"].startswith("DPAP-EB(")]
    fixed = {row["series"]: row for row in output.rows
             if not row["series"].startswith("DPAP-EB(")}

    # evaluation cost reaches the optimum by the largest T_e
    assert sweep[-1]["eval_sim"] == pytest.approx(
        fixed["DPP"]["eval_sim"], rel=0.05)
    # optimization effort grows along the sweep
    assert sweep[-1]["plans"] >= sweep[0]["plans"]
    # plan execution dominates optimization on large data: DPP's total
    # beats any bad early-T_e total unless T_e already found the optimum
    worst_sweep_eval = max(row["eval_sim"] for row in sweep)
    assert worst_sweep_eval >= fixed["DPP"]["eval_sim"]
