"""Micro-benchmarks of the physical operators.

Not a paper artifact, but the foundation the tables stand on: index
scan throughput, Stack-Tree-Desc vs. Stack-Tree-Anc vs. the quadratic
nested-loop baseline, and sort cost.  pytest-benchmark gives stable
per-operator timings here.
"""

import pytest

from repro.core.pattern import Axis, PatternNode
from repro.engine.context import EngineContext
from repro.engine.nestedloop import NestedLoopJoin
from repro.engine.scan import IndexScan
from repro.engine.sort import SortOperator
from repro.engine.stackjoin import StackTreeAncJoin, StackTreeDescJoin


def engine(database):
    return EngineContext(database.index, database.store,
                         database.document)


def drain(operator):
    return sum(1 for _ in operator.run())


class TestScans:
    def test_index_scan(self, benchmark, pers_db):
        def scan():
            return drain(IndexScan(PatternNode(0, "employee"),
                                   engine(pers_db)))

        count = benchmark(scan)
        assert count == pers_db.document.tag_count("employee")

    def test_wildcard_scan(self, benchmark, pers_db):
        def scan():
            return drain(IndexScan(PatternNode(0, "*"), engine(pers_db)))

        count = benchmark(scan)
        assert count == len(pers_db.document)

    def test_predicate_scan(self, benchmark, mbench_db):
        from repro.core.pattern import Predicate

        node = PatternNode(0, "eNest", (
            Predicate(kind="attribute", op="=", value="1",
                      name="aFour"),))

        def scan():
            return drain(IndexScan(node, engine(mbench_db)))

        count = benchmark(scan)
        assert 0 < count < mbench_db.document.tag_count("eNest")


class TestJoins:
    @pytest.mark.parametrize("join_class,label", [
        (StackTreeDescJoin, "stack-tree-desc"),
        (StackTreeAncJoin, "stack-tree-anc"),
        (NestedLoopJoin, "nested-loop"),
    ])
    def test_manager_employee_join(self, benchmark, pers_db, join_class,
                                   label):
        def run():
            ctx = engine(pers_db)
            join = join_class(
                IndexScan(PatternNode(0, "manager"), ctx),
                IndexScan(PatternNode(1, "employee"), ctx),
                0, 1, Axis.DESCENDANT)
            return drain(join)

        count = benchmark(run)
        assert count > 0
        benchmark.extra_info["output_tuples"] = count

    def test_self_join_enest(self, benchmark, mbench_db):
        def run():
            ctx = engine(mbench_db)
            join = StackTreeDescJoin(
                IndexScan(PatternNode(0, "eNest"), ctx),
                IndexScan(PatternNode(1, "eNest"), ctx),
                0, 1, Axis.DESCENDANT)
            return drain(join)

        count = benchmark(run)
        benchmark.extra_info["output_tuples"] = count


class TestSort:
    def test_sort_join_output(self, benchmark, pers_db):
        def run():
            ctx = engine(pers_db)
            join = StackTreeDescJoin(
                IndexScan(PatternNode(0, "manager"), ctx),
                IndexScan(PatternNode(1, "employee"), ctx),
                0, 1, Axis.DESCENDANT)
            return drain(SortOperator(join, 0))

        count = benchmark(run)
        assert count > 0
