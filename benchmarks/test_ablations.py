"""Ablation benches for the design choices DESIGN.md calls out.

* Lookahead Rule on/off (DPP vs DPP') — search size and time;
* estimator quality (positional histograms vs exact) — plan quality;
* histogram grid resolution — estimate accuracy vs statistics cost;
* cost-factor sensitivity — where the blocking/pipelined crossover
  moves as ``f_io`` changes.
"""

import pytest

from benchmarks.conftest import publish
from repro.api import Database
from repro.bench.tables import render_table
from repro.core.cost import CostFactors
from repro.estimation.estimator import (ExactEstimator,
                                        PositionalEstimator)
from repro.workloads.folding import fold_document
from repro.workloads.personnel import personnel_document
from repro.workloads.queries import paper_query

QUERY = "Q.Pers.3.d"


class TestLookaheadAblation:
    @pytest.mark.parametrize("variant", ["DPP", "DPP'"])
    def test_lookahead(self, benchmark, pers_db, variant):
        query = paper_query(QUERY)
        pers_db.warm_statistics(query.pattern)
        result = benchmark(pers_db.optimize, query.pattern,
                           algorithm=variant)
        benchmark.extra_info["statuses_generated"] = (
            result.report.statuses_generated)
        benchmark.extra_info["deadends_avoided"] = (
            result.report.deadends_avoided)

    def test_lookahead_shrinks_search(self, benchmark, pers_db):
        query = paper_query(QUERY)

        def run():
            with_rule = pers_db.optimize(query.pattern, algorithm="DPP")
            without = pers_db.optimize(query.pattern, algorithm="DPP'")
            return with_rule.report, without.report

        with_rule, without = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
        assert with_rule.statuses_generated < without.statuses_generated
        assert with_rule.deadends_avoided > 0


class TestEstimatorAblation:
    def test_estimator_quality(self, benchmark, setup):
        """Three-way estimator comparison: the paper's positional
        histograms vs a systematic sampler vs exact pairwise
        statistics — both the estimate's accuracy and the quality of
        the plan DPP picks with it."""
        from repro.core.dpp import DPPOptimizer
        from repro.estimation.sampling import SamplingEstimator

        query = paper_query(QUERY)

        def run():
            database = Database.from_document(
                personnel_document(target_nodes=setup.pers_nodes,
                                   seed=setup.seed))
            exact = database.exact_estimator
            truth = exact.edge_cardinality(query.pattern, 0, 1)
            estimators = [
                ("positional", database.estimator),
                ("sampling", SamplingEstimator(database.document)),
                ("exact", exact),
            ]
            rows = []
            for name, estimator in estimators:
                optimization = DPPOptimizer(
                    cost_model=database.cost_model).optimize(
                        query.pattern, estimator)
                execution = database.execute(optimization.plan,
                                             query.pattern)
                estimate = estimator.edge_cardinality(query.pattern,
                                                      0, 1)
                rows.append({
                    "estimator": name,
                    "edge_error": abs(estimate - truth) / max(truth, 1),
                    "eval_sim": execution.metrics.simulated_cost(),
                    "estimated": optimization.estimated_cost,
                })
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        text = render_table(
            "Ablation: estimator quality (DPP plan, Q.Pers.3.d)",
            ["Estimator", "edge est. rel-error", "eval(sim)",
             "estimated"],
            [[r["estimator"], r["edge_error"], r["eval_sim"],
              r["estimated"]] for r in rows])
        publish("ablation_estimator", text)
        by_name = {r["estimator"]: r for r in rows}
        # exact statistics estimate the pair size perfectly
        assert by_name["exact"]["edge_error"] == pytest.approx(0.0)
        # histogram-driven plans must stay within a reasonable factor
        # of plans chosen with perfect pairwise statistics
        assert by_name["positional"]["eval_sim"] <= \
            3 * by_name["exact"]["eval_sim"]


class TestHistogramGridAblation:
    @pytest.mark.parametrize("grid", [2, 8, 32])
    def test_grid_resolution(self, benchmark, setup, grid):
        document = personnel_document(target_nodes=setup.pers_nodes,
                                      seed=setup.seed)
        query = paper_query(QUERY)
        exact = ExactEstimator(document)
        truth = exact.edge_cardinality(query.pattern, 0, 1)

        def estimate():
            estimator = PositionalEstimator.from_document(document,
                                                          grid=grid)
            return estimator.edge_cardinality(query.pattern, 0, 1)

        estimated = benchmark(estimate)
        error = abs(estimated - truth) / max(truth, 1.0)
        benchmark.extra_info["relative_error"] = error
        benchmark.extra_info["grid"] = grid


class TestCostFactorSensitivity:
    def test_crossover_moves_with_f_io(self, benchmark, setup):
        """Higher f_io should push the optimizer towards sort-based
        (blocking) plans for longer; lower f_io makes the FP plan
        optimal even on small data (Sec. 4.3 discussion)."""
        query = paper_query(QUERY)
        base = personnel_document(target_nodes=setup.pers_nodes,
                                  seed=setup.seed)

        def run():
            rows = []
            for f_io in (2.0, 16.0, 64.0):
                factors = CostFactors(f_io=f_io)
                database = Database.from_document(base,
                                                  cost_factors=factors)
                optimization = database.optimize(query.pattern,
                                                 algorithm="DPP")
                rows.append({
                    "f_io": f_io,
                    "fully_pipelined": (
                        optimization.plan.is_fully_pipelined),
                    "sorts": optimization.plan.sort_count(),
                })
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        text = render_table(
            "Ablation: f_io sensitivity of the optimal plan shape",
            ["f_io", "fully pipelined", "sorts"],
            [[r["f_io"], r["fully_pipelined"], r["sorts"]]
             for r in rows])
        publish("ablation_costfactors", text)
        # cheap I/O -> pipelined optimum; expensive I/O -> sorts win
        assert rows[0]["fully_pipelined"]
        assert rows[-1]["sorts"] > 0


class TestFoldedLookahead:
    def test_dpp_beats_dp_on_search_size(self, benchmark, pers_db):
        query = paper_query(QUERY)

        def run():
            dp = pers_db.optimize(query.pattern, algorithm="DP")
            dpp = pers_db.optimize(query.pattern, algorithm="DPP")
            return dp.report, dpp.report

        dp, dpp = benchmark.pedantic(run, rounds=1, iterations=1)
        assert dpp.statuses_generated < dp.statuses_generated / 2
