"""Shared fixtures for the benchmark suite.

Data sets and databases are built once per session; rendered tables are
printed and also written to ``benchmarks/results/`` so a benchmark run
leaves inspectable artifacts (EXPERIMENTS.md quotes them).

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — run the large folding factors too (slower,
  closer to the paper's x1/x10/x100/x500 ramp).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.bench.harness import ExperimentSetup, dataset_database

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: folding factors for Table 3 / Figure 7 (paper: 1/10/100/500)
FOLDINGS = (1, 5, 25, 125) if FULL else (1, 5, 25)
FIGURE7_FOLDING = 50 if FULL else 25


@pytest.fixture(scope="session")
def setup() -> ExperimentSetup:
    return ExperimentSetup()


@pytest.fixture(scope="session")
def pers_db(setup):
    return dataset_database("pers", setup)


@pytest.fixture(scope="session")
def dblp_db(setup):
    return dataset_database("dblp", setup)


@pytest.fixture(scope="session")
def mbench_db(setup):
    return dataset_database("mbench", setup)


def database_for(dataset, setup):
    return dataset_database(dataset, setup)


def publish(name: str, text: str) -> None:
    """Print a rendered experiment table and save it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
