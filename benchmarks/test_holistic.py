"""Extension bench: holistic twig join vs optimized binary-join plans.

The paper's Sec. 6 names multi-way structural joins (TwigStack) as
future work for the optimizer.  This bench quantifies the comparison
the authors anticipated: a single holistic operator needs no join-order
decision at all, while the binary-join engine depends on DPP picking a
good order — and both pay very different buffering costs.
"""

import pytest

from benchmarks.conftest import database_for, publish
from repro.bench.tables import render_table
from repro.workloads.queries import PAPER_QUERIES, paper_query

QUERIES = ("Q.Pers.1.a", "Q.Pers.2.c", "Q.Pers.3.d", "Q.Mbench.1.a",
           "Q.DBLP.1.b")


@pytest.mark.parametrize("query_name", QUERIES)
def test_holistic_evaluation(benchmark, setup, query_name):
    query = paper_query(query_name)
    database = database_for(query.dataset, setup)

    result = benchmark(database.holistic_query, query.pattern)
    benchmark.extra_info["matches"] = len(result)
    benchmark.extra_info["stack_ops"] = result.metrics.stack_tuple_ops


def test_holistic_vs_binary_summary(benchmark, setup):
    def run():
        rows = []
        for query_name in QUERIES:
            query = paper_query(query_name)
            database = database_for(query.dataset, setup)
            binary = database.query(query.pattern, algorithm="DPP")
            holistic = database.holistic_query(query.pattern)
            assert (holistic.canonical()
                    == binary.execution.canonical())
            rows.append({
                "query": query_name,
                "binary_sim": binary.execution.metrics.simulated_cost(),
                "holistic_sim": holistic.metrics.simulated_cost(),
                "binary_ms": binary.execution.metrics.wall_seconds * 1e3,
                "holistic_ms": holistic.metrics.wall_seconds * 1e3,
                "matches": len(holistic),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        "Extension: optimized binary joins (DPP) vs holistic TwigStack",
        ["Query", "binary eval(sim)", "holistic eval(sim)",
         "binary ms", "holistic ms", "matches"],
        [[r["query"], r["binary_sim"], r["holistic_sim"],
          r["binary_ms"], r["holistic_ms"], r["matches"]]
         for r in rows],
        note=("Same result sets; holistic buffers per-leaf path "
              "solutions instead of intermediate join results."))
    publish("extension_holistic", text)
