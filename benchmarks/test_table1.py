"""Table 1: optimization + evaluation time, 8 queries x 5 algorithms.

Two layers:

* per-cell optimizer micro-benchmarks (``test_optimize``) — the paper's
  **Opt.** columns, measured properly by pytest-benchmark;
* one full-table run (``test_table1_summary``) that executes every
  chosen plan, prints the rendered Table 1 and stores it under
  ``benchmarks/results/table1.txt``.
"""

import pytest

from benchmarks.conftest import database_for, publish
from repro.bench.experiments import ALGORITHMS, table1
from repro.workloads.queries import PAPER_QUERIES, paper_query

QUERIES = sorted(PAPER_QUERIES)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("query_name", QUERIES)
def test_optimize(benchmark, setup, query_name, algorithm):
    query = paper_query(query_name)
    database = database_for(query.dataset, setup)
    database.warm_statistics(query.pattern)
    options = {}
    if algorithm == "DPAP-EB":
        options["expansion_bound"] = len(query.pattern.edges)

    result = benchmark(database.optimize, query.pattern,
                       algorithm=algorithm, **options)
    benchmark.extra_info["estimated_cost"] = result.estimated_cost
    benchmark.extra_info["plans_considered"] = (
        result.report.plans_considered)
    benchmark.extra_info["fully_pipelined"] = (
        result.plan.is_fully_pipelined)


def test_table1_summary(benchmark, setup):
    output = benchmark.pedantic(table1, args=(setup,), rounds=1,
                                iterations=1)
    publish("table1", output.text)
    # headline shape: DP and DPP pick equally good plans everywhere
    for row in output.rows:
        assert row["DP.eval_sim"] == pytest.approx(row["DPP.eval_sim"],
                                                   rel=0.01)
        assert row["bad.eval_sim"] > row["DPP.eval_sim"]
