"""Figure 8: DPAP-EB T_e sweep on the small (unfolded) data set.

On small data, optimization time is a significant share of the total;
the paper's point is that FP wins the total-time race and the DPAP-EB
curve is "U"-shaped in total evaluation time.
"""

import pytest

from benchmarks.conftest import publish
from repro.bench.experiments import figure8


def test_figure8_summary(benchmark, setup):
    output = benchmark.pedantic(figure8, args=(setup,), rounds=1,
                                iterations=1)
    publish("figure8", output.text)

    fixed = {row["series"]: row for row in output.rows
             if not row["series"].startswith("DPAP-EB(")}
    # FP is the fastest optimizer
    assert fixed["FP"]["opt_ms"] <= fixed["DPP"]["opt_ms"]
    assert fixed["FP"]["opt_ms"] <= fixed["DP"]["opt_ms"]
    # and its plan is within a small factor of optimal
    assert fixed["FP"]["eval_sim"] <= 5 * fixed["DPP"]["eval_sim"]

    sweep = [row for row in output.rows
             if row["series"].startswith("DPAP-EB(")]
    # optimization time rises along the sweep (monotone-ish)
    assert sweep[-1]["opt_ms"] >= sweep[0]["opt_ms"] * 0.8
