"""Table 2: optimization time and plans considered (Q.Pers.3.d).

Benchmarks each of the six algorithm variants (including DPP', the
no-lookahead DPP) on the paper's reference query, then prints the
rendered Table 2 and asserts the paper's ordering of the search sizes.
"""

import pytest

from benchmarks.conftest import publish
from repro.bench.experiments import TABLE2_ALGORITHMS, table2
from repro.workloads.queries import paper_query

QUERY = "Q.Pers.3.d"


@pytest.mark.parametrize("algorithm", TABLE2_ALGORITHMS)
def test_optimize_variants(benchmark, pers_db, algorithm):
    query = paper_query(QUERY)
    pers_db.warm_statistics(query.pattern)
    options = {}
    if algorithm == "DPAP-EB":
        options["expansion_bound"] = len(query.pattern.edges)
    result = benchmark(pers_db.optimize, query.pattern,
                       algorithm=algorithm, **options)
    benchmark.extra_info["plans"] = (
        result.report.alternatives_considered)
    benchmark.extra_info["moves_costed"] = result.report.plans_considered
    benchmark.extra_info["statuses_expanded"] = (
        result.report.statuses_expanded)


def test_table2_summary(benchmark, setup):
    output = benchmark.pedantic(table2, args=(setup,), rounds=1,
                                iterations=1)
    publish("table2", output.text)
    plans = {row["algorithm"]: row["plans"] for row in output.rows}
    # the paper's ordering: DP > DPP' > DPP > {DPAP} > FP
    assert plans["DP"] > plans["DPP"]
    assert plans["DPP'"] > plans["DPP"]
    assert plans["DPP"] > plans["DPAP-EB"]
    assert plans["DPP"] > plans["DPAP-LD"]
    assert plans["DPP"] > plans["FP"]
