"""Table 3: plan evaluation cost vs. data size (folding factor).

Benchmarks the evaluation of each algorithm's chosen plan per folding
factor, prints the rendered Table 3, and asserts the paper's Sec. 4.3
findings: optimization time stays flat while evaluation grows, the
optimal plan turns fully-pipelined at scale, and DPAP-LD's gap widens.
"""

import pytest

from benchmarks.conftest import FOLDINGS, publish
from repro.bench.experiments import table3
from repro.bench.harness import dataset_database, run_cell
from repro.workloads.queries import paper_query

QUERY = "Q.Pers.3.d"


@pytest.mark.parametrize("folding", FOLDINGS)
@pytest.mark.parametrize("algorithm", ("DPP", "DPAP-LD", "FP"))
def test_evaluate_plan(benchmark, setup, algorithm, folding):
    database = dataset_database("pers", setup, folding=folding)
    query = paper_query(QUERY)
    optimization = database.optimize(query.pattern, algorithm=algorithm)

    execution = benchmark.pedantic(
        database.execute, args=(optimization.plan, query.pattern),
        rounds=1, iterations=1)
    benchmark.extra_info["eval_simulated"] = (
        execution.metrics.simulated_cost())
    benchmark.extra_info["results"] = len(execution)


def test_table3_summary(benchmark, setup):
    output = benchmark.pedantic(table3, args=(setup,),
                                kwargs={"foldings": FOLDINGS},
                                rounds=1, iterations=1)
    publish("table3", output.text)

    def series(algorithm, key="eval_sim"):
        return {row["folding"]: row[key] for row in output.rows
                if row["algorithm"] == algorithm}

    largest = FOLDINGS[-1]
    # evaluation grows with data, optimization does not
    assert series("DPP")[largest] > series("DPP")[1]
    opt = series("DPP", "opt_ms")
    assert opt[largest] < 25 * max(opt[1], 0.5)
    # at scale the optimum is the fully-pipelined plan (FP == DPP)
    dpp_final = next(row for row in output.rows
                     if row["algorithm"] == "DPP"
                     and row["folding"] == largest)
    assert dpp_final["fully_pipelined"]
    assert series("FP")[largest] == pytest.approx(
        series("DPP")[largest], rel=0.05)
    # the gap between the left-deep plan and the best plan widens with
    # data size (Sec. 4.3) — measured as the absolute cost gap; at our
    # small base size the optimum is already a (blocking) bushy plan,
    # so unlike the paper the relative gap does not start at 1.0
    ld_gap_small = series("DPAP-LD")[1] - series("DPP")[1]
    ld_gap_large = series("DPAP-LD")[largest] - series("DPP")[largest]
    assert ld_gap_large > ld_gap_small
    assert series("bad")[largest] > 5 * series("DPP")[largest]
