"""Extension bench: first-result latency (the FP motivation, Sec. 3.4).

"Fully-pipelined plans have the property of producing the initial
result tuples quickly, which is desirable in many applications, such
as online querying on XML data sources."  This bench quantifies it:
the FP plan's first tuple vs the optimal (possibly blocking) plan's
first tuple, on folded data where the difference is macroscopic.
"""

import pytest

from benchmarks.conftest import publish
from repro.bench.harness import dataset_database
from repro.bench.tables import render_table
from repro.engine.context import EngineContext
from repro.engine.executor import Executor
from repro.workloads.queries import paper_query

# At base scale the DPP optimum for this query is a *blocking* bushy
# plan (2 sorts) while FP streams — exactly the online-querying
# trade-off; at large foldings every algorithm converges on pipelined
# plans and the contrast disappears (see Table 3).
QUERY = "Q.Pers.2.c"
FOLDING = 1


def test_first_result_latency(benchmark, setup):
    def run():
        database = dataset_database("pers", setup, folding=FOLDING)
        query = paper_query(QUERY)
        rows = []
        for algorithm in ("DPP", "DPAP-LD", "FP"):
            optimization = database.optimize(query.pattern,
                                             algorithm=algorithm)
            executor = Executor(
                EngineContext(database.index, database.store,
                              database.document,
                              factors=database.cost_factors),
                query.pattern)
            timing = executor.time_to_first(optimization.plan)
            rows.append({
                "algorithm": algorithm,
                "first_ms": timing.first_seconds * 1e3,
                "total_ms": timing.total_seconds * 1e3,
                "pipelined": optimization.plan.is_fully_pipelined,
                "results": timing.total_count,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        f"Extension: time to first result ({QUERY}, folding x{FOLDING})",
        ["Algorithm", "first tuple (ms)", "full run (ms)", "pipelined"],
        [[r["algorithm"], r["first_ms"], r["total_ms"], r["pipelined"]]
         for r in rows])
    publish("extension_online", text)

    by_algorithm = {r["algorithm"]: r for r in rows}
    fp = by_algorithm["FP"]
    assert fp["pipelined"]
    # FP's first tuple arrives in a small fraction of its full run
    assert fp["first_ms"] < 0.6 * fp["total_ms"]
    # blocking competitors pay most of their runtime before tuple #1
    blocking = [row for row in rows if not row["pipelined"]]
    assert blocking, "expected at least one blocking plan at this scale"
    for row in blocking:
        assert row["first_ms"] > 0.4 * row["total_ms"], row["algorithm"]
