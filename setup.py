"""Legacy setup shim.

Metadata lives in pyproject.toml; this file exists so that offline
environments without the ``wheel`` package can still do editable
installs (``pip install -e .`` falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
