"""LRU buffer pool over a :class:`~repro.storage.disk.DiskManager`.

The pool holds a bounded number of page frames.  Pages are obtained
with :meth:`BufferPool.fetch` (pin) and returned with
:meth:`BufferPool.unpin`; pinned pages are never evicted.  Dirty pages
are written back on eviction or :meth:`flush`.  Hit/miss counters make
the pool's behaviour observable to the benchmark harness — the paper's
experiments ran with a 16 MB SHORE pool, and buffer locality is part of
why index scans cost what they cost.

The pool is safe under concurrent readers: every operation that
touches the frame table, pin counts, or counters runs under one
re-entrant mutex, so the serving layer
(:meth:`repro.api.Database.query_many`) can drive many executions over
a single pool.  A single lock (rather than lock striping) is the right
trade-off here: critical sections are a dict probe plus an integer
update, far cheaper than the page decoding done outside the lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import BufferPoolError
from repro.storage.disk import DiskManager
from repro.storage.pages import Page


@dataclass
class BufferStats:
    """Hit/miss/eviction counters for one pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: misses served as zero-copy disk views (no frame populated).
    view_misses: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.view_misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class _Frame:
    __slots__ = ("page", "pin_count")

    def __init__(self, page: Page) -> None:
        self.page = page
        self.pin_count = 0


class BufferPool:
    """Fixed-capacity LRU page cache with pin counting."""

    def __init__(self, disk: DiskManager, capacity: int = 256) -> None:
        if capacity < 1:
            raise BufferPoolError("capacity must be at least 1")
        self.disk = disk
        self.capacity = capacity
        self.stats = BufferStats()
        self._mutex = threading.RLock()
        # Ordered oldest-first; move_to_end on access implements LRU.
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._frames)

    def fetch(self, page_id: int) -> Page:
        """Pin and return the page, reading it from disk on a miss."""
        with self._mutex:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.stats.hits += 1
                self._frames.move_to_end(page_id)
            else:
                self.stats.misses += 1
                self._ensure_capacity()
                frame = _Frame(self.disk.read_page(page_id))
                self._frames[page_id] = frame
            frame.pin_count += 1
            return frame.page

    def fetch_view(self, page_id: int) -> memoryview:
        """The page's bytes as a read-only snapshot, zero-copy if safe.

        The read-path decision table:

        * **resident frame** (clean or dirty) — the pool copy is the
          truth (it may be newer than disk); served as a copy of the
          frame bytes, counted as a hit.  Dirty or WAL-managed pages
          therefore always take this path: they are resident until
          write-back.
        * **not resident, disk supports views** — served as a
          zero-copy ``memoryview`` straight off the disk image (mmap
          for :class:`~repro.storage.disk.FileDisk`); no frame is
          populated, so bulk decodes do not evict the working set.
          Correctness leans on the eviction invariant: a dirty page is
          only ever dropped after write-back, so a non-resident page's
          latest bytes are always on disk.
        * **not resident, no view support** — the page is read and
          cached like :meth:`fetch` (unpinned) and a copy is returned.

        Unlike :meth:`fetch` there is no pin to release, which is what
        makes this the right primitive for whole-page columnar
        decodes.
        """
        with self._mutex:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.stats.hits += 1
                self._frames.move_to_end(page_id)
                return memoryview(bytes(frame.page.data))
            self.stats.misses += 1
            view = self.disk.read_view(page_id)
            if view is not None:
                self.stats.view_misses += 1
                return view
            self._ensure_capacity()
            frame = _Frame(self.disk.read_page(page_id))
            self._frames[page_id] = frame
            return memoryview(bytes(frame.page.data))

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin; mark the page dirty if it was modified."""
        with self._mutex:
            frame = self._frames.get(page_id)
            if frame is None:
                raise BufferPoolError(f"page {page_id} is not in the pool")
            if frame.pin_count == 0:
                raise BufferPoolError(f"page {page_id} is not pinned")
            frame.pin_count -= 1
            if dirty:
                frame.page.dirty = True

    def new_page(self) -> Page:
        """Allocate a fresh page on disk and pin it in the pool."""
        with self._mutex:
            page_id = self.disk.allocate()
            self._ensure_capacity()
            page = Page(page_id)
            frame = _Frame(page)
            frame.pin_count = 1
            page.dirty = True
            self._frames[page_id] = frame
            return page

    def flush(self) -> None:
        """Write all dirty pages back to disk (pages stay cached)."""
        with self._mutex:
            for frame in self._frames.values():
                if frame.page.dirty:
                    self.disk.write_page(frame.page)

    def clear(self) -> None:
        """Flush and drop every unpinned frame."""
        with self._mutex:
            self.flush()
            pinned = {page_id: frame
                      for page_id, frame in self._frames.items()
                      if frame.pin_count > 0}
            self._frames = OrderedDict(pinned)

    def _ensure_capacity(self) -> None:
        # caller holds the mutex
        while len(self._frames) >= self.capacity:
            victim_id = next(
                (page_id for page_id, frame in self._frames.items()
                 if frame.pin_count == 0), None)
            if victim_id is None:
                raise BufferPoolError("all frames are pinned")
            frame = self._frames[victim_id]
            # Write back *before* dropping the frame: if the disk write
            # raises, the dirty page must stay in the pool instead of
            # silently losing its updates.
            if frame.page.dirty:
                self.disk.write_page(frame.page)
            self._frames.pop(victim_id)
            self.stats.evictions += 1

    def pinned_pages(self) -> list[int]:
        """Ids of currently pinned pages (diagnostics / tests)."""
        with self._mutex:
            return [page_id for page_id, frame in self._frames.items()
                    if frame.pin_count > 0]

    def pin_count(self, page_id: int) -> int:
        """Current pin count of *page_id* (0 if not resident)."""
        with self._mutex:
            frame = self._frames.get(page_id)
            return frame.pin_count if frame is not None else 0

    def check_invariants(self) -> None:
        """Assert pool invariants; raises :class:`BufferPoolError`.

        Intended for tests and post-batch health checks: the frame
        count must respect capacity and no frame may hold a negative
        pin count.
        """
        with self._mutex:
            if len(self._frames) > self.capacity:
                raise BufferPoolError(
                    f"pool holds {len(self._frames)} frames, capacity "
                    f"is {self.capacity}")
            for page_id, frame in self._frames.items():
                if frame.pin_count < 0:
                    raise BufferPoolError(
                        f"page {page_id} has negative pin count "
                        f"{frame.pin_count}")
