"""Compressed posting frames: the on-disk columnar page format.

A *frame* is one page worth of postings for a single tag, stored as
three packed columns rather than one 10-byte record per posting:

* **starts** are delta-encoded: the header carries the first start
  absolute, the column holds ``start[i] - start[i-1]`` (postings are
  strictly increasing within a tag, so every delta is >= 1);
* **extents** hold ``end - start`` per posting;
* **levels** hold the node depth per posting.

Each column is bit-packed to the smallest byte width (1, 2 or 4
bytes) that fits the frame's largest value, so a typical posting
shrinks from 10 bytes to 3-5.  Widths are chosen *per frame*, which is
what keeps decode free of per-entry Python: a column is one
``array.frombytes`` over the page's bytes (zero-copy when the page
arrives as an mmap ``memoryview``), starts are rebuilt with one
C-speed ``itertools.accumulate`` pass and ends with one
``map(operator.add)`` pass.

Frame layout (all little-endian)::

    0..2    magic (0xF7A3)
    2..3    format version (1)
    3..4    flags (reserved, 0)
    4..8    posting count (uint32)
    8..12   first start (uint32)  -- also the min-start fence
    12..16  max start (uint32)    -- fence: last posting's start
    16..20  frame length in bytes, header included (uint32)
    20..21  delta column width  (1 | 2 | 4)
    21..22  extent column width (1 | 2 | 4)
    22..23  level column width  (1 | 2)
    23..24  padding (0)
    24..    delta column  ((count - 1) * delta_width bytes)
    ...     extent column (count * extent_width bytes)
    ...     level column  (count * level_width bytes)

The min/max fences are readable from the header alone
(:func:`peek_header`), so chain maintenance — appends, splices,
document-order checks — never decodes a frame it only needs to skip.

A frame occupies the front of its 8 KiB page; the page's remaining
bytes are zero.  Pages in the older slotted-record posting format (or
any other page kind) fail the magic check and raise
:class:`~repro.errors.PageFormatError` instead of decoding garbage.
"""

from __future__ import annotations

import struct
import sys
from array import array
from itertools import accumulate
from operator import add
from typing import Iterator, NamedTuple, Sequence

from repro.errors import PageFormatError, StorageError
from repro.storage.pages import PAGE_SIZE

FRAME_MAGIC = 0xF7A3
FRAME_VERSION = 1

_HEADER = struct.Struct("<HBBIIIIBBBB")
HEADER_BYTES = _HEADER.size  # 24

#: usable frame bytes per page (a frame never exceeds its page)
FRAME_CAPACITY = PAGE_SIZE

_TYPECODES = {1: "B", 2: "H", 4: "I"}
_BIG_ENDIAN = sys.byteorder == "big"


class FrameHeader(NamedTuple):
    """Decoded frame header (fences readable without column decode)."""

    count: int
    first_start: int
    max_start: int
    length: int
    delta_width: int
    extent_width: int
    level_width: int


def _width(largest: int, allowed: tuple[int, ...]) -> int:
    """Smallest byte width in *allowed* that holds *largest*."""
    for width in allowed:
        if largest < (1 << (8 * width)):
            return width
    raise StorageError(
        f"column value {largest} exceeds the widest packable width "
        f"({allowed[-1]} bytes)")


def _column(values: Sequence[int], width: int) -> bytes:
    column = array(_TYPECODES[width], values)
    if _BIG_ENDIAN:
        column.byteswap()
    return column.tobytes()


def frame_bytes(count: int, delta_width: int, extent_width: int,
                level_width: int) -> int:
    """Encoded size of a frame with the given widths."""
    if count == 0:
        return HEADER_BYTES
    return (HEADER_BYTES + (count - 1) * delta_width
            + count * (extent_width + level_width))


def pack_frame(starts: Sequence[int], ends: Sequence[int],
               levels: Sequence[int], lo: int = 0,
               hi: int | None = None) -> bytes:
    """Encode postings ``[lo:hi)`` of three parallel columns.

    Starts must be strictly increasing; levels must fit 16 bits and
    ends must not precede their starts (both raise
    :class:`StorageError`, never encode garbage).
    """
    if hi is None:
        hi = len(starts)
    count = hi - lo
    if count == 0:
        return _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, 0, 0, 0, 0,
                            HEADER_BYTES, 1, 1, 1, 0)
    first = starts[lo]
    last = starts[hi - 1]
    deltas = [starts[i] - starts[i - 1] for i in range(lo + 1, hi)]
    if first < 0 or any(delta <= 0 for delta in deltas):
        raise StorageError(
            "posting starts must be strictly increasing non-negative")
    extents = [ends[i] - starts[i] for i in range(lo, hi)]
    if any(extent < 0 for extent in extents):
        raise StorageError("posting end precedes its start")
    level_slice = list(levels[lo:hi])
    if any(level < 0 for level in level_slice):
        raise StorageError("negative posting level")
    delta_width = _width(max(deltas, default=0), (1, 2, 4))
    extent_width = _width(max(extents), (1, 2, 4))
    level_width = _width(max(level_slice), (1, 2))
    header = _HEADER.pack(
        FRAME_MAGIC, FRAME_VERSION, 0, count, first, last,
        frame_bytes(count, delta_width, extent_width, level_width),
        delta_width, extent_width, level_width, 0)
    return b"".join((header, _column(deltas, delta_width),
                     _column(extents, extent_width),
                     _column(level_slice, level_width)))


def peek_header(buffer: bytes | bytearray | memoryview) -> FrameHeader:
    """Decode and validate a frame header (no column decode).

    Raises :class:`PageFormatError` if the bytes are not a current-
    version frame — the typed guard that keeps old-format or foreign
    pages from being silently misread as postings.
    """
    if len(buffer) < HEADER_BYTES:
        raise PageFormatError(
            f"buffer of {len(buffer)} bytes is too short for a frame "
            f"header ({HEADER_BYTES} bytes)")
    (magic, version, _flags, count, first, last, length,
     delta_width, extent_width, level_width, _pad) = _HEADER.unpack_from(
        buffer, 0)
    if magic != FRAME_MAGIC:
        raise PageFormatError(
            f"bad posting-frame magic 0x{magic:04X} (expected "
            f"0x{FRAME_MAGIC:04X}); page is not in the compressed "
            "frame format")
    if version != FRAME_VERSION:
        raise PageFormatError(
            f"posting-frame version {version} is not supported "
            f"(this build reads version {FRAME_VERSION})")
    if delta_width not in (1, 2, 4) or extent_width not in (1, 2, 4) \
            or level_width not in (1, 2):
        raise PageFormatError(
            f"invalid column widths ({delta_width}, {extent_width}, "
            f"{level_width}) in frame header")
    expected = frame_bytes(count, delta_width, extent_width, level_width)
    if length != expected or length > len(buffer):
        raise PageFormatError(
            f"frame header declares {length} bytes but {count} "
            f"postings at widths ({delta_width}, {extent_width}, "
            f"{level_width}) need {expected} (buffer holds "
            f"{len(buffer)})")
    return FrameHeader(count, first, last, length,
                       delta_width, extent_width, level_width)


def _decode_column(buffer: memoryview, offset: int, count: int,
                   width: int) -> array:
    column = array(_TYPECODES[width])
    column.frombytes(buffer[offset:offset + count * width])
    if _BIG_ENDIAN:
        column.byteswap()
    return column


def unpack_frame(buffer: bytes | bytearray | memoryview
                 ) -> tuple[array, array, array]:
    """Decode one frame into ``(starts, ends, levels)`` arrays.

    ``starts``/``ends`` come back as uint32 arrays and ``levels`` as
    uint16 — the exact column types :class:`~repro.storage.postings.
    RegionBlock` bisects over.  The whole decode is bulk C: three
    ``frombytes``, one ``accumulate``, one ``map(add)``.
    """
    header = peek_header(buffer)
    view = memoryview(buffer)
    count = header.count
    if count == 0:
        return array("I"), array("I"), array("H")
    offset = HEADER_BYTES
    deltas = _decode_column(view, offset, count - 1, header.delta_width)
    offset += (count - 1) * header.delta_width
    extents = _decode_column(view, offset, count, header.extent_width)
    offset += count * header.extent_width
    levels = _decode_column(view, offset, count, header.level_width)
    starts = array("I", accumulate(deltas, initial=header.first_start))
    ends = array("I", map(add, starts, extents))
    if header.level_width != 2:
        levels = array("H", levels)
    return starts, ends, levels


def pack_frames(starts: Sequence[int], ends: Sequence[int],
                levels: Sequence[int],
                capacity: int = FRAME_CAPACITY) -> list[bytes]:
    """Greedily pack postings into page-sized frames.

    Each frame takes the longest prefix of the remaining postings
    whose encoding fits *capacity*; widths are recomputed per frame,
    so a chunk of small deltas is never forced wide by a distant
    outlier.
    """
    total = len(starts)
    frames: list[bytes] = []
    lo = 0
    while lo < total:
        # optimistic upper bound at the narrowest widths, then shrink
        # until the actual encoding fits
        hi = min(total, lo + (capacity - HEADER_BYTES) // 3 + 1)
        while hi > lo + 1:
            frame = pack_frame(starts, ends, levels, lo, hi)
            if len(frame) <= capacity:
                break
            # overshoot ratio tells how far to cut in one step
            keep = (capacity - HEADER_BYTES) * (hi - lo) \
                // max(len(frame) - HEADER_BYTES, 1)
            hi = max(lo + 1, min(hi - 1, lo + keep))
        else:
            frame = pack_frame(starts, ends, levels, lo, hi)
        if len(frame) > capacity:
            raise StorageError(
                f"single posting does not fit a {capacity}-byte frame")
        frames.append(frame)
        lo = hi
    return frames


def iter_chunks(frame: bytes) -> Iterator[tuple[int, int, int]]:
    """Decoded ``(start, end, level)`` triples of one frame (tests)."""
    starts, ends, levels = unpack_frame(frame)
    return zip(starts, ends, levels)
