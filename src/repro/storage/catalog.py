"""Database catalog: bootstrapping a database back from its pages.

Everything the storage layer keeps in memory — which pages belong to
the element store, which page chains hold each tag's postings — must
survive a restart for a file-backed database to be reopenable without
the original XML.  The catalog serializes that directory as JSON,
chunks it into records across a chain of catalog pages, and anchors
the chain at **page 0**, which :class:`repro.api.Database` reserves at
creation time.

Layout::

    page 0, record 0:   header JSON {"chunk_pages": [...], "chunks": n}
    chunk pages:        one record per chunk of the payload JSON

Re-persisting writes a fresh header into a rewritten page 0 and
allocates new chunk pages (old ones become garbage — a real system
would free-list them; this one documents the leak instead).
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.pages import Page

CATALOG_PAGE_ID = 0
_CHUNK_BYTES = 4000


def reserve_catalog_page(pool: BufferPool) -> None:
    """Allocate page 0 as the catalog anchor (fresh databases only)."""
    if pool.disk.page_count != 0:
        raise StorageError(
            "catalog page can only be reserved on an empty disk")
    page = pool.new_page()
    pool.unpin(page.page_id, dirty=True)
    pool.flush()


def write_catalog(pool: BufferPool, payload: dict[str, Any]) -> None:
    """Serialize *payload* into catalog pages anchored at page 0."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    chunks = [data[offset:offset + _CHUNK_BYTES]
              for offset in range(0, len(data), _CHUNK_BYTES)] or [b""]
    chunk_pages: list[int] = []
    for chunk in chunks:
        page = pool.new_page()
        page.insert(chunk)
        chunk_pages.append(page.page_id)
        pool.unpin(page.page_id, dirty=True)
    header = json.dumps({"chunk_pages": chunk_pages,
                         "chunks": len(chunks)}).encode("utf-8")
    # page 0 is rewritten wholesale: build a fresh image and write it
    # through the disk directly so stale catalog records disappear.
    anchor = Page(CATALOG_PAGE_ID)
    anchor.insert(header)
    pool.flush()
    pool.clear()
    pool.disk.write_page(anchor)


def read_catalog(pool: BufferPool) -> dict[str, Any]:
    """Load the catalog payload anchored at page 0."""
    anchor = pool.fetch(CATALOG_PAGE_ID)
    try:
        if anchor.slot_count == 0:
            raise StorageError("disk holds no catalog (page 0 empty)")
        header = json.loads(anchor.record(0).decode("utf-8"))
    finally:
        pool.unpin(CATALOG_PAGE_ID)
    parts: list[bytes] = []
    for page_id in header["chunk_pages"]:
        page = pool.fetch(page_id)
        try:
            parts.append(page.record(0))
        finally:
            pool.unpin(page_id)
    data = b"".join(parts)
    if not data:
        raise StorageError("catalog payload is empty")
    return json.loads(data.decode("utf-8"))
