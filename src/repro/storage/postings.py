"""Columnar posting blocks: the decode-once representation.

A :class:`RegionBlock` holds one full posting list in struct-of-arrays
form — parallel C-typed ``array`` columns of start/end/level that
``bisect`` can search without touching a Python object per probe —
together with the materialized :class:`~repro.document.node.Region`
objects and the single-binding match rows the block engine emits.

Blocks are built once per decode-cache epoch by
:meth:`~repro.storage.tagindex.TagIndex.scan_blocks` and then shared
across executions, so they are immutable by contract: consumers must
never mutate ``regions`` or ``rows`` in place (operators that filter
or reorder build fresh lists).
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence

from repro.document.node import Region


class RegionBlock:
    """One posting list in columnar form (parallel start/end/level)."""

    __slots__ = ("tag", "starts", "ends", "levels", "regions", "rows")

    def __init__(self, tag: str, starts: "array[int]",
                 ends: "array[int]", levels: "array[int]",
                 regions: list[Region]) -> None:
        self.tag = tag
        self.starts = starts
        self.ends = ends
        self.levels = levels
        self.regions = regions
        #: single-binding match rows, ready for the block engine
        self.rows: list[tuple[Region]] = [(region,) for region in regions]

    @classmethod
    def from_entries(cls, tag: str,
                     entries: Sequence[tuple[int, int, int]]
                     ) -> "RegionBlock":
        """Build from decoded ``(start, end, level)`` triples."""
        return cls(tag,
                   array("I", [entry[0] for entry in entries]),
                   array("I", [entry[1] for entry in entries]),
                   array("H", [entry[2] for entry in entries]),
                   [Region(start, end, level)
                    for start, end, level in entries])

    @classmethod
    def from_regions(cls, tag: str,
                     regions: Iterable[Region]) -> "RegionBlock":
        """Build from already-materialized regions (merged scans)."""
        region_list = list(regions)
        return cls(tag,
                   array("I", [region.start for region in region_list]),
                   array("I", [region.end for region in region_list]),
                   array("H", [region.level for region in region_list]),
                   region_list)

    def __len__(self) -> int:
        return len(self.regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self.regions)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"RegionBlock({self.tag!r}, {len(self.regions)} postings)"
