"""Columnar posting blocks: the decode-once representation.

A :class:`RegionBlock` holds one full posting list in struct-of-arrays
form — parallel C-typed ``array`` columns of start/end/level that
``bisect`` can search without touching a Python object per probe.

Blocks are **lazy**: only the packed columns are materialized at
decode time (10 bytes per posting).  The :class:`~repro.document.node.
Region` objects and the single-binding match rows the block engine
emits are built on first access and cached — operators that only
probe the packed columns (bisect skip-ahead, fence checks, merges)
never pay the ~10x per-posting object overhead, and a corpus whose
tags are decoded but not queried stays packed.

Blocks are built once per decode-cache epoch by
:meth:`~repro.storage.tagindex.TagIndex.scan_blocks` and then shared
across executions, so they are immutable by contract: consumers must
never mutate ``regions`` or ``rows`` in place (operators that filter
or reorder build fresh lists).
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence

from repro.document.node import Region

#: rough per-object heap costs used for resident-byte accounting
#: (measured on CPython 3.12: a slotted frozen Region and a 1-tuple,
#: plus the list slot that references each).
_REGION_BYTES = 64
_ROW_BYTES = 64
_LIST_SLOT_BYTES = 8


class RegionBlock:
    """One posting list in columnar form (parallel start/end/level)."""

    __slots__ = ("tag", "starts", "ends", "levels", "_regions", "_rows")

    def __init__(self, tag: str, starts: "array[int]",
                 ends: "array[int]", levels: "array[int]") -> None:
        self.tag = tag
        self.starts = starts
        self.ends = ends
        self.levels = levels
        self._regions: list[Region] | None = None
        self._rows: list[tuple[Region]] | None = None

    @property
    def regions(self) -> list[Region]:
        """Materialized :class:`Region` objects (built on first use)."""
        regions = self._regions
        if regions is None:
            regions = list(map(Region, self.starts, self.ends,
                               self.levels))
            self._regions = regions
        return regions

    @property
    def rows(self) -> list[tuple[Region]]:
        """Single-binding match rows, ready for the block engine."""
        rows = self._rows
        if rows is None:
            # zip(iterable) yields 1-tuples at C speed
            rows = list(zip(self.regions))
            self._rows = rows
        return rows

    @property
    def materialized(self) -> bool:
        """Whether regions/rows have been built (resident accounting)."""
        return self._regions is not None or self._rows is not None

    def packed_bytes(self) -> int:
        """Heap bytes held by the packed columns alone."""
        return sum(column.itemsize * len(column)
                   for column in (self.starts, self.ends, self.levels))

    def resident_bytes(self) -> int:
        """Estimated heap bytes this block currently keeps alive."""
        total = self.packed_bytes()
        if self._regions is not None:
            total += len(self._regions) * (_REGION_BYTES
                                           + _LIST_SLOT_BYTES)
        if self._rows is not None:
            total += len(self._rows) * (_ROW_BYTES + _LIST_SLOT_BYTES)
        return total

    @classmethod
    def from_columns(cls, tag: str, starts: "array[int]",
                     ends: "array[int]",
                     levels: "array[int]") -> "RegionBlock":
        """Adopt already-packed columns (the frame decode path)."""
        return cls(tag, starts, ends, levels)

    @classmethod
    def from_entries(cls, tag: str,
                     entries: Sequence[tuple[int, int, int]]
                     ) -> "RegionBlock":
        """Build from decoded ``(start, end, level)`` triples."""
        return cls(tag,
                   array("I", [entry[0] for entry in entries]),
                   array("I", [entry[1] for entry in entries]),
                   array("H", [entry[2] for entry in entries]))

    @classmethod
    def from_regions(cls, tag: str,
                     regions: Iterable[Region]) -> "RegionBlock":
        """Build from already-materialized regions (merged scans)."""
        region_list = list(regions)
        block = cls(tag,
                    array("I", [region.start for region in region_list]),
                    array("I", [region.end for region in region_list]),
                    array("H", [region.level for region in region_list]))
        block._regions = region_list
        return block

    def __len__(self) -> int:
        return len(self.starts)

    def __iter__(self) -> Iterator[Region]:
        return iter(self.regions)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"RegionBlock({self.tag!r}, {len(self.starts)} postings"
                f"{', packed' if not self.materialized else ''})")
