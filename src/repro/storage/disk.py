"""Disk managers: page-granularity persistence with I/O accounting.

Two implementations share the :class:`DiskManager` interface:

* :class:`InMemoryDisk` — a dict of page images; the default for tests
  and benchmarks.  "I/O" is still counted, which is what the cost model
  consumes.
* :class:`FileDisk` — a real file of 8 KiB pages, for persistence
  examples and to keep the storage layer honest about serialization.

Both count physical reads and writes in :class:`IOStats`; the buffer
pool sits on top and adds hit/miss accounting.
"""

from __future__ import annotations

import mmap
import os
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.pages import PAGE_SIZE, Page


@dataclass
class IOStats:
    """Physical I/O counters for one disk manager."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    #: subset of ``reads`` served as zero-copy views (mmap or
    #: in-memory buffer) instead of a page copy.
    view_reads: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.allocations = 0
        self.view_reads = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def snapshot(self) -> "IOStats":
        return IOStats(self.reads, self.writes, self.allocations,
                       self.view_reads)


class DiskManager:
    """Interface for page-granularity storage."""

    def __init__(self) -> None:
        self.stats = IOStats()

    def allocate(self) -> int:
        """Reserve a new page; returns its page id."""
        raise NotImplementedError

    def read_page(self, page_id: int) -> Page:
        raise NotImplementedError

    def read_view(self, page_id: int) -> memoryview | None:
        """A read-only view of the page's bytes, without a copy.

        Returns ``None`` when this manager cannot serve views (the
        caller then falls back to :meth:`read_page`); implementations
        that can — an mmap'd file, an in-memory image — return a
        :class:`memoryview` whose contents are a consistent snapshot
        of the page *at call time*.  Callers must treat the view as
        immutable and should decode promptly rather than hold it.
        """
        return None

    def write_page(self, page: Page) -> None:
        raise NotImplementedError

    @property
    def page_count(self) -> int:
        raise NotImplementedError

    def sync(self) -> None:
        """Force written pages to stable storage (fsync for files).

        Durability barrier for :meth:`repro.api.Database.persist` and
        the write-ahead log's checkpoint: after ``sync()`` returns,
        every completed :meth:`write_page` survives a crash.  In-memory
        disks have nothing to sync.
        """

    def extend_to(self, page_count: int) -> None:
        """Ensure pages ``0 .. page_count-1`` exist (recovery redo).

        Replaying a write-ahead log may reference pages the crashed
        writer allocated but never flushed; redo must be able to
        materialize them as zero pages before writing the logged
        images.
        """
        while self.page_count < page_count:
            self.allocate()

    def close(self) -> None:
        """Release resources; further use is an error for file disks."""


class InMemoryDisk(DiskManager):
    """Disk manager backed by a dict of page images."""

    def __init__(self) -> None:
        super().__init__()
        self._pages: dict[int, bytes] = {}
        self._next_page_id = 0

    def allocate(self) -> int:
        page_id = self._next_page_id
        self._next_page_id += 1
        self._pages[page_id] = bytes(PAGE_SIZE)
        self.stats.allocations += 1
        return page_id

    def read_page(self, page_id: int) -> Page:
        if page_id not in self._pages:
            raise StorageError(f"page {page_id} was never allocated")
        self.stats.reads += 1
        return Page(page_id, bytearray(self._pages[page_id]))

    def read_view(self, page_id: int) -> memoryview | None:
        image = self._pages.get(page_id)
        if image is None:
            raise StorageError(f"page {page_id} was never allocated")
        self.stats.reads += 1
        self.stats.view_reads += 1
        # page images are immutable bytes (write_page swaps the whole
        # object), so the view is a zero-copy consistent snapshot
        return memoryview(image)

    def write_page(self, page: Page) -> None:
        if page.page_id not in self._pages:
            raise StorageError(f"page {page.page_id} was never allocated")
        self.stats.writes += 1
        self._pages[page.page_id] = page.to_bytes()
        page.dirty = False

    @property
    def page_count(self) -> int:
        return self._next_page_id


class FileDisk(DiskManager):
    """Disk manager backed by a single file of fixed-size pages.

    With ``mmap_reads`` (the default) the file is also mapped
    read-only and :meth:`read_view` serves pages as zero-copy
    ``memoryview`` slices of the mapping; the map is rebuilt lazily
    whenever the file has grown past it.  Buffered writes are flushed
    to the OS before a view is handed out, so a view always reflects
    every completed :meth:`write_page` (the mapping shares the kernel
    page cache with the write path).
    """

    def __init__(self, path: str | os.PathLike[str],
                 mmap_reads: bool = True) -> None:
        super().__init__()
        self._path = os.fspath(path)
        exists = os.path.exists(self._path)
        self._file = open(self._path, "r+b" if exists else "w+b")
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % PAGE_SIZE:
            raise StorageError(
                f"{self._path} is not a whole number of pages")
        self._next_page_id = size // PAGE_SIZE
        self._closed = False
        self._mmap_reads = mmap_reads
        self._map: mmap.mmap | None = None
        self._map_pages = 0
        self._flushed = True

    def allocate(self) -> int:
        self._check_open()
        page_id = self._next_page_id
        self._next_page_id += 1
        self._file.seek(page_id * PAGE_SIZE)
        self._file.write(bytes(PAGE_SIZE))
        self.stats.allocations += 1
        self._flushed = False
        return page_id

    def read_page(self, page_id: int) -> Page:
        self._check_open()
        if not 0 <= page_id < self._next_page_id:
            raise StorageError(f"page {page_id} was never allocated")
        self._file.seek(page_id * PAGE_SIZE)
        data = self._file.read(PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            # a truncated file must never yield an undersized buffer
            # that downstream code would misread as an empty page
            raise StorageError(
                f"short read on page {page_id}: got {len(data)} of "
                f"{PAGE_SIZE} bytes ({self._path} is truncated)")
        self.stats.reads += 1
        return Page(page_id, bytearray(data))

    def write_page(self, page: Page) -> None:
        self._check_open()
        if not 0 <= page.page_id < self._next_page_id:
            raise StorageError(f"page {page.page_id} was never allocated")
        self._file.seek(page.page_id * PAGE_SIZE)
        self._file.write(page.to_bytes())
        self.stats.writes += 1
        self._flushed = False
        page.dirty = False

    def read_view(self, page_id: int) -> memoryview | None:
        self._check_open()
        if not self._mmap_reads:
            return None
        if not 0 <= page_id < self._next_page_id:
            raise StorageError(f"page {page_id} was never allocated")
        if not self._flushed:
            # push buffered writes into the page cache the map reads
            self._file.flush()
            self._flushed = True
        if page_id >= self._map_pages:
            self._remap()
            if page_id >= self._map_pages:  # pragma: no cover - race guard
                return None
        self.stats.reads += 1
        self.stats.view_reads += 1
        offset = page_id * PAGE_SIZE
        return memoryview(self._map)[offset:offset + PAGE_SIZE]

    def _remap(self) -> None:
        size = os.fstat(self._file.fileno()).st_size
        pages = size // PAGE_SIZE
        if pages == self._map_pages:
            return
        self._drop_map()
        if pages:
            self._map = mmap.mmap(self._file.fileno(),
                                  pages * PAGE_SIZE,
                                  access=mmap.ACCESS_READ)
            self._map_pages = pages

    def _drop_map(self) -> None:
        if self._map is not None:
            # exported memoryviews keep the old map's buffer alive;
            # close() on an exported mmap raises, so just drop the
            # reference and let refcounting reclaim it
            try:
                self._map.close()
            except BufferError:
                pass
            self._map = None
            self._map_pages = 0

    @property
    def page_count(self) -> int:
        return self._next_page_id

    def sync(self) -> None:
        self._check_open()
        self._file.flush()
        self._flushed = True
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._closed:
            self._drop_map()
            self._file.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("disk manager is closed")

    def __enter__(self) -> "FileDisk":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
