"""Tag index: tag name -> paged posting list of region encodings.

This is the access method behind the paper's "index access" operation
(cost ``f_I * n`` for retrieving *n* items, Sec. 2.2.2).  Each posting
entry carries the full region encoding ``(start, end, level)`` plus the
node id, so a structural join can run off index output alone; the
element store is consulted only when a value predicate needs the
element's text or attributes.

Posting lists are stored in pages (one chain of pages per tag, entries
in document order) and read back through the buffer pool, so every
index scan is visible to the I/O counters.

Two read paths exist:

* :meth:`TagIndex.scan` — the tuple engine's iterator: fetches pages
  and unpacks one entry per ``next()``.
* :meth:`TagIndex.scan_blocks` — the block engine's columnar path:
  decodes each page of a chain exactly once (``_ENTRY.iter_unpack``
  over the page's concatenated records) into a
  :class:`~repro.storage.postings.RegionBlock` and caches the block
  until the index mutates.  ``decode_epoch`` counts those
  invalidations; :meth:`~repro.api.Database.reload` discards the whole
  index, so stale blocks can never serve a reloaded document.
"""

from __future__ import annotations

import struct
from operator import attrgetter
from typing import Iterable, Iterator

from repro.errors import StorageError
from repro.document.document import XmlDocument
from repro.document.node import NodeRecord, Region
from repro.storage.buffer import BufferPool
from repro.storage.postings import RegionBlock

_ENTRY = struct.Struct("<IIH")


class TagIndex:
    """Inverted index from element tag to its document-ordered postings."""

    def __init__(self, pool: BufferPool) -> None:
        self.pool = pool
        # tag -> list of page ids holding that tag's postings, in order.
        self._page_chains: dict[str, list[int]] = {}
        self._counts: dict[str, int] = {}
        # tail page of each tag's chain, for appends.
        self._tail: dict[str, int] = {}
        # sorted tag listing, rebuilt only when a chain appears.
        self._sorted_tags: tuple[str, ...] | None = None
        # decoded posting blocks, per tag plus the all-tags merge.
        self._blocks: dict[str, RegionBlock] = {}
        self._merged_block: RegionBlock | None = None
        #: bumped whenever cached decoded blocks are invalidated.
        self.decode_epoch = 0

    # -- build --------------------------------------------------------------

    def index_document(self, document: XmlDocument) -> None:
        """Add every element of *document* to the index."""
        self.add_many(document)
        self.pool.flush()

    def add(self, node: NodeRecord) -> None:
        """Append one posting.  Nodes must arrive in document order."""
        self.add_many((node,))

    def add_many(self, nodes: Iterable[NodeRecord]) -> int:
        """Append postings in bulk; returns the number added.

        The tail page of the active tag stays pinned across consecutive
        postings of the same tag, so a bulk build pays one buffer-pool
        round trip per page transition instead of one per posting.
        Document order is still enforced per tag, and any cached
        decoded block of a touched tag is invalidated.
        """
        added = 0
        tag: str | None = None
        page = None  # pinned tail page of `tag` while the run lasts
        last_start = -1
        try:
            for node in nodes:
                if node.tag != tag:
                    if page is not None:
                        self.pool.unpin(page.page_id, dirty=True)
                        page = None
                    tag = node.tag
                    tail_id = self._tail.get(tag)
                    if tail_id is not None:
                        page = self.pool.fetch(tail_id)
                        last = page.record(page.slot_count - 1)
                        last_start = _ENTRY.unpack(last)[0]
                    else:
                        last_start = -1
                if last_start >= node.start:
                    raise StorageError(
                        "postings must be added in document order")
                payload = _ENTRY.pack(node.start, node.end, node.level)
                if page is not None and page.free_space < len(payload):
                    self.pool.unpin(page.page_id, dirty=True)
                    page = None
                if page is None:
                    page = self.pool.new_page()
                    chain = self._page_chains.setdefault(tag, [])
                    if not chain:
                        self._sorted_tags = None
                    chain.append(page.page_id)
                    self._tail[tag] = page.page_id
                page.insert(payload)
                last_start = node.start
                self._counts[tag] = self._counts.get(tag, 0) + 1
                if self._blocks or self._merged_block is not None:
                    self._blocks.pop(tag, None)
                    self._merged_block = None
                added += 1
        finally:
            if page is not None:
                self.pool.unpin(page.page_id, dirty=True)
        if added:
            self.decode_epoch += 1
        return added

    # -- read ----------------------------------------------------------------

    def tags(self) -> list[str]:
        if self._sorted_tags is None:
            self._sorted_tags = tuple(sorted(self._page_chains))
        return list(self._sorted_tags)

    def count(self, tag: str) -> int:
        """Number of postings for *tag* (0 if absent)."""
        return self._counts.get(tag, 0)

    def scan(self, tag: str) -> Iterator[Region]:
        """Yield the postings of *tag* in document order."""
        for page_id in self._page_chains.get(tag, ()):
            page = self.pool.fetch(page_id)
            try:
                payloads = page.records()
            finally:
                self.pool.unpin(page_id)
            for payload in payloads:
                start, end, level = _ENTRY.unpack(payload)
                yield Region(start, end, level)

    def scan_blocks(self, tag: str) -> RegionBlock:
        """The postings of *tag* as one cached columnar block.

        The first call per epoch decodes the tag's page chain — each
        page read once, all entries unpacked in one
        ``_ENTRY.iter_unpack`` pass — and caches the result; later
        calls return the same block without touching the pool.
        """
        block = self._blocks.get(tag)
        if block is None:
            block = self._decode_chain(tag)
            self._blocks[tag] = block
        return block

    def scan_blocks_all(self) -> RegionBlock:
        """All postings of every tag, merged in document order.

        This is the wildcard-scan candidate set; the merge is cached
        alongside the per-tag blocks.
        """
        if self._merged_block is None:
            regions: list[Region] = []
            for tag in self.tags():
                regions.extend(self.scan_blocks(tag).regions)
            regions.sort(key=attrgetter("start"))
            self._merged_block = RegionBlock.from_regions("*", regions)
        return self._merged_block

    def _decode_chain(self, tag: str) -> RegionBlock:
        entries: list[tuple[int, int, int]] = []
        for page_id in self._page_chains.get(tag, ()):
            page = self.pool.fetch(page_id)
            try:
                payload = b"".join(page.records())
            finally:
                self.pool.unpin(page_id)
            entries.extend(_ENTRY.iter_unpack(payload))
        return RegionBlock.from_entries(tag, entries)

    def regions(self, tag: str) -> list[Region]:
        """The full posting list of *tag* as a list."""
        return list(self.scan(tag))

    def chains(self) -> dict[str, list[int]]:
        """Per-tag page chains (persisted in the catalog)."""
        return {tag: list(chain)
                for tag, chain in self._page_chains.items()}

    def counts(self) -> dict[str, int]:
        """Per-tag posting counts (persisted in the catalog)."""
        return dict(self._counts)

    # -- mutation (transactional write path) --------------------------------

    def clone_for_write(self) -> "TagIndex":
        """A copy-on-write clone for a transaction to mutate.

        Page chains are shared until :meth:`apply_edits` repacks a
        touched run into fresh pages; untouched tags keep their pages
        *and* their cached decoded blocks.  The clone's tail map is
        emptied so a stray :meth:`add_many` can never write into a page
        the published index still references.
        """
        clone = TagIndex(self.pool)
        clone._page_chains = {tag: list(chain)
                              for tag, chain in self._page_chains.items()}
        clone._counts = dict(self._counts)
        clone._tail = {}
        clone._blocks = dict(self._blocks)
        clone._merged_block = self._merged_block
        clone.decode_epoch = self.decode_epoch
        return clone

    def apply_edits(
            self,
            edits: dict[str, tuple[set[int], list[tuple[int, int, int]]]],
    ) -> None:
        """Splice per-tag posting edits, copy-on-write.

        ``edits`` maps each touched tag to ``(removed_starts,
        added_entries)`` where entries are ``(start, end, level)``
        tuples.  For each tag the page run covering the edited key
        range is located via first-entry fences, decoded, spliced, and
        repacked into *fresh* pages; pages outside the run — and every
        page of an untouched tag — are shared with the pre-edit index,
        so snapshots taken before the edit keep reading a consistent
        chain.
        """
        for tag, (removed_starts, added_entries) in edits.items():
            if not removed_starts and not added_entries:
                continue
            self._splice_tag(tag, set(removed_starts),
                             sorted(added_entries))
            self._blocks.pop(tag, None)
            self._merged_block = None
            self._sorted_tags = None
        self.decode_epoch += 1

    def _splice_tag(self, tag: str, removed: set[int],
                    added: list[tuple[int, int, int]]) -> None:
        chain = self._page_chains.get(tag, [])
        if chain:
            fences = self._fences(chain)
            bounds = [key for key in removed]
            bounds.extend(entry[0] for entry in added)
            lo, hi = min(bounds), max(bounds)
            # first page whose key range may reach lo: the last fence
            # at or below it (an insert before a page's first key goes
            # on the preceding page to keep the chain sorted).
            first = 0
            for index, fence in enumerate(fences):
                if fence <= lo:
                    first = index
                else:
                    break
            last = first
            for index in range(first + 1, len(fences)):
                if fences[index] <= hi:
                    last = index
                else:
                    break
            run = chain[first:last + 1]
        else:
            fences = []
            first, last, run = 0, -1, []
        entries: list[tuple[int, int, int]] = []
        for page_id in run:
            page = self.pool.fetch(page_id)
            try:
                payload = b"".join(page.records())
            finally:
                self.pool.unpin(page_id)
            entries.extend(_ENTRY.iter_unpack(payload))
        kept = [entry for entry in entries if entry[0] not in removed]
        if len(entries) - len(kept) != len(removed):
            found = {entry[0] for entry in entries} & removed
            raise StorageError(
                f"tag {tag!r}: {len(removed) - len(found)} posting(s) "
                "to remove not found in the spliced run")
        merged = sorted(kept + added)
        for previous, current in zip(merged, merged[1:]):
            if previous[0] == current[0]:
                raise StorageError(
                    f"tag {tag!r}: duplicate posting start {current[0]}")
        fresh = self._pack_entries(merged)
        new_chain = chain[:first] + fresh + chain[last + 1:]
        if new_chain:
            self._page_chains[tag] = new_chain
            self._tail[tag] = new_chain[-1]
            self._counts[tag] = (self._counts.get(tag, 0)
                                 + len(added) - len(removed))
        else:
            self._page_chains.pop(tag, None)
            self._tail.pop(tag, None)
            self._counts.pop(tag, None)

    def _fences(self, chain: list[int]) -> list[int]:
        """First-entry start of every page in *chain*."""
        fences = []
        for page_id in chain:
            page = self.pool.fetch(page_id)
            try:
                fences.append(_ENTRY.unpack(page.record(0))[0])
            finally:
                self.pool.unpin(page_id)
        return fences

    def _pack_entries(self,
                      entries: list[tuple[int, int, int]]) -> list[int]:
        """Write *entries* into freshly allocated pages; return their ids."""
        page_ids: list[int] = []
        page = None
        try:
            for entry in entries:
                payload = _ENTRY.pack(*entry)
                if page is not None and page.free_space < len(payload):
                    self.pool.unpin(page.page_id, dirty=True)
                    page = None
                if page is None:
                    page = self.pool.new_page()
                    page_ids.append(page.page_id)
                page.insert(payload)
        finally:
            if page is not None:
                self.pool.unpin(page.page_id, dirty=True)
        return page_ids

    @classmethod
    def attach(cls, pool: BufferPool, chains: dict[str, list[int]],
               counts: dict[str, int]) -> "TagIndex":
        """Rebuild an index from its catalog entry (database reopen)."""
        index = cls(pool)
        index._page_chains = {tag: list(chain)
                              for tag, chain in chains.items()}
        index._counts = dict(counts)
        index._tail = {tag: chain[-1]
                       for tag, chain in chains.items() if chain}
        return index

    def page_count(self, tag: str | None = None) -> int:
        """Pages used by one tag's chain, or by the whole index."""
        if tag is not None:
            return len(self._page_chains.get(tag, ()))
        return sum(len(chain) for chain in self._page_chains.values())
