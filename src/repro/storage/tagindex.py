"""Tag index: tag name -> paged posting list of region encodings.

This is the access method behind the paper's "index access" operation
(cost ``f_I * n`` for retrieving *n* items, Sec. 2.2.2).  Each posting
entry carries the full region encoding ``(start, end, level)``, so a
structural join can run off index output alone; the element store is
consulted only when a value predicate needs the element's text or
attributes.

Posting lists are stored as **compressed columnar frames** (one frame
per page, delta-encoded and byte-packed — see
:mod:`repro.storage.frames`), one chain of pages per tag with entries
in document order.  Pages are read through the buffer pool's
zero-copy :meth:`~repro.storage.buffer.BufferPool.fetch_view`, so
every index scan is visible to the I/O counters while a cold decode
touches the page bytes exactly once (no record lists, no per-entry
unpack).

Two read paths exist:

* :meth:`TagIndex.scan` — the tuple engine's iterator: decodes one
  page at a time and yields a :class:`Region` per entry.
* :meth:`TagIndex.scan_blocks` — the block engine's columnar path:
  bulk-decodes each page of a chain exactly once into a *lazy*
  :class:`~repro.storage.postings.RegionBlock` (packed columns only;
  Region objects and match rows materialize on demand) and caches the
  block until the index mutates.  ``decode_epoch`` counts those
  invalidations; :meth:`~repro.api.Database.reload` discards the whole
  index, so stale blocks can never serve a reloaded document.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator

from repro.errors import StorageError
from repro.document.document import XmlDocument
from repro.document.node import NodeRecord, Region
from repro.storage.buffer import BufferPool
from repro.storage.frames import (FrameHeader, pack_frames, peek_header,
                                  unpack_frame)
from repro.storage.pages import PAGE_SIZE
from repro.storage.postings import RegionBlock

#: tail frames at or above this fill fraction are left alone on
#: append — new postings start a fresh page instead of a repack.
_TAIL_MERGE_FILL = 0.9


class TagIndex:
    """Inverted index from element tag to its document-ordered postings."""

    def __init__(self, pool: BufferPool) -> None:
        self.pool = pool
        # tag -> list of page ids holding that tag's postings, in order.
        self._page_chains: dict[str, list[int]] = {}
        self._counts: dict[str, int] = {}
        # sorted tag listing, rebuilt only when a chain appears.
        self._sorted_tags: tuple[str, ...] | None = None
        # decoded posting blocks, per tag plus the all-tags merge.
        self._blocks: dict[str, RegionBlock] = {}
        self._merged_block: RegionBlock | None = None
        # per-tag compressed bytes on disk, filled lazily from frame
        # headers and dropped whenever the tag's chain changes.
        self._compressed: dict[str, int] = {}
        # False on copy-on-write clones: their chains share pages with
        # the published index, so appends must never repack a tail
        # page in place.
        self._mergeable_tail = True
        #: bumped whenever cached decoded blocks are invalidated.
        self.decode_epoch = 0

    # -- build --------------------------------------------------------------

    def index_document(self, document: XmlDocument) -> None:
        """Add every element of *document* to the index."""
        self.add_many(document)
        self.pool.flush()

    def add(self, node: NodeRecord) -> None:
        """Append one posting.  Nodes must arrive in document order."""
        self.add_many((node,))

    def add_many(self, nodes: Iterable[NodeRecord]) -> int:
        """Append postings in bulk; returns the number added.

        Postings are buffered per tag for the duration of the call and
        flushed as compressed frames in one pass per touched tag: a
        document build repacks each tag's tail frame at most once
        instead of once per posting.  Document order is still enforced
        per tag — against the tail frame's max-start fence for the
        first new posting (one header peek, no decode) — and any
        cached decoded block of a touched tag is invalidated.  A
        rejected posting aborts the whole call before any page is
        touched.
        """
        pending: dict[str, tuple[list[int], list[int], list[int]]] = {}
        last_start: dict[str, int] = {}
        for node in nodes:
            tag = node.tag
            last = last_start.get(tag)
            if last is None:
                last = self._tail_fence(tag)
            if last >= node.start:
                raise StorageError(
                    "postings must be added in document order")
            run = pending.get(tag)
            if run is None:
                run = pending[tag] = ([], [], [])
            run[0].append(node.start)
            run[1].append(node.end)
            run[2].append(node.level)
            last_start[tag] = node.start
        added = 0
        for tag, (starts, ends, levels) in pending.items():
            self._append_tag(tag, starts, ends, levels)
            self._counts[tag] = self._counts.get(tag, 0) + len(starts)
            if self._blocks or self._merged_block is not None:
                self._blocks.pop(tag, None)
                self._merged_block = None
            added += len(starts)
        if added:
            self.decode_epoch += 1
        return added

    def _tail_fence(self, tag: str) -> int:
        """Max start already stored for *tag* (-1 if none)."""
        chain = self._page_chains.get(tag)
        if not chain:
            return -1
        header = self._header(chain[-1])
        return header.max_start if header.count else -1

    def _header(self, page_id: int) -> FrameHeader:
        """One page's frame header (fences, count, byte length)."""
        return peek_header(self.pool.fetch_view(page_id))

    def _append_tag(self, tag: str, starts: list[int], ends: list[int],
                    levels: list[int]) -> None:
        """Flush one tag's buffered postings into its chain.

        The tail frame is merged and repacked unless it is already
        nearly full; repacked and overflow frames land in the tail
        page plus however many fresh pages the packing needs.
        """
        chain = self._page_chains.setdefault(tag, [])
        if not chain:
            self._sorted_tags = None
        tail_id = None
        if chain and self._mergeable_tail:
            header = self._header(chain[-1])
            if header.length < PAGE_SIZE * _TAIL_MERGE_FILL:
                tail_id = chain[-1]
                old_starts, old_ends, old_levels = unpack_frame(
                    self.pool.fetch_view(tail_id))
                old_starts.extend(starts)
                old_ends.extend(ends)
                old_levels.extend(levels)
                starts, ends, levels = old_starts, old_ends, old_levels
        frames = pack_frames(starts, ends, levels)
        for index, frame in enumerate(frames):
            if index == 0 and tail_id is not None:
                page = self.pool.fetch(tail_id)
            else:
                page = self.pool.new_page()
                chain.append(page.page_id)
            self._store_frame(page, frame)
        self._compressed.pop(tag, None)

    def _store_frame(self, page, frame: bytes) -> None:
        """Write *frame* at the front of a pinned page and release it."""
        page.data[:len(frame)] = frame
        if len(frame) < PAGE_SIZE:
            page.data[len(frame):] = bytes(PAGE_SIZE - len(frame))
        self.pool.unpin(page.page_id, dirty=True)

    # -- read ----------------------------------------------------------------

    def tags(self) -> list[str]:
        if self._sorted_tags is None:
            self._sorted_tags = tuple(sorted(self._page_chains))
        return list(self._sorted_tags)

    def count(self, tag: str) -> int:
        """Number of postings for *tag* (0 if absent)."""
        return self._counts.get(tag, 0)

    def scan(self, tag: str) -> Iterator[Region]:
        """Yield the postings of *tag* in document order."""
        for page_id in self._page_chains.get(tag, ()):
            starts, ends, levels = unpack_frame(
                self.pool.fetch_view(page_id))
            yield from map(Region, starts, ends, levels)

    def scan_blocks(self, tag: str) -> RegionBlock:
        """The postings of *tag* as one cached columnar block.

        The first call per epoch decodes the tag's page chain — each
        page read once as a zero-copy view, each frame bulk-unpacked
        into packed columns — and caches the (lazy) block; later
        calls return the same block without touching the pool.
        """
        block = self._blocks.get(tag)
        if block is None:
            block = self._decode_chain(tag)
            self._blocks[tag] = block
        return block

    def scan_blocks_all(self) -> RegionBlock:
        """All postings of every tag, merged in document order.

        This is the wildcard-scan candidate set; the merge runs over
        the packed columns (an index argsort on the start column) —
        no Region is materialized — and is cached alongside the
        per-tag blocks.
        """
        if self._merged_block is None:
            starts = array("I")
            ends = array("I")
            levels = array("H")
            for tag in self.tags():
                block = self.scan_blocks(tag)
                starts.extend(block.starts)
                ends.extend(block.ends)
                levels.extend(block.levels)
            order = sorted(range(len(starts)), key=starts.__getitem__)
            self._merged_block = RegionBlock.from_columns(
                "*",
                array("I", map(starts.__getitem__, order)),
                array("I", map(ends.__getitem__, order)),
                array("H", map(levels.__getitem__, order)))
        return self._merged_block

    def _decode_chain(self, tag: str) -> RegionBlock:
        chain = self._page_chains.get(tag, ())
        if len(chain) == 1:
            starts, ends, levels = unpack_frame(
                self.pool.fetch_view(chain[0]))
            return RegionBlock.from_columns(tag, starts, ends, levels)
        starts = array("I")
        ends = array("I")
        levels = array("H")
        for page_id in chain:
            page_starts, page_ends, page_levels = unpack_frame(
                self.pool.fetch_view(page_id))
            starts.extend(page_starts)
            ends.extend(page_ends)
            levels.extend(page_levels)
        return RegionBlock.from_columns(tag, starts, ends, levels)

    def drop_caches(self) -> None:
        """Discard every cached decoded block (cold-start simulation).

        Benchmarks use this to measure the decode-inclusive cost of a
        first query; the epoch bump keeps any block handed out earlier
        distinguishable from a re-decode.
        """
        self._blocks.clear()
        self._merged_block = None
        self.decode_epoch += 1

    def regions(self, tag: str) -> list[Region]:
        """The full posting list of *tag* as a list."""
        return list(self.scan(tag))

    def chains(self) -> dict[str, list[int]]:
        """Per-tag page chains (persisted in the catalog)."""
        return {tag: list(chain)
                for tag, chain in self._page_chains.items()}

    def counts(self) -> dict[str, int]:
        """Per-tag posting counts (persisted in the catalog)."""
        return dict(self._counts)

    # -- mutation (transactional write path) --------------------------------

    def clone_for_write(self) -> "TagIndex":
        """A copy-on-write clone for a transaction to mutate.

        Page chains are shared until :meth:`apply_edits` repacks a
        touched run into fresh pages; untouched tags keep their pages
        *and* their cached decoded blocks.  The clone's tail frames
        are marked non-mergeable, so a stray :meth:`add_many` can
        never rewrite a page the published index still references.
        """
        clone = TagIndex(self.pool)
        clone._page_chains = {tag: list(chain)
                              for tag, chain in self._page_chains.items()}
        clone._counts = dict(self._counts)
        clone._blocks = dict(self._blocks)
        clone._merged_block = self._merged_block
        clone._compressed = dict(self._compressed)
        clone._mergeable_tail = False
        clone.decode_epoch = self.decode_epoch
        return clone

    def apply_edits(
            self,
            edits: dict[str, tuple[set[int], list[tuple[int, int, int]]]],
    ) -> None:
        """Splice per-tag posting edits, copy-on-write.

        ``edits`` maps each touched tag to ``(removed_starts,
        added_entries)`` where entries are ``(start, end, level)``
        tuples.  For each tag the page run covering the edited key
        range is located via the frames' min-start fences, decoded,
        spliced, and repacked into *fresh* pages; pages outside the
        run — and every page of an untouched tag — are shared with the
        pre-edit index, so snapshots taken before the edit keep
        reading a consistent chain.
        """
        for tag, (removed_starts, added_entries) in edits.items():
            if not removed_starts and not added_entries:
                continue
            self._splice_tag(tag, set(removed_starts),
                             sorted(added_entries))
            self._blocks.pop(tag, None)
            self._merged_block = None
            self._sorted_tags = None
            self._compressed.pop(tag, None)
        self.decode_epoch += 1

    def _splice_tag(self, tag: str, removed: set[int],
                    added: list[tuple[int, int, int]]) -> None:
        chain = self._page_chains.get(tag, [])
        if chain:
            fences = self._fences(chain)
            bounds = [key for key in removed]
            bounds.extend(entry[0] for entry in added)
            lo, hi = min(bounds), max(bounds)
            # first page whose key range may reach lo: the last fence
            # at or below it (an insert before a page's first key goes
            # on the preceding page to keep the chain sorted).
            first = 0
            for index, fence in enumerate(fences):
                if fence <= lo:
                    first = index
                else:
                    break
            last = first
            for index in range(first + 1, len(fences)):
                if fences[index] <= hi:
                    last = index
                else:
                    break
            run = chain[first:last + 1]
        else:
            first, last, run = 0, -1, []
        entries: list[tuple[int, int, int]] = []
        for page_id in run:
            starts, ends, levels = unpack_frame(
                self.pool.fetch_view(page_id))
            entries.extend(zip(starts, ends, levels))
        kept = [entry for entry in entries if entry[0] not in removed]
        if len(entries) - len(kept) != len(removed):
            found = {entry[0] for entry in entries} & removed
            raise StorageError(
                f"tag {tag!r}: {len(removed) - len(found)} posting(s) "
                "to remove not found in the spliced run")
        merged = sorted(kept + added)
        for previous, current in zip(merged, merged[1:]):
            if previous[0] == current[0]:
                raise StorageError(
                    f"tag {tag!r}: duplicate posting start {current[0]}")
        fresh = self._pack_entries(merged)
        new_chain = chain[:first] + fresh + chain[last + 1:]
        if new_chain:
            self._page_chains[tag] = new_chain
            self._counts[tag] = (self._counts.get(tag, 0)
                                 + len(added) - len(removed))
        else:
            self._page_chains.pop(tag, None)
            self._counts.pop(tag, None)

    def _fences(self, chain: list[int]) -> list[int]:
        """Min-start fence of every page in *chain* (header peeks)."""
        return [self._header(page_id).first_start for page_id in chain]

    def _pack_entries(self,
                      entries: list[tuple[int, int, int]]) -> list[int]:
        """Write *entries* into freshly allocated frame pages."""
        starts = array("I", (entry[0] for entry in entries))
        ends = array("I", (entry[1] for entry in entries))
        levels = array("H", (entry[2] for entry in entries))
        page_ids: list[int] = []
        for frame in pack_frames(starts, ends, levels):
            page = self.pool.new_page()
            page_ids.append(page.page_id)
            self._store_frame(page, frame)
        return page_ids

    @classmethod
    def attach(cls, pool: BufferPool, chains: dict[str, list[int]],
               counts: dict[str, int]) -> "TagIndex":
        """Rebuild an index from its catalog entry (database reopen)."""
        index = cls(pool)
        index._page_chains = {tag: list(chain)
                              for tag, chain in chains.items()}
        index._counts = dict(counts)
        return index

    # -- accounting ----------------------------------------------------------

    def page_count(self, tag: str | None = None) -> int:
        """Pages used by one tag's chain, or by the whole index."""
        if tag is not None:
            return len(self._page_chains.get(tag, ()))
        return sum(len(chain) for chain in self._page_chains.values())

    def compressed_bytes(self, tag: str | None = None) -> int:
        """Frame bytes on disk for one tag's chain (or the index).

        Read from frame headers — one header peek per page on first
        use, cached until the tag's chain changes.
        """
        if tag is not None:
            cached = self._compressed.get(tag)
            if cached is None:
                cached = sum(self._header(page_id).length
                             for page_id in
                             self._page_chains.get(tag, ()))
                self._compressed[tag] = cached
            return cached
        return sum(self.compressed_bytes(name)
                   for name in self._page_chains)

    def decoded_bytes(self, tag: str | None = None) -> int:
        """Heap bytes held by cached decoded blocks (0 if not decoded)."""
        if tag is not None:
            block = self._blocks.get(tag)
            return block.resident_bytes() if block is not None else 0
        total = sum(block.resident_bytes()
                    for block in self._blocks.values())
        if self._merged_block is not None:
            total += self._merged_block.resident_bytes()
        return total

    def storage_stats(self) -> dict[str, object]:
        """Compression and residency accounting for diagnostics.

        ``per_tag`` maps each tag to its posting count, page count,
        compressed bytes on disk, and the decoded block's resident
        bytes (0 while the tag's block is not cached; grows when a
        consumer materializes Region objects or match rows).
        """
        per_tag = {}
        for tag in self.tags():
            block = self._blocks.get(tag)
            per_tag[tag] = {
                "postings": self._counts.get(tag, 0),
                "pages": len(self._page_chains.get(tag, ())),
                "compressed_bytes": self.compressed_bytes(tag),
                "decoded_bytes": (block.resident_bytes()
                                  if block is not None else 0),
                "materialized": (block.materialized
                                 if block is not None else False),
            }
        return {
            "per_tag": per_tag,
            "compressed_bytes": sum(entry["compressed_bytes"]
                                    for entry in per_tag.values()),
            "decoded_bytes": self.decoded_bytes(),
            "decoded_tags": len(self._blocks),
            "decode_epoch": self.decode_epoch,
        }
