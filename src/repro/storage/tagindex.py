"""Tag index: tag name -> paged posting list of region encodings.

This is the access method behind the paper's "index access" operation
(cost ``f_I * n`` for retrieving *n* items, Sec. 2.2.2).  Each posting
entry carries the full region encoding ``(start, end, level)`` plus the
node id, so a structural join can run off index output alone; the
element store is consulted only when a value predicate needs the
element's text or attributes.

Posting lists are stored in pages (one chain of pages per tag, entries
in document order) and read back through the buffer pool, so every
index scan is visible to the I/O counters.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import StorageError
from repro.document.document import XmlDocument
from repro.document.node import NodeRecord, Region
from repro.storage.buffer import BufferPool

_ENTRY = struct.Struct("<IIH")


class TagIndex:
    """Inverted index from element tag to its document-ordered postings."""

    def __init__(self, pool: BufferPool) -> None:
        self.pool = pool
        # tag -> list of page ids holding that tag's postings, in order.
        self._page_chains: dict[str, list[int]] = {}
        self._counts: dict[str, int] = {}
        # tail page of each tag's chain, for appends.
        self._tail: dict[str, int] = {}

    # -- build --------------------------------------------------------------

    def index_document(self, document: XmlDocument) -> None:
        """Add every element of *document* to the index."""
        for node in document:
            self.add(node)
        self.pool.flush()

    def add(self, node: NodeRecord) -> None:
        """Append one posting.  Nodes must arrive in document order."""
        payload = _ENTRY.pack(node.start, node.end, node.level)
        tag = node.tag
        tail_id = self._tail.get(tag)
        if tail_id is not None:
            page = self.pool.fetch(tail_id)
            if page.free_space >= len(payload):
                last = page.record(page.slot_count - 1)
                if _ENTRY.unpack(last)[0] >= node.start:
                    self.pool.unpin(tail_id)
                    raise StorageError(
                        "postings must be added in document order")
                page.insert(payload)
                self.pool.unpin(tail_id, dirty=True)
                self._counts[tag] += 1
                return
            self.pool.unpin(tail_id)
        page = self.pool.new_page()
        page.insert(payload)
        self.pool.unpin(page.page_id, dirty=True)
        self._page_chains.setdefault(tag, []).append(page.page_id)
        self._tail[tag] = page.page_id
        self._counts[tag] = self._counts.get(tag, 0) + 1

    # -- read ----------------------------------------------------------------

    def tags(self) -> list[str]:
        return sorted(self._page_chains)

    def count(self, tag: str) -> int:
        """Number of postings for *tag* (0 if absent)."""
        return self._counts.get(tag, 0)

    def scan(self, tag: str) -> Iterator[Region]:
        """Yield the postings of *tag* in document order."""
        for page_id in self._page_chains.get(tag, ()):
            page = self.pool.fetch(page_id)
            try:
                payloads = page.records()
            finally:
                self.pool.unpin(page_id)
            for payload in payloads:
                start, end, level = _ENTRY.unpack(payload)
                yield Region(start, end, level)

    def regions(self, tag: str) -> list[Region]:
        """The full posting list of *tag* as a list."""
        return list(self.scan(tag))

    def chains(self) -> dict[str, list[int]]:
        """Per-tag page chains (persisted in the catalog)."""
        return {tag: list(chain)
                for tag, chain in self._page_chains.items()}

    def counts(self) -> dict[str, int]:
        """Per-tag posting counts (persisted in the catalog)."""
        return dict(self._counts)

    @classmethod
    def attach(cls, pool: BufferPool, chains: dict[str, list[int]],
               counts: dict[str, int]) -> "TagIndex":
        """Rebuild an index from its catalog entry (database reopen)."""
        index = cls(pool)
        index._page_chains = {tag: list(chain)
                              for tag, chain in chains.items()}
        index._counts = dict(counts)
        index._tail = {tag: chain[-1]
                       for tag, chain in chains.items() if chain}
        return index

    def page_count(self, tag: str | None = None) -> int:
        """Pages used by one tag's chain, or by the whole index."""
        if tag is not None:
            return len(self._page_chains.get(tag, ()))
        return sum(len(chain) for chain in self._page_chains.values())
