"""Paged storage substrate ("SHORE-lite").

The paper runs inside Timber, which stores data through the SHORE
storage manager with a 16 MB buffer pool.  This package reproduces the
parts of that stack that the experiments exercise: a page-oriented disk
manager with I/O accounting, an LRU buffer pool, an element store that
packs :class:`~repro.document.NodeRecord` rows into pages, and a tag
index whose posting lists live in pages.  Every physical read/write is
counted, so the execution engine can report faithful I/O-cost shapes
even though the "disk" may be a Python dict.
"""

from repro.storage.disk import DiskManager, InMemoryDisk, FileDisk, IOStats
from repro.storage.pages import Page, PAGE_SIZE
from repro.storage.buffer import BufferPool
from repro.storage.postings import RegionBlock
from repro.storage.store import ElementStore, NodeReader, StoredNode
from repro.storage.tagindex import TagIndex
from repro.storage.catalog import (CATALOG_PAGE_ID, read_catalog,
                                   reserve_catalog_page, write_catalog)

__all__ = [
    "DiskManager",
    "InMemoryDisk",
    "FileDisk",
    "IOStats",
    "Page",
    "PAGE_SIZE",
    "BufferPool",
    "ElementStore",
    "NodeReader",
    "RegionBlock",
    "StoredNode",
    "TagIndex",
    "CATALOG_PAGE_ID",
    "read_catalog",
    "reserve_catalog_page",
    "write_catalog",
]
