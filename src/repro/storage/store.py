"""Element store: packs document nodes into slotted pages.

Every :class:`~repro.document.NodeRecord` is serialized into a byte
record and appended to a chain of pages.  The store keeps an in-memory
directory from node id to record id (page, slot) — the moral equivalent
of a catalog — while all payload bytes live in pages and are fetched
through the buffer pool, so record access participates in I/O
accounting.

Record encoding (little-endian)::

    start   uint32 | end uint32 | level uint16 | parent int32
    tag_len uint16 | text_len uint16 | attr_count uint16
    tag bytes | text bytes | (key_len u16, key, val_len u16, val)*
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import StorageError
from repro.document.document import XmlDocument
from repro.document.node import NodeRecord, Region
from repro.storage.buffer import BufferPool
from repro.storage.pages import PAGE_SIZE

_FIXED = struct.Struct("<IIHiHHH")
_U16 = struct.Struct("<H")


@dataclass(frozen=True, slots=True)
class StoredNode:
    """Record id of a stored node: which page and slot it lives in."""

    page_id: int
    slot: int


def encode_node(node: NodeRecord) -> bytes:
    """Serialize a node record to bytes."""
    tag = node.tag.encode("utf-8")
    text = node.text.encode("utf-8")
    parts = [_FIXED.pack(node.start, node.end, node.level, node.parent_id,
                         len(tag), len(text), len(node.attributes)),
             tag, text]
    for key, value in node.attributes.items():
        key_bytes = key.encode("utf-8")
        value_bytes = value.encode("utf-8")
        parts.append(_U16.pack(len(key_bytes)))
        parts.append(key_bytes)
        parts.append(_U16.pack(len(value_bytes)))
        parts.append(value_bytes)
    payload = b"".join(parts)
    if len(payload) > PAGE_SIZE // 2:
        raise StorageError(
            f"node record too large ({len(payload)} bytes)")
    return payload


def decode_node(payload: bytes) -> NodeRecord:
    """Inverse of :func:`encode_node`."""
    start, end, level, parent_id, tag_len, text_len, attr_count = (
        _FIXED.unpack_from(payload, 0))
    offset = _FIXED.size
    tag = payload[offset:offset + tag_len].decode("utf-8")
    offset += tag_len
    text = payload[offset:offset + text_len].decode("utf-8")
    offset += text_len
    attributes: dict[str, str] = {}
    for _ in range(attr_count):
        (key_len,) = _U16.unpack_from(payload, offset)
        offset += _U16.size
        key = payload[offset:offset + key_len].decode("utf-8")
        offset += key_len
        (value_len,) = _U16.unpack_from(payload, offset)
        offset += _U16.size
        value = payload[offset:offset + value_len].decode("utf-8")
        offset += value_len
        attributes[key] = value
    return NodeRecord(node_id=start, tag=tag,
                      region=Region(start, end, level),
                      parent_id=parent_id, text=text, attributes=attributes)


class NodeReader:
    """Page-batched node access: one pool round trip per page.

    Predicate-heavy index scans look up element payloads for runs of
    node ids that mostly share a page; a reader keeps the last page's
    records so consecutive hits skip the buffer pool's fetch/unpin
    cycle entirely.  The memo is one page of payload bytes — per-scan
    state, not a cache — so create one reader per scan and drop it.
    """

    __slots__ = ("_store", "_page_id", "_payloads")

    def __init__(self, store: "ElementStore") -> None:
        self._store = store
        self._page_id: int | None = None
        self._payloads: list[bytes] = []

    def node(self, node_id: int) -> NodeRecord:
        """Fetch and decode one node, reusing the last page read."""
        rid = self._store.rid_of(node_id)
        if rid.page_id != self._page_id:
            pool = self._store.pool
            page = pool.fetch(rid.page_id)
            try:
                self._payloads = page.records()
            finally:
                pool.unpin(rid.page_id)
            self._page_id = rid.page_id
        return decode_node(self._payloads[rid.slot])


class ElementStore:
    """Append-only store of node records in buffer-pooled pages.

    Deletions are logical: the record's bytes stay on their page and a
    tombstone (its record id) joins :attr:`_deleted_rids`, persisted in
    the catalog so a reopened store skips dead records.  Pages are
    reclaimed only when a copy-on-write rewrite happens to repack them.
    """

    def __init__(self, pool: BufferPool) -> None:
        self.pool = pool
        self._directory: dict[int, StoredNode] = {}
        self._current_page_id: int | None = None
        self._page_ids: list[int] = []
        self._deleted_rids: set[StoredNode] = set()
        self.node_count = 0

    def store_document(self, document: XmlDocument) -> None:
        """Append every node of *document*, in document order."""
        for node in document:
            self.store_node(node)
        self.pool.flush()

    def store_node(self, node: NodeRecord) -> StoredNode:
        if node.node_id in self._directory:
            raise StorageError(f"node {node.node_id} already stored")
        payload = encode_node(node)
        page = self._writable_page(len(payload))
        slot = page.insert(payload)
        self.pool.unpin(page.page_id, dirty=True)
        rid = StoredNode(page.page_id, slot)
        self._directory[node.node_id] = rid
        self.node_count += 1
        return rid

    def _writable_page(self, needed: int):
        if self._current_page_id is not None:
            page = self.pool.fetch(self._current_page_id)
            if page.free_space >= needed:
                return page
            self.pool.unpin(page.page_id)
        page = self.pool.new_page()
        self._current_page_id = page.page_id
        self._page_ids.append(page.page_id)
        return page

    def rid_of(self, node_id: int) -> StoredNode:
        rid = self._directory.get(node_id)
        if rid is None:
            raise StorageError(f"node {node_id} is not stored")
        return rid

    def fetch_node(self, node_id: int) -> NodeRecord:
        """Fetch and decode one node by id through the buffer pool."""
        rid = self.rid_of(node_id)
        page = self.pool.fetch(rid.page_id)
        try:
            return decode_node(page.record(rid.slot))
        finally:
            self.pool.unpin(rid.page_id)

    def reader(self) -> NodeReader:
        """A per-scan :class:`NodeReader` over this store."""
        return NodeReader(self)

    def scan(self) -> Iterator[NodeRecord]:
        """Iterate all live stored nodes in insertion order.

        Nodes removed via :meth:`remove_nodes` are skipped; note that
        after subtree mutations insertion order is no longer document
        order — sort by ``start`` when rebuilding a document.
        """
        for rid, node in self._scan_with_rids():
            if rid not in self._deleted_rids:
                yield node

    def _scan_with_rids(self) -> Iterator[tuple[StoredNode, NodeRecord]]:
        for page_id in self._page_ids:
            page = self.pool.fetch(page_id)
            try:
                payloads = page.records()
            finally:
                self.pool.unpin(page_id)
            for slot, payload in enumerate(payloads):
                yield StoredNode(page_id, slot), decode_node(payload)

    @property
    def page_count(self) -> int:
        return len(self._page_ids)

    @property
    def page_ids(self) -> list[int]:
        """The store's page chain (persisted in the catalog)."""
        return list(self._page_ids)

    # -- mutation (transactional write path) --------------------------------

    def clone_for_write(self) -> "ElementStore":
        """A copy-on-write clone for a transaction to mutate.

        The clone shares every data page with this store but keeps its
        own directory, page list, and tombstone set.  Its write cursor
        is reset, so the first append allocates a *fresh* page — a
        published page is never touched, which is what keeps in-flight
        readers of this store consistent while the clone commits.
        """
        clone = ElementStore(self.pool)
        clone._directory = dict(self._directory)
        clone._page_ids = list(self._page_ids)
        clone._deleted_rids = set(self._deleted_rids)
        clone.node_count = self.node_count
        clone._current_page_id = None
        return clone

    def remove_nodes(self, node_ids: Iterable[int]) -> None:
        """Tombstone *node_ids*; their page bytes remain as garbage."""
        for node_id in node_ids:
            rid = self._directory.pop(node_id, None)
            if rid is None:
                raise StorageError(
                    f"cannot remove node {node_id}: not stored")
            self._deleted_rids.add(rid)
            self.node_count -= 1

    def deleted_rids(self) -> list[list[int]]:
        """Tombstoned record ids as ``[page, slot]`` pairs (catalog form)."""
        return sorted([rid.page_id, rid.slot]
                      for rid in self._deleted_rids)

    @classmethod
    def attach(cls, pool: BufferPool, page_ids: list[int],
               deleted: Iterable[Iterable[int]] = ()) -> "ElementStore":
        """Rebuild a store from its page chain (database reopen).

        The record directory is reconstructed with one scan over the
        chain; payload bytes stay on their pages.  *deleted* lists the
        tombstoned ``[page, slot]`` record ids from the catalog.
        """
        store = cls(pool)
        store._page_ids = list(page_ids)
        store._current_page_id = page_ids[-1] if page_ids else None
        store._deleted_rids = {StoredNode(page_id, slot)
                               for page_id, slot in deleted}
        for rid, node in store._scan_with_rids():
            if rid in store._deleted_rids:
                continue
            store._directory[node.node_id] = rid
            store.node_count += 1
        return store
