"""Fixed-size page layout with a slotted record area.

A :class:`Page` is an 8 KiB byte buffer organized as a classic slotted
page: a small header, a slot directory growing from the front, and
record payloads growing from the back.  Records are opaque byte strings
to this layer; the element store and tag index define their own record
encodings on top.

Layout::

    0..2    number of slots (uint16)
    2..4    free-space pointer (uint16, offset of the byte *after* the
            last free byte, i.e. start of the record heap)
    4..     slot directory: (offset uint16, length uint16) per slot
    ...     free space
    ...     record payloads (packed towards PAGE_SIZE)
"""

from __future__ import annotations

import struct

from repro.errors import PageFullError, StorageError

PAGE_SIZE = 8192
_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")


class Page:
    """One fixed-size slotted page."""

    def __init__(self, page_id: int, data: bytearray | None = None) -> None:
        self.page_id = page_id
        if data is None:
            self.data = bytearray(PAGE_SIZE)
            _HEADER.pack_into(self.data, 0, 0, PAGE_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise StorageError(
                    f"page data must be exactly {PAGE_SIZE} bytes")
            self.data = bytearray(data)
        self.dirty = False

    # -- header helpers ---------------------------------------------------

    @property
    def slot_count(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[0]

    @property
    def _heap_start(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[1]

    def _set_header(self, slots: int, heap_start: int) -> None:
        _HEADER.pack_into(self.data, 0, slots, heap_start)

    @property
    def free_space(self) -> int:
        """Bytes available for one more record (payload + slot entry)."""
        directory_end = _HEADER.size + self.slot_count * _SLOT.size
        free = self._heap_start - directory_end - _SLOT.size
        return max(free, 0)

    # -- record access ------------------------------------------------------

    def insert(self, payload: bytes) -> int:
        """Append a record; returns its slot number."""
        if len(payload) > self.free_space:
            raise PageFullError(
                f"record of {len(payload)} bytes does not fit "
                f"(free: {self.free_space})")
        slots = self.slot_count
        heap_start = self._heap_start - len(payload)
        self.data[heap_start:heap_start + len(payload)] = payload
        _SLOT.pack_into(self.data, _HEADER.size + slots * _SLOT.size,
                        heap_start, len(payload))
        self._set_header(slots + 1, heap_start)
        self.dirty = True
        return slots

    def record(self, slot: int) -> bytes:
        """Return the payload of a slot."""
        if not 0 <= slot < self.slot_count:
            raise StorageError(
                f"slot {slot} out of range (page has {self.slot_count})")
        offset, length = _SLOT.unpack_from(
            self.data, _HEADER.size + slot * _SLOT.size)
        return bytes(self.data[offset:offset + length])

    def records(self) -> list[bytes]:
        """All record payloads in insertion order."""
        return [self.record(slot) for slot in range(self.slot_count)]

    def to_bytes(self) -> bytes:
        return bytes(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Page(id={self.page_id}, slots={self.slot_count}, "
                f"free={self.free_space})")
