"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at the API boundary.  Subsystems raise
the more specific subclasses below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DocumentError(ReproError):
    """A document is malformed or an operation on it is invalid."""


class XmlParseError(DocumentError):
    """Raised by the XML parser on malformed input.

    Attributes
    ----------
    line, column:
        1-based position of the offending input, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class StorageError(ReproError):
    """Raised on storage-layer failures (page, buffer pool, disk)."""


class PageFullError(StorageError):
    """A record does not fit in the remaining free space of a page."""


class BufferPoolError(StorageError):
    """Buffer pool misuse (e.g. all frames pinned, double unpin)."""


class PageFormatError(StorageError):
    """A page's bytes are not a valid posting frame.

    Raised instead of decoding garbage when a posting chain points at
    a page in an unknown or older on-disk format (bad magic, bad
    version, or a header whose lengths do not fit the page)."""


class PatternError(ReproError):
    """A query pattern is malformed (cycle, disconnected, bad reference)."""


class XPathSyntaxError(ReproError):
    """Raised by the XPath front-end on unsupported or malformed syntax.

    Attributes
    ----------
    position:
        0-based character offset of the offending token, when known.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class OptimizerError(ReproError):
    """Raised when plan enumeration fails or is misconfigured."""


class PlanError(ReproError):
    """A physical plan is structurally invalid or cannot be executed."""


class EstimationError(ReproError):
    """Raised by cardinality estimators on invalid requests."""


class TransactionError(ReproError):
    """Transactional write-path misuse (aborted txn reuse, bad target)."""


class ShardError(ReproError):
    """Sharded-execution failure: bad partitioning arguments, a dead or
    unresponsive shard worker, or use of a closed coordinator."""


class RecoveryError(ReproError):
    """Raised when crash recovery finds an unrecoverable log or store."""


class QueryCancelled(ReproError):
    """A streaming execution was cancelled before it drained.

    Raised out of :meth:`repro.engine.executor.StreamingExecution.rows`
    when the caller-supplied cancel predicate turns true (deadline
    expiry, client disconnect, shutdown drain).  The partial counters
    accumulated so far remain valid on the stream handle."""
