"""Metrics registry: named counters, gauges and histograms.

A :class:`MetricsRegistry` holds metric *families* keyed by name; each
family holds one series per label combination.  Everything is guarded
by one lock — updates are a dict probe plus a float add, far cheaper
than the query work they annotate.

Exports:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` headers, ``_bucket`` /
  ``_sum`` / ``_count`` series for histograms), scrape-parseable;
* :meth:`MetricsRegistry.to_dict` — the same data as JSON-able dicts.

*Collectors* bridge pull-style sources (buffer-pool hit rate, plan
cache occupancy): callbacks registered with
:meth:`MetricsRegistry.register_collector` run before every export and
set gauges from the live objects.

A process-wide default registry (:func:`get_global_registry`) exists
for single-database processes such as the CLI; the serving layer
creates one registry per :class:`~repro.service.service.QueryService`
so concurrent databases in one process (and tests) never share
counters.

:class:`SampleReservoir` implements Vitter's Algorithm R — a uniform
sample over an unbounded stream — and backs the query service's
latency percentiles: unlike drop-oldest truncation, every observation
ever made has equal probability of being in the sample, so percentiles
are unbiased under sustained load.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Sequence

__all__ = ["BucketRecorder", "Counter", "Gauge", "Histogram",
           "MetricsRegistry", "SampleReservoir",
           "get_global_registry"]

#: default histogram buckets: latency-flavoured, in seconds.
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: tuple[tuple[str, str], ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(value: str) -> str:
    # HELP text escapes only backslash and newline (no quotes).
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    # Prometheus accepts any Go-parseable float; integral values are
    # rendered without an exponent for readability.
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Base class: one metric family (name, help, typed series)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 lock: threading.Lock) -> None:
        self.name = name
        self.help = help_text
        self._lock = lock
        self._series: dict[tuple[tuple[str, str], ...], object] = {}

    def _lines(self) -> list[str]:
        raise NotImplementedError

    def _data(self) -> dict[str, object]:
        raise NotImplementedError

    def _reset(self) -> None:
        self._series.clear()


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def _lines(self) -> list[str]:
        return [f"{self.name}{_render_labels(key)} {_format_value(value)}"
                for key, value in sorted(self._series.items())]

    def _data(self) -> dict[str, object]:
        return {"series": [{"labels": dict(key), "value": value}
                           for key, value in sorted(self._series.items())]}


class Gauge(_Metric):
    """A value that can go up and down (set absolutely)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def value(self, **labels: str) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    _lines = Counter._lines
    _data = Counter._data


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, buckets: int) -> None:
        self.bucket_counts = [0] * buckets
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str, lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, lock)
        ordered = tuple(sorted(float(bound) for bound in buckets))
        if not ordered:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = ordered

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets))
                self._series[key] = series
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[index] += 1
            series.total += value
            series.count += 1

    def set_series(self, bucket_counts: Sequence[int], total: float,
                   count: int, **labels: str) -> None:
        """Overwrite one series from externally accumulated buckets.

        The mirror path for pull-style sources that keep their own
        cumulative bucket counts (e.g. the WAL's fsync-latency
        recorder, which lives below the registry layer): a collector
        copies the source's buckets verbatim on every export instead
        of replaying observations.  *bucket_counts* must use this
        histogram's bucket bounds and cumulative (Prometheus)
        semantics.
        """
        if len(bucket_counts) != len(self.buckets):
            raise ValueError(
                f"expected {len(self.buckets)} bucket counts, got "
                f"{len(bucket_counts)}")
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets))
                self._series[key] = series
            series.bucket_counts = [int(c) for c in bucket_counts]
            series.total = float(total)
            series.count = int(count)

    def count(self, **labels: str) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series is not None else 0

    def sum(self, **labels: str) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.total if series is not None else 0.0

    def quantile(self, q: float, **labels: str) -> float:
        """Estimate the *q*-quantile from the bucket counts.

        Same estimator as PromQL's ``histogram_quantile``: find the
        bucket the target rank falls into and interpolate linearly
        inside it (the first bucket's lower edge is 0 — these are
        latency-flavoured histograms).  Observations beyond the last
        finite bucket cannot be located, so ranks landing in the
        ``+Inf`` bucket report the highest finite bound.  This makes
        CLI percentiles computable from scraped data alone; accuracy
        is bounded by bucket resolution, unlike the exact in-process
        :class:`SampleReservoir`.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return 0.0
            counts = list(series.bucket_counts)
            total = series.count
        rank = max(q * total, 1.0)
        lower = 0.0
        previous_cumulative = 0
        for bound, cumulative in zip(self.buckets, counts):
            if cumulative >= rank:
                width = cumulative - previous_cumulative
                if width <= 0:
                    return bound
                fraction = (rank - previous_cumulative) / width
                return lower + (bound - lower) * fraction
            if cumulative > previous_cumulative:
                previous_cumulative = cumulative
            lower = bound
        return self.buckets[-1]

    def _lines(self) -> list[str]:
        lines: list[str] = []
        for key, series in sorted(self._series.items()):
            for bound, count in zip(self.buckets, series.bucket_counts):
                le = (("le", _format_value(bound)),)
                lines.append(f"{self.name}_bucket"
                             f"{_render_labels(key, le)} {count}")
            lines.append(f"{self.name}_bucket"
                         f"{_render_labels(key, (('le', '+Inf'),))} "
                         f"{series.count}")
            lines.append(f"{self.name}_sum{_render_labels(key)} "
                         f"{_format_value(series.total)}")
            lines.append(f"{self.name}_count{_render_labels(key)} "
                         f"{series.count}")
        return lines

    def _data(self) -> dict[str, object]:
        return {
            "buckets": list(self.buckets),
            "series": [{
                "labels": dict(key),
                "bucket_counts": list(series.bucket_counts),
                "sum": series.total,
                "count": series.count,
            } for key, series in sorted(self._series.items())],
        }


class BucketRecorder:
    """Cumulative-bucket accumulator for code below the registry layer.

    Storage-layer objects (WAL, transaction manager) predate and
    outlive any particular :class:`MetricsRegistry`, so they record
    into one of these; a registry collector mirrors it into a real
    :class:`Histogram` with :meth:`Histogram.set_series` on every
    export (:meth:`mirror_into`).  Not thread-safe on its own — owners
    guard it with the lock that already serializes the recorded
    operation (the WAL's write lock, the manager's commit lock).
    """

    __slots__ = ("buckets", "bucket_counts", "total", "count")

    def __init__(self,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(float(bound) for bound in buckets))
        if not self.buckets:
            raise ValueError("bucket recorder needs at least one bucket")
        self.bucket_counts = [0] * len(self.buckets)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
        self.total += float(value)
        self.count += 1

    def mirror_into(self, histogram: Histogram, **labels: str) -> None:
        """Copy the accumulated series into *histogram* verbatim."""
        histogram.set_series(self.bucket_counts, self.total,
                             self.count, **labels)

    def snapshot(self) -> dict[str, object]:
        return {"buckets": list(self.buckets),
                "bucket_counts": list(self.bucket_counts),
                "sum": self.total, "count": self.count}


class MetricsRegistry:
    """Named metric families plus pull-style collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Callable[[], None]] = []

    # -- registration ----------------------------------------------------

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(name, help_text, Counter)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(name, help_text, Gauge)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, help_text, self._lock, buckets)
                self._metrics[name] = metric
            elif not isinstance(metric, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric

    def _get_or_create(self, name: str, help_text: str,
                       cls: type[_Metric]) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, self._lock)
                self._metrics[name] = metric
            elif type(metric) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric

    def register_collector(self, collect: Callable[[], None]) -> None:
        """Add a callback run before every export (sets gauges from
        live objects such as the buffer pool)."""
        with self._lock:
            self._collectors.append(collect)

    def collect(self) -> None:
        """Run all collectors (collectors update metrics themselves)."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()

    # -- export ----------------------------------------------------------

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (runs collectors)."""
        self.collect()
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if metric.help:
                    lines.append(
                        f"# HELP {name} {_escape_help(metric.help)}")
                lines.append(f"# TYPE {name} {metric.kind}")
                lines.extend(metric._lines())
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict[str, object]:
        """JSON-able dump of every family (runs collectors)."""
        self.collect()
        with self._lock:
            return {name: {"type": metric.kind, "help": metric.help,
                           **metric._data()}
                    for name, metric in sorted(self._metrics.items())}

    def reset(self) -> None:
        """Zero every series (families and collectors stay registered)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._reset()


_GLOBAL_REGISTRY = MetricsRegistry()


def get_global_registry() -> MetricsRegistry:
    """The process-wide default registry.

    Single-database processes (the CLI, notebooks) can hang everything
    off this one; the serving layer defaults to a per-service registry
    instead so concurrent databases never share series.
    """
    return _GLOBAL_REGISTRY


class SampleReservoir:
    """Uniform sample of an unbounded stream (Vitter's Algorithm R).

    After ``n`` observations every observation has probability
    ``capacity / n`` of being in the sample — no recency bias, unlike
    the drop-oldest truncation this replaces.  Deterministic for a
    given seed; not thread-safe on its own (the query service guards
    it with the same mutex as its other counters).
    """

    def __init__(self, capacity: int = 8192, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be at least 1")
        self.capacity = capacity
        self._samples: list[float] = []
        self._count = 0
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self._count += 1
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self._count)
        if slot < self.capacity:
            self._samples[slot] = value

    def values(self) -> list[float]:
        """The current sample (copy, unordered)."""
        return list(self._samples)

    @property
    def count(self) -> int:
        """Observations ever offered (>= len(samples))."""
        return self._count

    def __len__(self) -> int:
        return len(self._samples)

    def clear(self) -> None:
        self._samples.clear()
        self._count = 0
