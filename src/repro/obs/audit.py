"""Plan-regression auditing: replay the query log, flag drift.

A logged query carries the plan the optimizer chose *then*; replaying
its pattern through the optimizer *now* — under the current
statistics epoch and (possibly recalibrated) cost factors — tells us
whether the system would still make the same choice.  A changed plan
digest is a **plan flip**: expected after a deliberate calibration or
a data reload, alarming on an unchanged corpus (exactly how the
Demythization study caught join-strategy conclusions flipping when
measured costs diverged from modeled ones).

Alongside flips the auditor aggregates the logged per-operator
cardinality Q-errors by operator type and by XML tag, so systematic
estimation drift ("every ``eOccasional`` scan is off 8x") is visible
without reading individual EXPLAIN outputs.

Results land in three places:

* an :class:`AuditReport` value (``render()`` for humans, ``to_dict``
  for JSON);
* registry gauges — ``repro_plan_flips_total``,
  ``repro_plan_audit_queries``, and ``repro_qerror_p95{operator=…}`` —
  so drift is scrapeable by the same Prometheus endpoint as every
  other service metric;
* the ``audit`` CLI verb, which exits non-zero when flips are found
  (the ``calibrate-smoke`` CI job fails on that).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import ReproError
from repro.obs.explain import q_error

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import Database
    from repro.obs.registry import MetricsRegistry

__all__ = ["AuditReport", "QueryAudit", "audit_records",
           "qerror_summary"]

#: pattern-node labels inside operator names: ``$3:employee``.
_TAG_PATTERN = re.compile(r"\$\d+:([^\s/)]+)")


def _operator_kind(label: str) -> str:
    """``stack-tree-desc($0:a // $1:b)`` -> ``stack-tree-desc``."""
    return label.split("(", 1)[0] or label


def _percentile(ordered: list[float], fraction: float) -> float:
    if not ordered:
        return 0.0
    rank = max(1, round(fraction * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def qerror_summary(values: Iterable[float]) -> dict[str, float]:
    """count/p50/p95/max summary of a Q-error population."""
    ordered = sorted(values)
    return {
        "count": float(len(ordered)),
        "p50": _percentile(ordered, 0.50),
        "p95": _percentile(ordered, 0.95),
        "max": ordered[-1] if ordered else 0.0,
    }


@dataclass
class QueryAudit:
    """One replayed query: logged plan vs. the plan chosen now."""

    query: str
    algorithm: str
    signature: str
    logged_plan: str
    current_plan: str
    logged_estimated_cost: float
    current_estimated_cost: float
    #: canonical (node-renumbering-invariant) digests; flips are judged
    #: on these, since the replayed pattern is recompiled from XPath
    #: and its node ids need not match the originally logged plan's.
    logged_digest: str = ""
    current_digest: str = ""
    #: trace id of the latest logged run of this query (when it was
    #: traced): the join key from a flagged flip to the retained trace
    #: (``/traces``) that shows how the logged plan actually ran.
    trace_id: str = ""
    #: flip forensics (``audit --why`` only): structural digest diff,
    #: the logged plan re-priced under current statistics, and the
    #: per-family cost crossover explaining why the choice moved.
    why: dict[str, object] | None = None

    @property
    def flipped(self) -> bool:
        if self.logged_digest and self.current_digest:
            return self.logged_digest != self.current_digest
        return self.logged_plan != self.current_plan

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "query": self.query,
            "algorithm": self.algorithm,
            "signature": self.signature,
            "logged_plan": self.logged_plan,
            "current_plan": self.current_plan,
            "logged_digest": self.logged_digest,
            "current_digest": self.current_digest,
            "logged_estimated_cost": self.logged_estimated_cost,
            "current_estimated_cost": self.current_estimated_cost,
            "flipped": self.flipped,
            "trace_id": self.trace_id,
        }
        if self.why is not None:
            payload["why"] = dict(self.why)
        return payload


@dataclass
class AuditReport:
    """Everything one audit pass produced."""

    entries: list[QueryAudit] = field(default_factory=list)
    skipped: int = 0
    records_seen: int = 0
    qerror_by_operator: dict[str, dict[str, float]] = field(
        default_factory=dict)
    qerror_by_tag: dict[str, dict[str, float]] = field(
        default_factory=dict)

    @property
    def plan_flips(self) -> int:
        return sum(1 for entry in self.entries if entry.flipped)

    @property
    def queries_replayed(self) -> int:
        return len(self.entries)

    def to_dict(self) -> dict[str, object]:
        return {
            "records_seen": self.records_seen,
            "queries_replayed": self.queries_replayed,
            "plan_flips": self.plan_flips,
            "skipped": self.skipped,
            "entries": [entry.to_dict() for entry in self.entries],
            "qerror_by_operator": {
                kind: dict(stats)
                for kind, stats in sorted(self.qerror_by_operator.items())
            },
            "qerror_by_tag": {
                tag: dict(stats)
                for tag, stats in sorted(self.qerror_by_tag.items())
            },
        }

    def render(self) -> str:
        lines = [f"plan audit: {self.queries_replayed} distinct queries "
                 f"replayed from {self.records_seen} log records, "
                 f"{self.plan_flips} plan flip(s)"
                 + (f", {self.skipped} skipped" if self.skipped else "")]
        for entry in self.entries:
            if not entry.flipped:
                continue
            lines.append(f"  FLIP [{entry.algorithm}] {entry.query}")
            lines.append(f"    logged:  {entry.logged_plan} "
                         f"(est {entry.logged_estimated_cost:.1f})")
            lines.append(f"    current: {entry.current_plan} "
                         f"(est {entry.current_estimated_cost:.1f})")
            if entry.trace_id:
                lines.append(f"    trace:   {entry.trace_id}")
            if entry.why is not None:
                lines.extend(_render_why(entry.why))
        if self.qerror_by_operator:
            lines.append("cardinality q-error by operator type "
                         "(count / p50 / p95 / max):")
            for kind, stats in sorted(self.qerror_by_operator.items()):
                lines.append(
                    f"  {kind:18s} {int(stats['count']):5d} / "
                    f"{stats['p50']:.2f} / {stats['p95']:.2f} / "
                    f"{stats['max']:.2f}")
        if self.qerror_by_tag:
            lines.append("cardinality q-error by tag "
                         "(count / p50 / p95 / max):")
            for tag, stats in sorted(self.qerror_by_tag.items()):
                lines.append(
                    f"  {tag:18s} {int(stats['count']):5d} / "
                    f"{stats['p50']:.2f} / {stats['p95']:.2f} / "
                    f"{stats['max']:.2f}")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def export_gauges(self, registry: "MetricsRegistry") -> None:
        """Publish the audit outcome as scrapeable gauges."""
        registry.gauge(
            "repro_plan_flips_total",
            "Plan flips found by the last plan audit"
        ).set(self.plan_flips)
        registry.gauge(
            "repro_plan_audit_queries",
            "Distinct queries replayed by the last plan audit"
        ).set(self.queries_replayed)
        p95 = registry.gauge(
            "repro_qerror_p95",
            "p95 per-operator cardinality Q-error from the query log")
        for kind, stats in self.qerror_by_operator.items():
            p95.set(stats["p95"], operator=kind)


def _render_why(why: dict[str, object]) -> list[str]:
    """FLIP sublines for one entry's forensics payload."""
    lines: list[str] = []
    diff = why.get("diff")
    if isinstance(diff, dict):
        removed = ", ".join(str(op) for op in diff.get("removed", []))
        added = ", ".join(str(op) for op in diff.get("added", []))
        lines.append(f"    diff:    -[{removed or '-'}] +[{added or '-'}]"
                     f" ({diff.get('unchanged', 0)} unchanged)")
    if "logged_cost_now" in why:
        lines.append(
            f"    why:     logged plan re-priced under current "
            f"statistics: {why['logged_cost_now']:.1f} vs chosen "
            f"{why['current_cost']:.1f} (regret {why['regret']:+.1f})")
    crossover = why.get("crossover")
    if isinstance(crossover, dict):
        parts = ", ".join(f"{name} {delta:+.1f}"
                          for name, delta in crossover.items()
                          if abs(float(delta)) > 1e-9)
        lines.append(f"    crossover: {parts or 'no per-family delta'}")
    note = why.get("note")
    if note:
        lines.append(f"    note:    {note}")
    return lines


def _flip_forensics(database: "Database", pattern,
                    current_plan, current_cost: float,
                    logged_digest: str,
                    current_digest: str) -> dict[str, object]:
    """Explain one plan flip: structural diff plus cost crossover.

    The logged digest is rebuilt into a physical plan and re-priced
    under the **current** statistics and cost factors; the gap to the
    currently chosen plan's cost is the regret the flip avoided, and
    the per-family breakdown deltas say which Sec. 2.2.2 counter
    family moved the decision.
    """
    from repro.core.cost import CostModel
    from repro.core.enumeration import (EnumerationContext,
                                        estimate_plan_cost)
    from repro.core.planspace import FAMILIES, plan_cost_breakdown
    from repro.obs.planspace import plan_digest_diff, plan_from_digest

    why: dict[str, object] = {
        "diff": plan_digest_diff(logged_digest, current_digest),
        "current_cost": current_cost,
    }
    try:
        logged_plan = plan_from_digest(logged_digest, pattern)
    except ReproError as exc:
        why["note"] = f"logged plan could not be reconstructed: {exc}"
        return why
    factors = database.cost_factors
    context = EnumerationContext(pattern, CostModel(factors),
                                 database.estimator)
    logged_cost_now = estimate_plan_cost(logged_plan, context)
    why["logged_cost_now"] = logged_cost_now
    why["regret"] = logged_cost_now - current_cost
    logged_break = plan_cost_breakdown(logged_plan, factors)
    current_break = plan_cost_breakdown(current_plan, factors)
    why["crossover"] = {name: logged_break[name] - current_break[name]
                        for name in FAMILIES}
    return why


def audit_records(database: "Database",
                  records: Iterable[dict[str, object]],
                  algorithm: str | None = None,
                  registry: "MetricsRegistry | None" = None,
                  why: bool = False) -> AuditReport:
    """Replay *records* through *database*'s optimizer and diff plans.

    Each distinct (query, algorithm) pair is replayed once, against
    its **latest** logged record (earlier plans may legitimately
    predate a statistics change the log also witnessed).  *algorithm*
    overrides the logged algorithm for every replay; records logged
    without one replay under the default DPP.  Queries that no longer
    compile or optimize are counted as skipped, not fatal.

    With ``why=True`` every flipped entry carries forensics: the
    structural digest diff, the logged plan re-priced under current
    statistics (via :func:`~repro.obs.planspace.plan_from_digest`),
    and the per-family cost crossover.
    """
    report = AuditReport()
    latest: dict[tuple[str, str], dict[str, object]] = {}
    operator_qerrors: dict[str, list[float]] = {}
    tag_qerrors: dict[str, list[float]] = {}
    for record in records:
        report.records_seen += 1
        query = record.get("query")
        if isinstance(query, str) and query:
            replay_algorithm = (algorithm
                                or str(record.get("algorithm") or "")
                                or "DPP")
            latest[(query, replay_algorithm)] = record
        operators = record.get("operators")
        if not isinstance(operators, list):
            continue
        for entry in operators:
            if not isinstance(entry, dict):
                continue
            label = str(entry.get("operator", ""))
            value = q_error(float(entry.get("estimated_rows") or 0.0),
                            float(entry.get("actual_rows") or 0))
            operator_qerrors.setdefault(
                _operator_kind(label), []).append(value)
            for tag in set(_TAG_PATTERN.findall(label)):
                tag_qerrors.setdefault(tag, []).append(value)
    from repro.service.cache import canonical_plan_digest

    for (query, replay_algorithm), record in latest.items():
        try:
            pattern = database.compile(query)
            result = database.optimize(pattern,
                                       algorithm=replay_algorithm)
        except ReproError:
            report.skipped += 1
            continue
        entry = QueryAudit(
            query=query,
            algorithm=replay_algorithm,
            signature=str(record.get("signature", "")),
            logged_plan=str(record.get("plan", "")),
            current_plan=result.plan.signature(),
            logged_digest=str(record.get("plan_digest", "")),
            current_digest=canonical_plan_digest(result.plan, pattern),
            logged_estimated_cost=float(
                record.get("estimated_cost") or 0.0),
            current_estimated_cost=result.estimated_cost,
            trace_id=str(record.get("trace_id", "")))
        if why and entry.flipped:
            if entry.logged_digest:
                entry.why = _flip_forensics(
                    database, pattern, result.plan,
                    result.estimated_cost, entry.logged_digest,
                    entry.current_digest)
            else:
                entry.why = {"note": "record carries no plan digest "
                                     "to diff against"}
        report.entries.append(entry)
    report.entries.sort(key=lambda entry: (entry.algorithm, entry.query))
    report.qerror_by_operator = {
        kind: qerror_summary(values)
        for kind, values in operator_qerrors.items()}
    report.qerror_by_tag = {
        tag: qerror_summary(values)
        for tag, values in tag_qerrors.items()}
    if registry is not None:
        report.export_gauges(registry)
    return report
