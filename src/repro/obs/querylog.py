"""Persistent query log: one JSONL record per executed query.

PR 3's spans and EXPLAIN ANALYZE die with the process; the query log
makes them durable.  Every execution that runs through a
:class:`~repro.api.Database` with a log attached appends one
structured record — pattern signature, algorithm, engine, plan
digest, run-level counters, wall time and statistics epoch, plus
per-operator estimated-vs-actual cardinalities and exact cost-counter
shares whenever the run was traced.  Those records are the raw
material for the two consumers that close the feedback loop:

* :mod:`repro.obs.calibrate` fits :class:`~repro.core.cost.CostFactors`
  from the traced counter/wall-time pairs;
* :mod:`repro.obs.audit` replays logged patterns through the optimizer
  and flags plan flips and Q-error drift.

Design points:

* **Asynchronous writes** — :meth:`QueryLog.record` enqueues; a daemon
  writer thread serialises and appends, so logging never sits on the
  query hot path.  A full queue drops the record instead of blocking
  a query — warned once, counted always (``QueryLog.dropped`` and the
  ``repro_querylog_dropped_total`` counter).
* **Size-bounded** — the active file rotates to ``<path>.1`` …
  ``<path>.<backups>`` once it exceeds ``max_bytes``; the oldest
  rotation is deleted, so total disk use is bounded by
  ``(backups + 1) * max_bytes`` (plus one record of slack).
* **Trace sampling** — ``trace_sample=n`` traces every n-th execution
  (per-operator detail); ``trace_sample=0`` never forces tracing.
* **In-memory mode** — ``path=None`` keeps records in a bounded deque:
  no files, no writer thread.  Used by the CLI's self-contained
  ``calibrate``/``audit`` modes and by tests.

The reader (:func:`read_query_log`) tolerates torn or corrupt lines —
malformed lines are skipped and counted, never fatal — because a
rotation or a crash mid-append must not poison later analysis.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from hashlib import sha1
from typing import TYPE_CHECKING, Iterable

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cost import CostFactors
    from repro.core.pattern import QueryPattern
    from repro.core.plans import PhysicalPlan
    from repro.engine.executor import ExecutionResult

__all__ = ["QueryLog", "QueryLogScan", "build_record", "read_query_log",
           "signature_digest"]

#: sentinel shutting the writer thread down.
_STOP = object()


def signature_digest(pattern: "QueryPattern") -> str:
    """Short stable digest of a pattern's canonical signature.

    Two patterns share a digest iff they are isomorphic (same tags,
    predicates, axes, shape and order-by target) — the same identity
    the plan cache keys on — so the log can group repeats of one
    logical query across sessions and node renumberings.
    """
    from repro.service.cache import canonical_signature

    return sha1(repr(canonical_signature(pattern))
                .encode("utf-8")).hexdigest()[:16]


def build_record(pattern: "QueryPattern", plan: "PhysicalPlan",
                 execution: "ExecutionResult", *,
                 algorithm: str = "", engine: str = "",
                 statistics_epoch: int = 0,
                 factors: "CostFactors | None" = None,
                 query: str | None = None,
                 timestamp: float | None = None,
                 trace_id: str = "") -> dict[str, object]:
    """One JSON-able log record for a finished execution.

    When the execution was traced (``execution.span`` is set) the
    record carries an ``operators`` list — the plan's operator tree
    flattened pre-order, each entry with the optimizer's estimates,
    the measured rows/seconds, and the operator's exact share of every
    cost-model counter (the calibration inputs) — plus the trace id,
    so log analysis (:mod:`repro.obs.audit`) can join a logged plan
    back to its retained trace.
    """
    from repro.obs.explain import build_analysis
    from repro.service.cache import canonical_plan_digest
    from repro.xpath.render import pattern_to_xpath

    metrics = execution.metrics
    record: dict[str, object] = {
        "ts": time.time() if timestamp is None else timestamp,
        "query": pattern_to_xpath(pattern) if query is None else query,
        "signature": signature_digest(pattern),
        "algorithm": algorithm,
        "engine": engine,
        "plan": plan.signature(),
        "plan_digest": canonical_plan_digest(plan, pattern),
        "estimated_cost": plan.estimated_cost,
        "actual_cost": metrics.simulated_cost(),
        "wall_seconds": metrics.wall_seconds,
        "rows": len(execution),
        "statistics_epoch": statistics_epoch,
        "factors": factors.to_dict() if factors is not None else None,
        "counters": metrics.counters(),
    }
    if not trace_id and execution.span is not None:
        trace_id = execution.span.trace_id
    if trace_id:
        record["trace_id"] = trace_id
    if execution.span is not None:
        analysis = build_analysis(plan, execution.span, pattern)
        record["operators"] = [{
            "operator": node.label,
            "estimated_rows": node.estimated_rows,
            "actual_rows": node.actual_rows,
            "estimated_cost": node.estimated_cost,
            "actual_cost": node.actual_cost,
            "seconds": node.seconds,
            "self_seconds": node.self_seconds,
            "simulated_cost": node.simulated_cost,
            "counters": dict(node.counters),
        } for node in analysis.walk()]
    return record


class QueryLog:
    """Durable, size-bounded JSONL log of executed queries.

    ``path=None`` switches to in-memory mode (bounded deque, no
    files).  File mode appends from a daemon writer thread; call
    :meth:`flush` before reading the file back, :meth:`close` when
    done (both idempotent, and ``QueryLog`` works as a context
    manager).
    """

    def __init__(self, path: "str | os.PathLike[str] | None" = None, *,
                 max_bytes: int = 4 << 20, backups: int = 3,
                 trace_sample: int = 1, memory_capacity: int = 4096,
                 queue_capacity: int = 4096) -> None:
        if max_bytes < 1:
            raise ReproError("query log max_bytes must be at least 1")
        if backups < 1:
            raise ReproError("query log backups must be at least 1")
        if trace_sample < 0:
            raise ReproError("query log trace_sample must be >= 0")
        self.path = os.fspath(path) if path is not None else None
        self.max_bytes = max_bytes
        self.backups = backups
        self.trace_sample = trace_sample
        self._mutex = threading.Lock()
        self._executions = 0
        self._recorded = 0
        self._dropped = 0
        self._written = 0
        self._closed = False
        self._memory: "deque[dict[str, object]] | None" = None
        self._queue: "queue.Queue[object] | None" = None
        self._writer: threading.Thread | None = None
        self._handle = None
        if self.path is None:
            self._memory = deque(maxlen=memory_capacity)
        else:
            self._queue = queue.Queue(maxsize=queue_capacity)
            self._writer = threading.Thread(
                target=self._drain, name="repro-querylog", daemon=True)
            self._writer.start()

    # -- recording -------------------------------------------------------

    def want_span(self) -> bool:
        """Should the next execution be traced for this log?

        Counts executions and returns True every ``trace_sample``-th
        one (always with the default ``trace_sample=1``, never with
        ``0``).
        """
        if self.trace_sample == 0:
            return False
        with self._mutex:
            self._executions += 1
            return self._executions % self.trace_sample == 0

    def record(self, record: dict[str, object]) -> None:
        """Append *record* (non-blocking; drops and counts on a full
        queue rather than stalling the query that produced it)."""
        with self._mutex:
            if self._closed:
                return
            self._recorded += 1
            if self._memory is not None:
                self._memory.append(record)
                return
        assert self._queue is not None
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            self._count_drop("the writer queue is full")

    def _count_drop(self, reason: str) -> None:
        """Count a lost record; warn once per log, never per record.

        Drops stay non-fatal and non-blocking (the whole point of the
        async writer), but they must not be *silent*: the first one
        raises a ``RuntimeWarning`` and the running total is exported
        as ``repro_querylog_dropped_total`` by the service collector.
        """
        with self._mutex:
            self._dropped += 1
            first = self._dropped == 1
        if first:
            warnings.warn(
                f"query log is dropping records ({reason}); further "
                f"drops are counted on QueryLog.dropped and the "
                f"repro_querylog_dropped_total metric without "
                f"warning again", RuntimeWarning, stacklevel=3)

    # -- writer thread ---------------------------------------------------

    def _drain(self) -> None:
        assert self._queue is not None
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                try:
                    self._append(item)  # type: ignore[arg-type]
                except OSError as error:
                    self._count_drop(f"append failed: {error}")
            finally:
                self._queue.task_done()

    def _append(self, record: dict[str, object]) -> None:
        assert self.path is not None
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        with self._mutex:
            self._written += 1
        if self._handle.tell() >= self.max_bytes:
            self._rotate()

    def _rotate(self) -> None:
        """``path`` -> ``path.1`` -> … -> ``path.backups`` (dropped)."""
        assert self.path is not None
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        oldest = f"{self.path}.{self.backups}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.backups - 1, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{index + 1}")
        if os.path.exists(self.path):
            os.replace(self.path, f"{self.path}.1")

    # -- lifecycle -------------------------------------------------------

    def flush(self) -> None:
        """Block until every record handed in so far is on disk."""
        if self._queue is not None:
            self._queue.join()

    def close(self) -> None:
        """Flush, stop the writer thread and close the file."""
        with self._mutex:
            if self._closed:
                return
            self._closed = True
        if self._queue is not None:
            self._queue.join()
            self._queue.put(_STOP)
            assert self._writer is not None
            self._writer.join(timeout=5.0)
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "QueryLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reading ---------------------------------------------------------

    def records(self) -> list[dict[str, object]]:
        """Every retained record, oldest first.

        In-memory mode snapshots the deque; file mode flushes pending
        writes and reads the files back (rotations included).
        """
        if self._memory is not None:
            with self._mutex:
                return list(self._memory)
        self.flush()
        assert self.path is not None
        return read_query_log(self.path).records

    # -- counters --------------------------------------------------------

    @property
    def recorded(self) -> int:
        """Records ever handed to :meth:`record`."""
        with self._mutex:
            return self._recorded

    @property
    def dropped(self) -> int:
        """Records lost to a full queue or a write error."""
        with self._mutex:
            return self._dropped

    @property
    def written(self) -> int:
        """Records the writer thread has persisted (file mode)."""
        with self._mutex:
            return self._written


@dataclass
class QueryLogScan:
    """Result of reading a query log from disk.

    ``skipped`` counts malformed lines (torn writes, corruption) that
    were dropped; ``files`` lists the files read, oldest first.
    """

    records: list[dict[str, object]] = field(default_factory=list)
    skipped: int = 0
    files: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)


def read_query_log(path: "str | os.PathLike[str]",
                   include_rotated: bool = True,
                   backups: int = 16) -> QueryLogScan:
    """Read a JSONL query log back, oldest record first.

    Rotated generations (``path.N`` … ``path.1``) are read before the
    active file so the stream is chronological.  Lines that are not
    valid JSON objects are skipped and counted on
    :attr:`QueryLogScan.skipped` — a crash mid-append must not make
    the whole log unreadable.
    """
    path = os.fspath(path)
    candidates: list[str] = []
    if include_rotated:
        candidates.extend(f"{path}.{index}"
                          for index in range(backups, 0, -1))
    candidates.append(path)
    scan = QueryLogScan()
    for name in candidates:
        if not os.path.exists(name):
            continue
        scan.files.append(name)
        with open(name, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    scan.skipped += 1
                    continue
                if not isinstance(record, dict):
                    scan.skipped += 1
                    continue
                scan.records.append(record)
    return scan


def iter_operator_entries(
        records: Iterable[dict[str, object]]
) -> Iterable[dict[str, object]]:
    """Every per-operator entry across *records* (traced runs only)."""
    for record in records:
        operators = record.get("operators")
        if not isinstance(operators, list):
            continue
        for entry in operators:
            if isinstance(entry, dict):
                yield entry
