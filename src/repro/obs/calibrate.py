"""Cost-model calibration: learn ``CostFactors`` from traced runs.

The paper's Sec. 2.2.2 cost model prices plans with four
system-dependent weight factors — ``f_index``, ``f_sort``, ``f_io``,
``f_stack`` — which this repository has so far hard-coded as educated
guesses.  Every traced execution in the query log pins those factors
down empirically: an operator that reports counters
``(index_items, sort_units, buffered_results, stack_tuple_ops)`` and
measured wall time ``t`` contributes one equation

    t  ≈  f_index * index_items  +  f_sort * sort_units
        + f_io * 2 * buffered_results + f_stack * 2 * stack_tuple_ops

(the exact shape of ``ExecutionMetrics.simulated_cost``).  Fitting all
logged equations by **non-negative least squares** yields factors in
*seconds per operation* — after calibration the optimizer's cost units
and the engine's wall clock are one currency, which is what makes
estimate-vs-actual cost Q-errors meaningful.

Everything is stdlib: the design matrix has four columns, so the
normal equations are at most 4×4 and NNLS is solved exactly by
enumerating the 2⁴ active sets (each a tiny Gaussian elimination) and
keeping the feasible solution with the lowest residual — no SciPy
required, no iteration-count knobs.

Fit diagnostics come with the factors: residual RMSE and R², and a
per-factor standard error from the usual OLS covariance on the active
set, plus *coverage* (how many samples actually exercised each
counter family) so a factor fitted from two samples is not mistaken
for a measured constant.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.core.cost import COST_FACTOR_NAMES, CostFactors
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import Database

__all__ = ["CalibrationResult", "FactorFit", "TraceSample",
           "calibrate_records", "cost_q_error", "evaluate_factors",
           "fit_cost_factors", "nonnegative_least_squares",
           "samples_from_records", "split_holdout"]

#: floor for cost-style Q-errors.  The classic Moerkotte clamp of 1.0
#: (used for cardinalities) is useless for wall seconds, which are
#: almost always < 1; this floor only guards log/divide-by-zero.
COST_QERROR_FLOOR = 1e-9


def cost_q_error(estimated: float, actual: float,
                 floor: float = COST_QERROR_FLOOR) -> float:
    """Symmetric estimate/actual ratio with a tiny positive floor."""
    estimated = max(float(estimated), floor)
    actual = max(float(actual), floor)
    return max(estimated, actual) / min(estimated, actual)


def counter_vector(counters: Mapping[str, object]) -> tuple[float, ...]:
    """The 4-vector multiplying ``(f_index, f_sort, f_io, f_stack)``.

    Mirrors :meth:`~repro.engine.metrics.ExecutionMetrics.simulated_cost`
    exactly, including the factor-2 on I/O (each buffered pair is
    written and re-read) and on stack ops (push + pop).
    """
    return (float(counters.get("index_items", 0) or 0),
            float(counters.get("sort_units", 0) or 0),
            2.0 * float(counters.get("buffered_results", 0) or 0),
            2.0 * float(counters.get("stack_tuple_ops", 0) or 0))


@dataclass(frozen=True)
class TraceSample:
    """One calibration equation: counter vector -> measured seconds."""

    vector: tuple[float, ...]
    seconds: float
    source: str = ""


def samples_from_records(
        records: Iterable[dict[str, object]]) -> list[TraceSample]:
    """Extract calibration samples from query-log records.

    Traced records yield one sample per operator (counter shares vs.
    the operator's *exclusive* wall time) — many well-separated
    equations per query.  Untraced records fall back to one
    query-level sample (run totals vs. total wall time).  Samples with
    an all-zero counter vector carry no information and are dropped.
    """
    samples: list[TraceSample] = []
    for record in records:
        operators = record.get("operators")
        if isinstance(operators, list) and operators:
            for entry in operators:
                if not isinstance(entry, dict):
                    continue
                counters = entry.get("counters")
                if not isinstance(counters, dict):
                    continue
                vector = counter_vector(counters)
                if not any(vector):
                    continue
                seconds = max(float(entry.get("self_seconds") or 0.0),
                              0.0)
                samples.append(TraceSample(
                    vector, seconds, str(entry.get("operator", ""))))
            continue
        counters = record.get("counters")
        if not isinstance(counters, dict):
            continue
        vector = counter_vector(counters)
        if not any(vector):
            continue
        seconds = max(float(record.get("wall_seconds") or 0.0), 0.0)
        samples.append(TraceSample(vector, seconds, "query"))
    return samples


def split_holdout(samples: Sequence[TraceSample],
                  holdout_every: int = 5
                  ) -> tuple[list[TraceSample], list[TraceSample]]:
    """Deterministic train/held-out split: every n-th sample is held
    out (n <= 1 trains and evaluates on everything)."""
    if holdout_every <= 1:
        return list(samples), list(samples)
    train = [sample for index, sample in enumerate(samples)
             if index % holdout_every]
    held = [sample for index, sample in enumerate(samples)
            if not index % holdout_every]
    if not train or not held:
        return list(samples), list(samples)
    return train, held


# -- the 4x4 linear algebra (stdlib only) --------------------------------

def _solve(matrix: list[list[float]],
           rhs: list[float]) -> list[float] | None:
    """Gaussian elimination with partial pivoting; None if singular."""
    size = len(matrix)
    augmented = [row[:] + [value] for row, value in zip(matrix, rhs)]
    for column in range(size):
        pivot = max(range(column, size),
                    key=lambda row: abs(augmented[row][column]))
        scale = max(abs(augmented[pivot][column]), 0.0)
        if scale <= 1e-300:
            return None
        augmented[column], augmented[pivot] = (augmented[pivot],
                                               augmented[column])
        head = augmented[column]
        for row in range(size):
            if row == column:
                continue
            factor = augmented[row][column] / head[column]
            if factor:
                augmented[row] = [a - factor * b
                                  for a, b in zip(augmented[row], head)]
    return [augmented[index][size] / augmented[index][index]
            for index in range(size)]


def _normal_equations(rows: Sequence[Sequence[float]],
                      targets: Sequence[float],
                      active: Sequence[int]
                      ) -> tuple[list[list[float]], list[float]]:
    xtx = [[sum(row[a] * row[b] for row in rows) for b in active]
           for a in active]
    xty = [sum(row[a] * t for row, t in zip(rows, targets))
           for a in active]
    return xtx, xty


def nonnegative_least_squares(
        rows: Sequence[Sequence[float]], targets: Sequence[float]
) -> tuple[list[float], float, tuple[int, ...]]:
    """Exact NNLS for (at most) four columns.

    Enumerates every active set, solves its normal equations, keeps
    feasible (all-non-negative) solutions and returns the one with
    the lowest residual sum of squares: ``(beta, rss, active_set)``.
    The empty set (all factors zero) is always feasible, so a result
    always exists.
    """
    width = len(rows[0]) if rows else 0
    best_beta = [0.0] * width
    best_rss = sum(t * t for t in targets)
    best_active: tuple[int, ...] = ()
    for mask in range(1, 1 << width):
        active = tuple(column for column in range(width)
                       if mask >> column & 1)
        # a column nobody exercised makes the normal equations
        # singular; skip masks that include one
        if any(all(row[column] == 0.0 for row in rows)
               for column in active):
            continue
        xtx, xty = _normal_equations(rows, targets, active)
        solution = _solve(xtx, xty)
        if solution is None:
            continue
        if any(value < -1e-18 for value in solution):
            continue
        beta = [0.0] * width
        for column, value in zip(active, solution):
            beta[column] = max(value, 0.0)
        rss = sum((sum(r * b for r, b in zip(row, beta)) - t) ** 2
                  for row, t in zip(rows, targets))
        if rss < best_rss - 1e-300 * max(best_rss, 1.0) or (
                math.isclose(rss, best_rss, rel_tol=1e-12)
                and len(active) < len(best_active)):
            best_beta, best_rss, best_active = beta, rss, active
    return best_beta, max(best_rss, 0.0), best_active


# -- results -------------------------------------------------------------

@dataclass
class FactorFit:
    """One fitted factor plus its uncertainty and data coverage."""

    name: str
    value: float
    stderr: float | None
    coverage: int

    @property
    def relative_error(self) -> float | None:
        """stderr / value — the per-factor confidence (None when the
        factor was not identifiable from the data)."""
        if self.stderr is None or self.value <= 0.0:
            return None
        return self.stderr / self.value


@dataclass
class CalibrationResult:
    """Fitted factors with residual diagnostics and holdout scores."""

    factors: CostFactors
    fits: list[FactorFit]
    samples: int
    rss: float
    rmse: float
    r2: float
    holdout: dict[str, float] = field(default_factory=dict)

    @property
    def improved(self) -> bool:
        """Did the learned factors beat the defaults on held-out data?"""
        learned = self.holdout.get("learned_q_error")
        default = self.holdout.get("default_q_error")
        if learned is None or default is None:
            return False
        return learned < default

    def apply(self, database: "Database") -> None:
        """Install the learned factors on *database* (swaps the cost
        model at runtime and invalidates every cached plan)."""
        database.set_cost_factors(self.factors)

    def to_dict(self) -> dict[str, object]:
        return {
            "factors": self.factors.to_dict(),
            "fits": [{
                "name": fit.name,
                "value": fit.value,
                "stderr": fit.stderr,
                "relative_error": fit.relative_error,
                "coverage": fit.coverage,
            } for fit in self.fits],
            "samples": self.samples,
            "rss": self.rss,
            "rmse": self.rmse,
            "r2": self.r2,
            "holdout": dict(self.holdout),
            "improved": self.improved,
        }

    def render(self) -> str:
        lines = [f"calibrated cost factors from {self.samples} traced "
                 f"samples (rmse {self.rmse:.3e} s, r2 {self.r2:.4f})"]
        for fit in self.fits:
            error = ("+/- n/a" if fit.stderr is None
                     else f"+/- {fit.stderr:.3e}")
            confidence = fit.relative_error
            extra = ("" if confidence is None
                     else f" ({confidence:.1%} rel)")
            lines.append(f"  {fit.name:8s} {fit.value:.6e} s/op "
                         f"{error}{extra}  [{fit.coverage} samples]")
        if self.holdout:
            lines.append(
                f"holdout ({int(self.holdout.get('samples', 0))} "
                f"samples): geomean cost q-error "
                f"{self.holdout.get('learned_q_error', 0.0):.3f} "
                f"learned vs "
                f"{self.holdout.get('default_q_error', 0.0):.3e} "
                f"default factors"
                f" -> {'improved' if self.improved else 'NOT improved'}")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def fit_cost_factors(samples: Sequence[TraceSample]) -> CalibrationResult:
    """Fit :class:`CostFactors` to *samples* by non-negative least
    squares; raises :class:`~repro.errors.ReproError` without data."""
    if not samples:
        raise ReproError(
            "cannot calibrate from an empty sample set; run a traced "
            "workload first (QueryLog with trace_sample >= 1)")
    rows = [list(sample.vector) for sample in samples]
    targets = [sample.seconds for sample in samples]
    beta, rss, active = nonnegative_least_squares(rows, targets)
    count = len(samples)
    rmse = math.sqrt(rss / count)
    mean = sum(targets) / count
    tss = sum((t - mean) ** 2 for t in targets)
    r2 = 1.0 - rss / tss if tss > 0 else (1.0 if rss == 0 else 0.0)
    stderrs = _standard_errors(rows, targets, beta, rss, active)
    fits = [FactorFit(
        name=name,
        value=beta[index],
        stderr=stderrs.get(index),
        coverage=sum(1 for row in rows if row[index] > 0.0),
    ) for index, name in enumerate(COST_FACTOR_NAMES)]
    factors = CostFactors(*beta)
    return CalibrationResult(factors=factors, fits=fits, samples=count,
                             rss=rss, rmse=rmse, r2=r2)


def _standard_errors(rows: Sequence[Sequence[float]],
                     targets: Sequence[float], beta: Sequence[float],
                     rss: float,
                     active: Sequence[int]) -> dict[int, float]:
    """OLS standard errors on the active set: sqrt(s2 * inv(X'X)_jj)."""
    if not active:
        return {}
    degrees = len(rows) - len(active)
    if degrees <= 0:
        return {}
    sigma2 = rss / degrees
    xtx, _ = _normal_equations(rows, targets, active)
    errors: dict[int, float] = {}
    size = len(active)
    for position, column in enumerate(active):
        unit = [1.0 if index == position else 0.0
                for index in range(size)]
        inverse_column = _solve([row[:] for row in xtx], unit)
        if inverse_column is None:
            continue
        variance = sigma2 * inverse_column[position]
        if variance >= 0.0:
            errors[column] = math.sqrt(variance)
    return errors


def evaluate_factors(factors: CostFactors,
                     samples: Sequence[TraceSample],
                     floor: float = COST_QERROR_FLOOR) -> float:
    """Geometric-mean cost Q-error of *factors* over *samples*.

    Predicts each sample's cost as the factor/counter dot product and
    compares with the measured seconds; 1.0 is a perfect model.
    """
    if not samples:
        return 1.0
    weights = factors.as_tuple()
    total = 0.0
    for sample in samples:
        predicted = sum(w * x for w, x in zip(weights, sample.vector))
        total += math.log(cost_q_error(predicted, sample.seconds, floor))
    return math.exp(total / len(samples))


def calibrate_records(records: Iterable[dict[str, object]],
                      holdout_every: int = 5,
                      baseline: CostFactors | None = None
                      ) -> CalibrationResult:
    """End-to-end: query-log records -> fitted, holdout-scored factors.

    Fits on the training split and scores both the learned factors and
    *baseline* (the hard-coded defaults unless given) on the held-out
    split, so callers — and the ``calibrate`` CLI — can verify the
    learned model actually predicts unseen operator costs better.
    """
    samples = samples_from_records(records)
    if not samples:
        raise ReproError(
            "query log holds no usable samples; records need counters "
            "(traced records with per-operator shares are best)")
    train, held = split_holdout(samples, holdout_every)
    result = fit_cost_factors(train)
    result.holdout = {
        "samples": float(len(held)),
        "learned_q_error": evaluate_factors(result.factors, held),
        "default_q_error": evaluate_factors(
            baseline if baseline is not None else CostFactors(), held),
    }
    return result
