"""Span trees: per-query tracing for the execution engines.

A :class:`Span` is one timed node of a query's trace — a pipeline
stage (parse, optimize, execute) or one physical operator.  Operator
spans additionally carry the operator's *private*
:class:`~repro.engine.metrics.ExecutionMetrics`, so each operator's
share of every cost-model counter is attributed exactly: when tracing
is enabled the executor hands every operator its own counters and
merges them back into the run totals afterwards, which keeps the
per-operator shares summing *exactly* to the run's
``ExecutionMetrics`` (asserted by ``tests/test_obs.py``).

Instrumentation is zero-cost when disabled: operators carry a
``_span`` slot that defaults to ``None`` and is checked once per
``run()``/``block()`` call — never per tuple — so the untraced hot
path is unchanged (see DESIGN.md, "Observability").

Span trees export as JSON (:meth:`Span.to_dict`) and as an indented
text tree (:meth:`Span.render`).  A :class:`Tracer` is a thread-safe
bounded ring of finished query traces.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator

__all__ = ["Span", "Tracer"]

#: counters exported per operator span (the cost-model counters plus
#: the sort diagnostics; page/buffer I/O stays run-level — the buffer
#: pool is shared, so per-operator attribution would be approximate).
SPAN_COUNTERS = ("index_items", "sort_count", "sorted_items",
                 "sort_units", "buffered_results", "stack_tuple_ops",
                 "output_tuples", "join_count")


class Span:
    """One timed node of a query trace.

    ``seconds`` is *inclusive* (children run within their parent);
    :meth:`exclusive_seconds` subtracts the children.  For operator
    spans, ``metrics`` holds the operator's private counters and
    ``estimated_cardinality`` / ``estimated_cost`` echo the plan
    annotations the optimizer derived, so estimate-vs-actual drift can
    be computed per operator (:mod:`repro.obs.explain`).
    """

    __slots__ = ("name", "detail", "seconds", "output_rows",
                 "estimated_cardinality", "estimated_cost", "metrics",
                 "children")

    def __init__(self, name: str, detail: str = "",
                 estimated_cardinality: float | None = None,
                 estimated_cost: float | None = None,
                 metrics: object | None = None) -> None:
        self.name = name
        self.detail = detail
        self.seconds = 0.0
        self.output_rows = 0
        self.estimated_cardinality = estimated_cardinality
        self.estimated_cost = estimated_cost
        self.metrics = metrics
        self.children: list[Span] = []

    # -- instrumentation hooks (hot path; called by the engines) ---------

    def wrap(self, stream: Iterator) -> Iterator:
        """Time a tuple stream: accumulate per-``next`` wall time and
        count rows.  Used by the iterator engine, where an operator's
        work is interleaved with its consumers'."""
        clock = time.perf_counter
        while True:
            started = clock()
            try:
                item = next(stream)
            except StopIteration:
                self.seconds += clock() - started
                return
            self.seconds += clock() - started
            self.output_rows += 1
            yield item

    # -- structure -------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def exclusive_seconds(self) -> float:
        """Time spent in this span minus its children (>= 0)."""
        return max(0.0, self.seconds
                   - sum(child.seconds for child in self.children))

    def counters(self) -> dict[str, float]:
        """This span's share of the cost-model counters ({} if none)."""
        if self.metrics is None:
            return {}
        return {name: getattr(self.metrics, name)
                for name in SPAN_COUNTERS}

    # -- export ----------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-able rendering of the subtree."""
        payload: dict[str, object] = {
            "name": self.name,
            "detail": self.detail,
            "seconds": self.seconds,
            "exclusive_seconds": self.exclusive_seconds(),
            "output_rows": self.output_rows,
        }
        if self.estimated_cardinality is not None:
            payload["estimated_cardinality"] = self.estimated_cardinality
        if self.estimated_cost is not None:
            payload["estimated_cost"] = self.estimated_cost
        if self.metrics is not None:
            payload["counters"] = self.counters()
            payload["simulated_cost"] = self.metrics.simulated_cost()
        payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def render(self, indent: int = 0) -> str:
        """Indented text tree of the subtree."""
        lines: list[str] = []
        self._render(indent, lines)
        return "\n".join(lines)

    def _render(self, depth: int, lines: list[str]) -> None:
        label = self.detail or self.name
        extras = ""
        if self.metrics is not None:
            extras = (f" rows={self.output_rows}"
                      f" cost={self.metrics.simulated_cost():.1f}")
        lines.append(f"{'  ' * depth}{label}"
                     f" {self.seconds * 1e3:.2f}ms{extras}")
        for child in self.children:
            child._render(depth + 1, lines)

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, rows={self.output_rows}, "
                f"seconds={self.seconds:.6f}, "
                f"children={len(self.children)})")


class Tracer:
    """Thread-safe bounded ring of finished query span trees.

    One tracer per :class:`~repro.api.Database`; every traced query
    (``Database.explain(..., analyze=True)``) records its root span
    here, oldest dropped first once *capacity* traces are held.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be at least 1")
        self.capacity = capacity
        self._mutex = threading.Lock()
        self._traces: list[Span] = []
        self._recorded = 0

    def record(self, span: Span) -> None:
        """Add a finished trace (drops the oldest beyond capacity)."""
        with self._mutex:
            self._recorded += 1
            self._traces.append(span)
            if len(self._traces) > self.capacity:
                del self._traces[:len(self._traces) - self.capacity]

    def traces(self) -> list[Span]:
        """The retained traces, oldest first (snapshot copy)."""
        with self._mutex:
            return list(self._traces)

    @property
    def recorded(self) -> int:
        """Total traces ever recorded (including dropped ones)."""
        with self._mutex:
            return self._recorded

    def clear(self) -> None:
        with self._mutex:
            self._traces.clear()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._traces)
