"""Span trees: per-query tracing for the execution engines.

A :class:`Span` is one timed node of a query's trace — a pipeline
stage (parse, optimize, execute) or one physical operator.  Operator
spans additionally carry the operator's *private*
:class:`~repro.engine.metrics.ExecutionMetrics`, so each operator's
share of every cost-model counter is attributed exactly: when tracing
is enabled the executor hands every operator its own counters and
merges them back into the run totals afterwards, which keeps the
per-operator shares summing *exactly* to the run's
``ExecutionMetrics`` (asserted by ``tests/test_obs.py``).

Instrumentation is zero-cost when disabled: operators carry a
``_span`` slot that defaults to ``None`` and is checked once per
``run()``/``block()`` call — never per tuple — so the untraced hot
path is unchanged (see DESIGN.md, "Observability").

Span trees export as JSON (:meth:`Span.to_dict`) and as an indented
text tree (:meth:`Span.render`).  A :class:`Tracer` is a thread-safe
bounded ring of finished query traces.

Distributed tracing: a :class:`TraceContext` names one trace (trace
id, parent span id, sampling decision) and crosses process boundaries
as a plain dict.  Shard workers serialize their span subtrees with
:meth:`Span.to_dict`; the coordinator rebuilds them with
:meth:`Span.from_dict` — counters are preserved *exactly* (they ride
as ints), so stitched per-shard shares still sum to the merged run
totals — and :func:`assign_span_ids` stamps unique span ids with
well-formed parent links over the stitched tree.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Iterator

__all__ = ["FrozenMetrics", "Span", "TraceContext", "Tracer",
           "assign_span_ids"]

#: counters exported per operator span (the cost-model counters plus
#: the sort diagnostics; page/buffer I/O stays run-level — the buffer
#: pool is shared, so per-operator attribution would be approximate).
SPAN_COUNTERS = ("index_items", "sort_count", "sorted_items",
                 "sort_units", "buffered_results", "stack_tuple_ops",
                 "output_tuples", "join_count")


class TraceContext:
    """Identity of one distributed trace, propagated across processes.

    ``trace_id`` names the whole trace; ``parent_span_id`` is the
    coordinator-side span the receiver's subtree hangs under;
    ``sampled`` carries the sampling decision (an unsampled context
    still propagates the ids so logs can be joined to the trace).
    Serializes to a plain dict — the shard pipe protocol and any
    future network front-end ship it as data, never as live objects.
    """

    __slots__ = ("trace_id", "parent_span_id", "sampled")

    def __init__(self, trace_id: str, parent_span_id: str = "",
                 sampled: bool = True) -> None:
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.sampled = sampled

    @classmethod
    def new(cls, sampled: bool = True) -> "TraceContext":
        """Fresh 16-hex-digit trace id (random, collision-safe)."""
        return cls(trace_id=uuid.uuid4().hex[:16], sampled=sampled)

    def child(self, parent_span_id: str) -> "TraceContext":
        """The context a downstream worker runs under."""
        return TraceContext(self.trace_id, parent_span_id, self.sampled)

    def to_dict(self) -> dict[str, object]:
        return {"trace_id": self.trace_id,
                "parent_span_id": self.parent_span_id,
                "sampled": self.sampled}

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        return cls(trace_id=str(payload.get("trace_id", "")),
                   parent_span_id=str(payload.get("parent_span_id", "")),
                   sampled=bool(payload.get("sampled", True)))

    def __repr__(self) -> str:
        return (f"TraceContext({self.trace_id!r}, "
                f"parent={self.parent_span_id!r}, "
                f"sampled={self.sampled})")


class FrozenMetrics:
    """Counter shares of a span rebuilt from its serialized form.

    Stands in for the live
    :class:`~repro.engine.metrics.ExecutionMetrics` a worker-side span
    carried: exposes the :data:`SPAN_COUNTERS` as attributes and the
    recorded ``simulated_cost()``, which is all
    :func:`repro.obs.explain.build_analysis` and
    :meth:`Span.counters` need.  Values are frozen at serialization
    time — exact ints for the counters, so stitched shares still sum
    precisely to the merged run totals.
    """

    __slots__ = SPAN_COUNTERS + ("_simulated_cost",)

    def __init__(self, counters: dict[str, float],
                 simulated_cost: float) -> None:
        for name in SPAN_COUNTERS:
            setattr(self, name, counters.get(name, 0))
        self._simulated_cost = simulated_cost

    def simulated_cost(self) -> float:
        return self._simulated_cost


class Span:
    """One timed node of a query trace.

    ``seconds`` is *inclusive* (children run within their parent);
    :meth:`exclusive_seconds` subtracts the children.  For operator
    spans, ``metrics`` holds the operator's private counters and
    ``estimated_cardinality`` / ``estimated_cost`` echo the plan
    annotations the optimizer derived, so estimate-vs-actual drift can
    be computed per operator (:mod:`repro.obs.explain`).
    """

    __slots__ = ("name", "detail", "seconds", "output_rows",
                 "estimated_cardinality", "estimated_cost", "metrics",
                 "children", "trace_id", "span_id", "parent_span_id")

    def __init__(self, name: str, detail: str = "",
                 estimated_cardinality: float | None = None,
                 estimated_cost: float | None = None,
                 metrics: object | None = None) -> None:
        self.name = name
        self.detail = detail
        self.seconds = 0.0
        self.output_rows = 0
        self.estimated_cardinality = estimated_cardinality
        self.estimated_cost = estimated_cost
        self.metrics = metrics
        self.children: list[Span] = []
        #: distributed-trace identity, empty until the span tree is
        #: stamped with :func:`assign_span_ids` (never on the untraced
        #: hot path — ids are assigned once per finished trace).
        self.trace_id = ""
        self.span_id = ""
        self.parent_span_id = ""

    # -- instrumentation hooks (hot path; called by the engines) ---------

    def wrap(self, stream: Iterator) -> Iterator:
        """Time a tuple stream: accumulate per-``next`` wall time and
        count rows.  Used by the iterator engine, where an operator's
        work is interleaved with its consumers'."""
        clock = time.perf_counter
        while True:
            started = clock()
            try:
                item = next(stream)
            except StopIteration:
                self.seconds += clock() - started
                return
            self.seconds += clock() - started
            self.output_rows += 1
            yield item

    # -- structure -------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def exclusive_seconds(self) -> float:
        """Time spent in this span minus its children (>= 0)."""
        return max(0.0, self.seconds
                   - sum(child.seconds for child in self.children))

    def counters(self) -> dict[str, float]:
        """This span's share of the cost-model counters ({} if none)."""
        if self.metrics is None:
            return {}
        return {name: getattr(self.metrics, name)
                for name in SPAN_COUNTERS}

    # -- export ----------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-able rendering of the subtree."""
        payload: dict[str, object] = {
            "name": self.name,
            "detail": self.detail,
            "seconds": self.seconds,
            "exclusive_seconds": self.exclusive_seconds(),
            "output_rows": self.output_rows,
        }
        if self.trace_id:
            payload["trace_id"] = self.trace_id
        if self.span_id:
            payload["span_id"] = self.span_id
        if self.parent_span_id:
            payload["parent_span_id"] = self.parent_span_id
        if self.estimated_cardinality is not None:
            payload["estimated_cardinality"] = self.estimated_cardinality
        if self.estimated_cost is not None:
            payload["estimated_cost"] = self.estimated_cost
        if self.metrics is not None:
            payload["counters"] = self.counters()
            payload["simulated_cost"] = self.metrics.simulated_cost()
        payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span subtree from its :meth:`to_dict` form.

        The wire format for cross-process span shipping (shard workers
        serialize, the coordinator stitches): live engine metrics come
        back as a :class:`FrozenMetrics` carrying the exact counter
        shares and the recorded simulated cost, so
        estimate-vs-actual analysis and differential counter checks
        work identically on stitched trees.
        """
        span = cls(str(payload.get("name", "")),
                   detail=str(payload.get("detail", "")),
                   estimated_cardinality=payload.get(
                       "estimated_cardinality"),
                   estimated_cost=payload.get("estimated_cost"))
        span.seconds = float(payload.get("seconds", 0.0))
        span.output_rows = int(payload.get("output_rows", 0))
        span.trace_id = str(payload.get("trace_id", ""))
        span.span_id = str(payload.get("span_id", ""))
        span.parent_span_id = str(payload.get("parent_span_id", ""))
        counters = payload.get("counters")
        if isinstance(counters, dict):
            span.metrics = FrozenMetrics(
                counters, float(payload.get("simulated_cost", 0.0)))
        span.children = [cls.from_dict(child)
                         for child in payload.get("children", ())]
        return span

    def render(self, indent: int = 0) -> str:
        """Indented text tree of the subtree."""
        lines: list[str] = []
        self._render(indent, lines)
        return "\n".join(lines)

    def _render(self, depth: int, lines: list[str]) -> None:
        label = self.detail or self.name
        extras = ""
        if self.metrics is not None:
            extras = (f" rows={self.output_rows}"
                      f" cost={self.metrics.simulated_cost():.1f}")
        lines.append(f"{'  ' * depth}{label}"
                     f" {self.seconds * 1e3:.2f}ms{extras}")
        for child in self.children:
            child._render(depth + 1, lines)

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, rows={self.output_rows}, "
                f"seconds={self.seconds:.6f}, "
                f"children={len(self.children)})")


def assign_span_ids(root: Span, trace_id: str,
                    parent_span_id: str = "", prefix: str = "") -> None:
    """Stamp a finished span tree with trace identity.

    Pre-order numbering under *prefix* gives every span a unique id
    (``<prefix><n>``) and each child a ``parent_span_id`` equal to its
    parent's ``span_id`` — well-formed parentage by construction.
    Worker subtrees are stamped with a per-shard prefix before
    shipping, coordinator spans with their own, so ids stay unique
    across the stitched trace.  Idempotent: re-stamping overwrites.
    """
    counter = 0

    def stamp(span: Span, parent_id: str) -> None:
        nonlocal counter
        span.trace_id = trace_id
        span.span_id = f"{prefix}{counter:x}"
        span.parent_span_id = parent_id
        counter += 1
        for child in span.children:
            stamp(child, span.span_id)

    stamp(root, parent_span_id)


class Tracer:
    """Thread-safe bounded ring of finished query span trees.

    One tracer per :class:`~repro.api.Database`; every traced query
    (``Database.explain(..., analyze=True)``) records its root span
    here, oldest dropped first once *capacity* traces are held.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be at least 1")
        self.capacity = capacity
        self._mutex = threading.Lock()
        self._traces: list[Span] = []
        self._recorded = 0

    def record(self, span: Span) -> None:
        """Add a finished trace (drops the oldest beyond capacity)."""
        with self._mutex:
            self._recorded += 1
            self._traces.append(span)
            if len(self._traces) > self.capacity:
                del self._traces[:len(self._traces) - self.capacity]

    def traces(self) -> list[Span]:
        """The retained traces, oldest first (snapshot copy)."""
        with self._mutex:
            return list(self._traces)

    @property
    def recorded(self) -> int:
        """Total traces ever recorded (including dropped ones)."""
        with self._mutex:
            return self._recorded

    def clear(self) -> None:
        with self._mutex:
            self._traces.clear()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._traces)
