"""Observability: spans, EXPLAIN ANALYZE, metrics, and the feedback loop.

Six pieces, threaded through every layer of the system:

* :mod:`repro.obs.spans` — per-query span trees (pipeline stages plus
  one span per plan operator in both engines), with exact
  per-operator shares of the cost-model counters;
* :mod:`repro.obs.explain` — estimate-vs-actual plan feedback with
  per-operator Q-errors (``Database.explain(query, analyze=True)``);
* :mod:`repro.obs.registry` — named counters/gauges/histograms with
  Prometheus-text and JSON exporters, interpolated histogram
  quantiles, plus the uniform
  :class:`~repro.obs.registry.SampleReservoir` backing the query
  service's latency percentiles;
* :mod:`repro.obs.querylog` — a durable, size-bounded JSONL log of
  executed queries, written asynchronously, with rotation and a
  corruption-tolerant reader;
* :mod:`repro.obs.calibrate` — fits
  :class:`~repro.core.cost.CostFactors` from logged traced runs by
  non-negative least squares, with residuals, per-factor confidence
  and holdout scoring;
* :mod:`repro.obs.audit` — replays logged patterns through the
  optimizer under current statistics/factors and flags plan flips and
  Q-error drift (human report + scrapeable gauges);
* :mod:`repro.obs.slo` — declarative service-level objectives over
  the live query stream: compliance, error-budget burn rates and
  per-bucket trace exemplars (``/slo``).

Spans carry trace identity (:class:`repro.obs.spans.TraceContext`)
across process boundaries, so a sharded query stitches every worker's
subtree into one distributed trace whose counter shares sum exactly
to the merged totals.

All engine-level instrumentation is zero-cost when disabled: a single
``is None`` check per operator per execution, never per tuple.
"""

from repro.obs.explain import (ExplainReport, OperatorAnalysis,
                               build_analysis, q_error)
from repro.obs.registry import (BucketRecorder, Counter, Gauge,
                                Histogram, MetricsRegistry,
                                SampleReservoir, get_global_registry)
from repro.obs.slo import DEFAULT_OBJECTIVES, SLObjective, SLOTracker
from repro.obs.spans import (FrozenMetrics, Span, TraceContext, Tracer,
                             assign_span_ids)
from repro.obs.querylog import (QueryLog, QueryLogScan, build_record,
                                read_query_log, signature_digest)
from repro.obs.calibrate import (CalibrationResult, FactorFit,
                                 TraceSample, calibrate_records,
                                 cost_q_error, evaluate_factors,
                                 fit_cost_factors, samples_from_records)
from repro.obs.audit import AuditReport, QueryAudit, audit_records

__all__ = [
    "ExplainReport",
    "OperatorAnalysis",
    "build_analysis",
    "q_error",
    "BucketRecorder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SampleReservoir",
    "get_global_registry",
    "DEFAULT_OBJECTIVES",
    "SLObjective",
    "SLOTracker",
    "FrozenMetrics",
    "Span",
    "TraceContext",
    "Tracer",
    "assign_span_ids",
    "QueryLog",
    "QueryLogScan",
    "build_record",
    "read_query_log",
    "signature_digest",
    "CalibrationResult",
    "FactorFit",
    "TraceSample",
    "calibrate_records",
    "cost_q_error",
    "evaluate_factors",
    "fit_cost_factors",
    "samples_from_records",
    "AuditReport",
    "QueryAudit",
    "audit_records",
]
