"""Observability: spans, EXPLAIN ANALYZE, and a metrics registry.

Three pieces, threaded through every layer of the system:

* :mod:`repro.obs.spans` — per-query span trees (pipeline stages plus
  one span per plan operator in both engines), with exact
  per-operator shares of the cost-model counters;
* :mod:`repro.obs.explain` — estimate-vs-actual plan feedback with
  per-operator Q-errors (``Database.explain(query, analyze=True)``);
* :mod:`repro.obs.registry` — named counters/gauges/histograms with
  Prometheus-text and JSON exporters, plus the uniform
  :class:`~repro.obs.registry.SampleReservoir` backing the query
  service's latency percentiles.

All engine-level instrumentation is zero-cost when disabled: a single
``is None`` check per operator per execution, never per tuple.
"""

from repro.obs.explain import (ExplainReport, OperatorAnalysis,
                               build_analysis, q_error)
from repro.obs.registry import (Counter, Gauge, Histogram,
                                MetricsRegistry, SampleReservoir,
                                get_global_registry)
from repro.obs.spans import Span, Tracer

__all__ = [
    "ExplainReport",
    "OperatorAnalysis",
    "build_analysis",
    "q_error",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SampleReservoir",
    "get_global_registry",
    "Span",
    "Tracer",
]
