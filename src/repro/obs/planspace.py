"""Plan-space rendering, plan forensics, and what-if analysis.

Three related capabilities over the optimizer's search space:

* :func:`build_plan_space_report` turns a filled
  :class:`~repro.core.planspace.PlanSpaceRecorder` into a
  :class:`PlanSpaceReport` — top-k alternative plans with
  renumbering-invariant digests and cost deltas, pruning-effectiveness
  stats, memo size, and a "why the winner won" attribution.
* Digest forensics: :func:`plan_digest_diff` diffs two canonical plan
  digests operator by operator, and :func:`plan_from_digest` rebuilds
  a physical plan from a logged digest, so logged plans can be
  re-priced under current statistics (the crossover evidence behind
  ``audit --why``).
* :func:`run_whatif` re-optimizes a query under hypothetical cost
  factors, scaled statistics, or a forced plan — without mutating the
  database — and explains any plan flip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.errors import PlanError, ReproError
from repro.core.cost import CostFactors, CostModel
from repro.core.enumeration import EnumerationContext, estimate_plan_cost
from repro.core.planspace import (FAMILIES, PlanSpaceRecorder,
                                  plan_cost_breakdown)
from repro.core.plans import (IndexScanPlan, JoinAlgorithm, PhysicalPlan,
                              SortPlan, StructuralJoinPlan, validate_plan)
from repro.core.pattern import QueryPattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import Database

__all__ = ["PlanAlternative", "PlanSpaceReport", "WhatIfResult",
           "build_plan_space_report", "plan_digest_diff",
           "plan_from_digest", "run_whatif"]


# -- digest parsing ---------------------------------------------------------

@dataclass
class _DigestNode:
    """One operator parsed out of a canonical plan digest."""

    kind: str  # "scan" | "sort" | "join"
    rank: int = 0           # scan rank, or sort by-rank
    anc_rank: int = 0
    desc_rank: int = 0
    axis: str = ""
    algorithm: str = ""
    children: tuple["_DigestNode", ...] = ()


def parse_plan_digest(digest: str) -> _DigestNode:
    """Parse the :func:`canonical_plan_digest` grammar back to a tree.

    Grammar: ``scan(R)``, ``sort[R](plan)``,
    ``ALGO[R axis R](plan,plan)`` with axis ``/`` or ``//``.
    """
    pos = 0

    def fail(expected: str) -> PlanError:
        return PlanError(f"bad plan digest at offset {pos}: expected "
                         f"{expected} in {digest!r}")

    def expect(token: str) -> None:
        nonlocal pos
        if not digest.startswith(token, pos):
            raise fail(token)
        pos += len(token)

    def read_int() -> int:
        nonlocal pos
        start = pos
        while pos < len(digest) and digest[pos].isdigit():
            pos += 1
        if pos == start:
            raise fail("an integer rank")
        return int(digest[start:pos])

    def read_axis() -> str:
        nonlocal pos
        start = pos
        while pos < len(digest) and digest[pos] == "/":
            pos += 1
        if pos - start not in (1, 2):
            raise fail("axis / or //")
        return digest[start:pos]

    def parse() -> _DigestNode:
        nonlocal pos
        start = pos
        while pos < len(digest) and digest[pos] not in "([":
            pos += 1
        name = digest[start:pos]
        if name == "scan":
            expect("(")
            rank = read_int()
            expect(")")
            return _DigestNode("scan", rank=rank)
        if name == "sort":
            expect("[")
            rank = read_int()
            expect("]")
            expect("(")
            child = parse()
            expect(")")
            return _DigestNode("sort", rank=rank, children=(child,))
        expect("[")
        anc_rank = read_int()
        axis = read_axis()
        desc_rank = read_int()
        expect("]")
        expect("(")
        ancestor = parse()
        expect(",")
        descendant = parse()
        expect(")")
        return _DigestNode("join", anc_rank=anc_rank, desc_rank=desc_rank,
                           axis=axis, algorithm=name,
                           children=(ancestor, descendant))

    tree = parse()
    if pos != len(digest):
        raise fail("end of digest")
    return tree


def _digest_operators(node: _DigestNode) -> list[str]:
    ops: list[str] = []
    if node.kind == "scan":
        ops.append(f"scan({node.rank})")
    elif node.kind == "sort":
        ops.append(f"sort[{node.rank}]")
    else:
        ops.append(f"{node.algorithm}[{node.anc_rank}{node.axis}"
                   f"{node.desc_rank}]")
    for child in node.children:
        ops.extend(_digest_operators(child))
    return ops


def plan_digest_diff(old_digest: str,
                     new_digest: str) -> dict[str, object]:
    """Operator-multiset diff between two canonical plan digests.

    Returns ``{"removed": [...], "added": [...], "unchanged": N}`` —
    the operators only the old plan has, only the new plan has, and
    the count both share.  An empty removed+added means the plans are
    structurally identical (possibly different operator order in the
    digest tree, which the multiset view deliberately ignores).
    """
    from collections import Counter

    old_ops = Counter(_digest_operators(parse_plan_digest(old_digest)))
    new_ops = Counter(_digest_operators(parse_plan_digest(new_digest)))
    return {
        "removed": sorted((old_ops - new_ops).elements()),
        "added": sorted((new_ops - old_ops).elements()),
        "unchanged": sum((old_ops & new_ops).values()),
    }


# -- digest -> plan reconstruction ------------------------------------------

def _rank_labels(pattern: QueryPattern) -> dict[int, int]:
    """node id -> canonical rank, exactly as the digest assigns them."""
    from repro.service.cache import _node_signatures

    signatures = _node_signatures(pattern)
    ranks = {key: rank for rank, key in enumerate(
        sorted({repr(sig) for sig in signatures.values()}))}
    return {node_id: ranks[repr(signatures[node_id])]
            for node_id in signatures}


class _Unsatisfiable(Exception):
    """Internal: this scan assignment cannot produce a valid plan."""


def plan_from_digest(digest: str, pattern: QueryPattern,
                     max_attempts: int = 5000) -> PhysicalPlan:
    """Rebuild a physical plan for *pattern* from a canonical digest.

    Canonical ranks are mapped back to pattern-node ids; when several
    nodes share a rank (interchangeable subtrees) the assignment is
    searched with backtracking until the joins line up with pattern
    edges — any signature-respecting assignment yields a semantically
    equivalent plan, which is the same freedom ``remap_plan`` has.
    The returned plan carries zeroed cost annotations; price it with
    :func:`~repro.core.enumeration.estimate_plan_cost`.
    """
    tree = parse_plan_digest(digest)
    labels = _rank_labels(pattern)
    pools: dict[int, list[int]] = {}
    for node_id, rank in sorted(labels.items()):
        pools.setdefault(rank, []).append(node_id)

    scan_slots: list[_DigestNode] = [
        node for node in _walk_digest(tree) if node.kind == "scan"]
    if len(scan_slots) != len(pattern):
        raise PlanError(
            f"digest binds {len(scan_slots)} scans, pattern has "
            f"{len(pattern)} nodes")

    assignment: dict[int, int] = {}  # index in scan_slots -> node id
    used: set[int] = set()
    attempts = 0

    def construct(node: _DigestNode, slot_iter: "list[int]") -> PhysicalPlan:
        """Build the plan bottom-up from the current full assignment."""
        if node.kind == "scan":
            return IndexScanPlan(assignment[slot_iter.pop(0)])
        if node.kind == "sort":
            child = construct(node.children[0], slot_iter)
            matches = [n for n in child.pattern_nodes()
                       if labels[n] == node.rank]
            if not matches:
                raise _Unsatisfiable
            return SortPlan(child, min(matches))
        ancestor = construct(node.children[0], slot_iter)
        descendant = construct(node.children[1], slot_iter)
        for anc_id in sorted(n for n in ancestor.pattern_nodes()
                             if labels[n] == node.anc_rank):
            for desc_id in sorted(n for n in descendant.pattern_nodes()
                                  if labels[n] == node.desc_rank):
                edge = pattern.edge_between(anc_id, desc_id)
                if (edge is not None
                        and (edge.parent, edge.child) == (anc_id, desc_id)
                        and str(edge.axis) == node.axis):
                    return StructuralJoinPlan(
                        ancestor, descendant, anc_id, desc_id,
                        edge.axis, JoinAlgorithm(node.algorithm))
        raise _Unsatisfiable

    def assign(index: int) -> PhysicalPlan | None:
        nonlocal attempts
        if index == len(scan_slots):
            attempts += 1
            try:
                plan = construct(tree, list(range(len(scan_slots))))
                validate_plan(plan, pattern)
                return plan
            except (_Unsatisfiable, PlanError):
                return None
        if attempts >= max_attempts:
            return None
        for node_id in pools.get(scan_slots[index].rank, ()):
            if node_id in used:
                continue
            assignment[index] = node_id
            used.add(node_id)
            plan = assign(index + 1)
            used.discard(node_id)
            if plan is not None:
                return plan
        return None

    plan = assign(0)
    if plan is None:
        raise PlanError(
            f"could not reconstruct a valid plan for the pattern from "
            f"digest {digest!r}")
    return plan


def _walk_digest(node: _DigestNode):
    """Pre-order walk matching ``construct``'s slot consumption order."""
    yield node
    for child in node.children:
        yield from _walk_digest(child)


# -- plan-space report ------------------------------------------------------

@dataclass
class PlanAlternative:
    """One complete plan the search reached, ranked against the winner."""

    digest: str
    cost: float
    delta: float
    note: str
    breakdown: dict[str, float]
    sorts: int
    pipelined: bool

    def to_dict(self) -> dict[str, object]:
        return {"digest": self.digest, "cost": self.cost,
                "delta": self.delta, "note": self.note,
                "breakdown": dict(self.breakdown), "sorts": self.sorts,
                "pipelined": self.pipelined}


@dataclass
class PlanSpaceReport:
    """Rendered view of one optimize() call's search space."""

    query: str
    algorithm: str
    winner_digest: str
    winner_cost: float
    winner_breakdown: dict[str, float]
    winner_sorts: int
    winner_pipelined: bool
    alternatives: list[PlanAlternative]
    finals_reached: int
    pruning: dict[str, int]
    pruned_total: int
    candidates_enumerated: int
    candidates_dropped: int
    memo_size: int
    memo_entries: list[dict[str, object]]
    plans_considered: int
    statuses_generated: int
    memo_hits: int
    optimization_seconds: float
    why: str
    trace_id: str = ""
    candidates: list[dict[str, object]] = field(default_factory=list)

    @property
    def pruning_effectiveness(self) -> float:
        """Fraction of enumerated candidates the search discarded."""
        if not self.candidates_enumerated:
            return 0.0
        return min(1.0, self.pruned_total / self.candidates_enumerated)

    def to_dict(self) -> dict[str, object]:
        return {
            "query": self.query,
            "algorithm": self.algorithm,
            "winner": {
                "digest": self.winner_digest,
                "cost": self.winner_cost,
                "breakdown": dict(self.winner_breakdown),
                "sorts": self.winner_sorts,
                "pipelined": self.winner_pipelined,
            },
            "alternatives": [alt.to_dict() for alt in self.alternatives],
            "finals_reached": self.finals_reached,
            "pruning": dict(self.pruning),
            "pruned_total": self.pruned_total,
            "pruning_effectiveness": self.pruning_effectiveness,
            "candidates_enumerated": self.candidates_enumerated,
            "candidates_dropped": self.candidates_dropped,
            "memo_size": self.memo_size,
            "memo_entries": list(self.memo_entries),
            "plans_considered": self.plans_considered,
            "statuses_generated": self.statuses_generated,
            "memo_hits": self.memo_hits,
            "optimization_seconds": self.optimization_seconds,
            "why": self.why,
            "trace_id": self.trace_id,
        }

    def render(self) -> str:
        breakdown = " ".join(f"{name}={value:.1f}" for name, value
                             in self.winner_breakdown.items())
        lines = [
            f"plan space for {self.query!r} via {self.algorithm} "
            f"({self.optimization_seconds * 1000:.2f}ms)",
            f"winner: {self.winner_digest}",
            f"  cost={self.winner_cost:.1f} [{breakdown}] "
            f"sorts={self.winner_sorts} "
            f"pipelined={'yes' if self.winner_pipelined else 'no'}",
        ]
        if self.alternatives:
            lines.append(f"alternatives (top {len(self.alternatives)} of "
                         f"{self.finals_reached} full plans reached):")
            for alt in self.alternatives:
                note = f" ({alt.note})" if alt.note else ""
                lines.append(f"  [+{alt.delta:.1f}] {alt.digest}{note}")
        else:
            lines.append("alternatives: none (search reached a single "
                         "full plan)")
        pruned = " ".join(f"{reason}={count}" for reason, count
                          in sorted(self.pruning.items()))
        lines.append(
            f"pruning: {pruned or 'none'} — {self.pruned_total} of "
            f"{self.candidates_enumerated} candidates pruned "
            f"({self.pruning_effectiveness:.1%})")
        lines.append(
            f"memo: {self.memo_size} entries, {self.memo_hits} hits; "
            f"{self.statuses_generated} statuses generated, "
            f"{self.plans_considered} plans considered")
        if self.candidates_dropped:
            lines.append(f"note: {self.candidates_dropped} candidate "
                         "records dropped (recorder cap); counts above "
                         "still include them")
        lines.append(f"why: {self.why}")
        return "\n".join(lines)


def _family_delta_text(winner: Mapping[str, float],
                       other: Mapping[str, float]) -> tuple[str, str]:
    """(driving family, 'f_io +120.0, f_sort -8.0' text) vs winner."""
    deltas = {name: other.get(name, 0.0) - winner.get(name, 0.0)
              for name in FAMILIES}
    driver = max(deltas, key=lambda name: deltas[name])
    parts = [f"{name} {delta:+.1f}" for name, delta in deltas.items()
             if abs(delta) > 1e-9]
    return driver, ", ".join(parts) or "no per-family difference"


def build_plan_space_report(recorder: PlanSpaceRecorder,
                            query: str = "", top_k: int = 3,
                            include_candidates: bool = False,
                            trace_id: str = "") -> PlanSpaceReport:
    """Render a filled recorder into a :class:`PlanSpaceReport`.

    *top_k* bounds the alternative plans listed (cheapest first,
    winner excluded).  ``include_candidates=True`` copies the raw
    candidate records into the report (JSON artifacts); the default
    keeps reports small enough for an endpoint ring.
    """
    from repro.service.cache import canonical_plan_digest

    if recorder.winner is None or recorder.pattern is None:
        raise ReproError("recorder has not observed an optimize() call")
    pattern = recorder.pattern
    assert recorder.context is not None
    factors = recorder.context.cost_model.factors
    winner_digest = canonical_plan_digest(recorder.winner, pattern)

    by_digest: dict[str, PlanAlternative] = {}
    for plan, cost, note in recorder.finals:
        digest = canonical_plan_digest(plan, pattern)
        known = by_digest.get(digest)
        if known is not None and known.cost <= cost:
            continue
        by_digest[digest] = PlanAlternative(
            digest=digest, cost=cost, delta=cost - recorder.winner_cost,
            note=note, breakdown=plan_cost_breakdown(plan, factors),
            sorts=plan.sort_count(),
            pipelined=plan.is_fully_pipelined)
    alternatives = sorted(
        (alt for digest, alt in by_digest.items()
         if digest != winner_digest),
        key=lambda alt: alt.cost)[:max(0, top_k)]

    winner_breakdown = plan_cost_breakdown(recorder.winner, factors)
    if alternatives:
        runner = alternatives[0]
        driver, delta_text = _family_delta_text(winner_breakdown,
                                                runner.breakdown)
        why = (f"winner beats the runner-up by {runner.delta:.1f} cost "
               f"units, mostly on {driver}: {delta_text}")
        if recorder.winner.is_fully_pipelined and not runner.pipelined:
            why += "; the winner is fully pipelined, the runner-up blocks"
    elif len(by_digest) <= 1:
        why = ("the search reached a single full plan; every other "
               "candidate was pruned or infeasible")
    else:
        why = "all alternative full plans collapse to the winner's digest"

    report = recorder.report
    return PlanSpaceReport(
        query=query,
        algorithm=recorder.algorithm or "",
        winner_digest=winner_digest,
        winner_cost=recorder.winner_cost,
        winner_breakdown=winner_breakdown,
        winner_sorts=recorder.winner.sort_count(),
        winner_pipelined=recorder.winner.is_fully_pipelined,
        alternatives=alternatives,
        finals_reached=len(by_digest),
        pruning=dict(recorder.prunings),
        pruned_total=recorder.pruned_total,
        candidates_enumerated=recorder.candidates_enumerated,
        candidates_dropped=recorder.candidates_dropped,
        memo_size=recorder.memo_size,
        memo_entries=list(recorder.memo_entries),
        plans_considered=report.plans_considered if report else 0,
        statuses_generated=report.statuses_generated if report else 0,
        memo_hits=report.memo_hits if report else 0,
        optimization_seconds=(report.optimization_seconds
                              if report else 0.0),
        why=why,
        trace_id=trace_id,
        candidates=(list(recorder.candidates)
                    if include_candidates else []))


# -- what-if analysis -------------------------------------------------------

@dataclass
class WhatIfResult:
    """Baseline vs. hypothetical optimization of one query."""

    query: str
    algorithm: str
    baseline_digest: str
    baseline_cost: float
    hypothetical_digest: str
    hypothetical_cost: float
    #: the baseline winner re-priced under the hypothetical conditions
    #: — together with ``hypothetical_cost`` this is the crossover:
    #: how much the old choice would now lose by.
    baseline_cost_under_hypothesis: float
    flipped: bool
    crossover: dict[str, float]
    diff: dict[str, object]
    factors: dict[str, float]
    tag_scale: dict[str, float]
    explanation: str
    forced_digest: str = ""
    forced_cost_under_hypothesis: float = 0.0

    def to_dict(self) -> dict[str, object]:
        payload = {
            "query": self.query,
            "algorithm": self.algorithm,
            "baseline": {"digest": self.baseline_digest,
                         "cost": self.baseline_cost,
                         "cost_under_hypothesis":
                             self.baseline_cost_under_hypothesis},
            "hypothetical": {"digest": self.hypothetical_digest,
                             "cost": self.hypothetical_cost},
            "flipped": self.flipped,
            "crossover": dict(self.crossover),
            "diff": dict(self.diff),
            "factors": dict(self.factors),
            "tag_scale": dict(self.tag_scale),
            "explanation": self.explanation,
        }
        if self.forced_digest:
            payload["forced"] = {
                "digest": self.forced_digest,
                "cost_under_hypothesis":
                    self.forced_cost_under_hypothesis}
        return payload

    def render(self) -> str:
        lines = [
            f"what-if [{self.algorithm}] {self.query}",
            f"  baseline:     {self.baseline_digest} "
            f"(est {self.baseline_cost:.1f})",
            f"  hypothetical: {self.hypothetical_digest} "
            f"(est {self.hypothetical_cost:.1f})",
        ]
        if self.flipped:
            lines.append(
                f"  FLIP: baseline plan would now cost "
                f"{self.baseline_cost_under_hypothesis:.1f}, the new "
                f"winner {self.hypothetical_cost:.1f} "
                f"(margin {self.baseline_cost_under_hypothesis - self.hypothetical_cost:+.1f})")
            if self.diff.get("removed") or self.diff.get("added"):
                lines.append(f"    -{' '.join(map(str, self.diff.get('removed', [])))}")
                lines.append(f"    +{' '.join(map(str, self.diff.get('added', [])))}")
        else:
            lines.append("  no flip: the baseline plan stays optimal "
                         "under the hypothesis")
        if self.forced_digest:
            lines.append(f"  forced:       {self.forced_digest} "
                         f"(est {self.forced_cost_under_hypothesis:.1f} "
                         f"under hypothesis)")
        lines.append(f"  why: {self.explanation}")
        return "\n".join(lines)


def run_whatif(database: "Database", query: str,
               algorithm: str = "DPP",
               factors: CostFactors | None = None,
               tag_scale: Mapping[str, float] | None = None,
               exact: bool = False,
               force_plan: str | None = None) -> WhatIfResult:
    """Re-optimize *query* under hypothetical conditions.

    The hypothesis is any combination of replacement cost *factors*,
    per-tag cardinality scaling (*tag_scale*, e.g. ``{"item": 10.0}``
    for "what if there were 10x as many items"), ground-truth
    statistics (*exact*), and a *force_plan* canonical digest to price
    as-if chosen.  Nothing on the database is mutated: the hypothesis
    lives in a private cost model and estimator wrapper, so the plan
    cache, statistics epoch, and live cost factors are untouched.
    """
    from repro.core.optimizer import get_optimizer
    from repro.estimation.estimator import ScaledEstimator
    from repro.service.cache import canonical_plan_digest, remap_plan

    pattern = database.compile(query)
    baseline = database.optimize(pattern, algorithm=algorithm)
    baseline_digest = canonical_plan_digest(baseline.plan, pattern)

    hyp_factors = factors if factors is not None else database.cost_factors
    hyp_model = CostModel(hyp_factors)
    estimator = database.exact_estimator if exact else database.estimator
    scales = dict(tag_scale or {})
    if scales:
        estimator = ScaledEstimator(estimator, scales)
    optimizer = get_optimizer(algorithm, cost_model=hyp_model)
    hypothetical = optimizer.optimize(pattern, estimator)
    hypothetical_digest = canonical_plan_digest(hypothetical.plan, pattern)

    hyp_context = EnumerationContext(pattern, hyp_model, estimator)
    # identity remap = deep copy, so re-pricing never touches the
    # annotations on the baseline result we report
    replica = remap_plan(baseline.plan,
                         {node_id: node_id for node_id in range(len(pattern))})
    baseline_under_hyp = estimate_plan_cost(replica, hyp_context)
    crossover = {
        name: (plan_cost_breakdown(replica, hyp_factors)[name]
               - plan_cost_breakdown(hypothetical.plan, hyp_factors)[name])
        for name in FAMILIES}

    flipped = hypothetical_digest != baseline_digest
    diff = (plan_digest_diff(baseline_digest, hypothetical_digest)
            if flipped else {"removed": [], "added": [],
                             "unchanged": len(
                                 _digest_operators(
                                     parse_plan_digest(baseline_digest)))})

    forced_digest = ""
    forced_cost = 0.0
    if force_plan:
        forced = plan_from_digest(force_plan, pattern)
        forced_cost = estimate_plan_cost(forced, hyp_context)
        forced_digest = canonical_plan_digest(forced, pattern)

    if flipped:
        driver, delta_text = _family_delta_text(
            plan_cost_breakdown(hypothetical.plan, hyp_factors),
            plan_cost_breakdown(replica, hyp_factors))
        explanation = (
            f"under the hypothesis the baseline plan is beaten by "
            f"{baseline_under_hyp - hypothetical.estimated_cost:.1f} "
            f"cost units, mostly on {driver}: {delta_text}")
    else:
        explanation = (
            f"the baseline plan remains the winner; its cost moves "
            f"{baseline.estimated_cost:.1f} -> "
            f"{baseline_under_hyp:.1f} under the hypothesis")

    return WhatIfResult(
        query=query if isinstance(query, str) else str(query),
        algorithm=algorithm,
        baseline_digest=baseline_digest,
        baseline_cost=baseline.estimated_cost,
        hypothetical_digest=hypothetical_digest,
        hypothetical_cost=hypothetical.estimated_cost,
        baseline_cost_under_hypothesis=baseline_under_hyp,
        flipped=flipped,
        crossover=crossover,
        diff=diff,
        factors=hyp_factors.to_dict(),
        tag_scale=scales,
        explanation=explanation,
        forced_digest=forced_digest,
        forced_cost_under_hypothesis=forced_cost)
