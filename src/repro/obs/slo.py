"""Service-level objectives over the query stream.

An :class:`SLObjective` is declarative: "*target* fraction of queries
must be good", where *good* is defined by the objective's indicator —
end-to-end latency under a threshold, time-to-first-result under a
threshold, or simply not an error.  An :class:`SLOTracker` consumes
one event per query (:meth:`SLOTracker.observe_query`) and maintains,
per objective:

* **compliance** — the good/total ratio, against the target;
* **error-budget burn rate** — the classic SRE ratio
  ``(bad / total) / (1 - target)``: 1.0 means the service spends its
  error budget exactly as fast as the objective allows, above 1.0 the
  budget is burning down.  Reported both lifetime and over a bounded
  recent window (the early-warning signal — a long healthy history
  must not mask a current incident);
* **exemplars** — per latency bucket, the most recent (value,
  trace id) observed in that bucket.  The Prometheus *text* format
  cannot carry exemplars, so they are surfaced through the ``/slo``
  JSON endpoint instead: from a slow bucket straight to a stitched
  trace of a query that landed in it.

The tracker is registry-agnostic; :meth:`SLOTracker.collect` sets the
gauge families (``repro_slo_target`` / ``repro_slo_compliance_ratio``
/ ``repro_slo_error_budget_burn`` / ``repro_slo_events_total`` /
``repro_slo_bad_total``) on whatever registry the serving layer owns,
and is wired as a pull-style collector by
:class:`~repro.service.service.QueryService`.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.obs.registry import DEFAULT_BUCKETS

__all__ = ["DEFAULT_OBJECTIVES", "SLObjective", "SLOTracker"]

#: indicators an objective may evaluate.
INDICATORS = ("latency", "time_to_first", "error")

#: events the recent-window burn rate is computed over.
DEFAULT_WINDOW = 512


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective: *target* fraction of queries good.

    ``indicator`` picks the goodness predicate: ``"latency"`` and
    ``"time_to_first"`` compare the respective measured seconds
    against ``threshold_seconds``; ``"error"`` counts any failed query
    as bad (``threshold_seconds`` unused).  ``target`` is the required
    compliance ratio in ``[0, 1)`` — e.g. 0.99 grants a 1% error
    budget.
    """

    name: str
    indicator: str
    target: float
    threshold_seconds: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.indicator not in INDICATORS:
            raise ValueError(
                f"unknown SLO indicator {self.indicator!r}; "
                f"expected one of {INDICATORS}")
        if not 0.0 <= self.target < 1.0:
            raise ValueError(
                f"SLO target must be in [0, 1), got {self.target}")
        if self.indicator != "error" and self.threshold_seconds <= 0:
            raise ValueError(
                f"objective {self.name!r} needs a positive "
                f"threshold_seconds")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    def is_good(self, seconds: float,
                time_to_first: "float | None",
                error: bool) -> "bool | None":
        """Goodness of one query event, or ``None`` if not applicable
        (a query with no time-to-first measurement neither helps nor
        hurts a time-to-first objective)."""
        if self.indicator == "error":
            return not error
        if error:
            return False  # failed queries violate latency SLOs too
        if self.indicator == "latency":
            return seconds <= self.threshold_seconds
        if time_to_first is None:
            return None
        return time_to_first <= self.threshold_seconds


#: stock objectives for the query service: p99-style latency, fast
#: first results, and a three-nines success rate.
DEFAULT_OBJECTIVES = (
    SLObjective(name="query_latency_p99", indicator="latency",
                target=0.99, threshold_seconds=0.5,
                description="99% of queries complete within 500ms"),
    SLObjective(name="time_to_first_result", indicator="time_to_first",
                target=0.95, threshold_seconds=0.1,
                description="95% of streamed queries yield a first "
                            "row within 100ms"),
    SLObjective(name="query_errors", indicator="error", target=0.999,
                description="99.9% of queries succeed"),
)


class _ObjectiveState:
    __slots__ = ("events", "bad", "window")

    def __init__(self, window: int) -> None:
        self.events = 0
        self.bad = 0
        self.window: deque[bool] = deque(maxlen=window)


class SLOTracker:
    """Evaluate a set of objectives over the live query stream."""

    def __init__(self,
                 objectives: "tuple[SLObjective, ...]" = DEFAULT_OBJECTIVES,
                 window: int = DEFAULT_WINDOW,
                 buckets: "tuple[float, ...]" = DEFAULT_BUCKETS) -> None:
        if not objectives:
            raise ValueError("an SLO tracker needs at least one "
                             "objective")
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names in {names}")
        self.objectives = tuple(objectives)
        self.buckets = tuple(sorted(float(bound) for bound in buckets))
        self._mutex = threading.Lock()
        self._states = {objective.name: _ObjectiveState(window)
                        for objective in objectives}
        #: bucket upper bound (or "+Inf") -> most recent exemplar
        self._exemplars: dict[str, dict] = {}

    # -- ingest -----------------------------------------------------------

    def observe_query(self, seconds: float,
                      time_to_first: "float | None" = None,
                      error: bool = False, trace_id: str = "") -> None:
        """Fold one finished query into every applicable objective."""
        with self._mutex:
            for objective in self.objectives:
                good = objective.is_good(seconds, time_to_first, error)
                if good is None:
                    continue
                state = self._states[objective.name]
                state.events += 1
                if not good:
                    state.bad += 1
                state.window.append(good)
            if trace_id and not error:
                self._exemplars[self._bucket_of(seconds)] = {
                    "value": seconds, "trace_id": trace_id}

    def _bucket_of(self, seconds: float) -> str:
        for bound in self.buckets:
            if seconds <= bound:
                return repr(bound)
        return "+Inf"

    # -- report -----------------------------------------------------------

    @staticmethod
    def _burn(bad: int, events: int, budget: float) -> float:
        if events == 0:
            return 0.0
        return (bad / events) / budget

    def snapshot(self) -> dict:
        """JSON-able state of every objective (the ``/slo`` payload)."""
        with self._mutex:
            objectives = []
            for objective in self.objectives:
                state = self._states[objective.name]
                recent = list(state.window)
                recent_bad = sum(1 for good in recent if not good)
                compliance = (1.0 - state.bad / state.events
                              if state.events else 1.0)
                objectives.append({
                    "name": objective.name,
                    "description": objective.description,
                    "indicator": objective.indicator,
                    "target": objective.target,
                    "threshold_seconds": objective.threshold_seconds,
                    "events": state.events,
                    "bad": state.bad,
                    "compliance": compliance,
                    "met": compliance >= objective.target,
                    "error_budget": objective.error_budget,
                    "burn_rate": self._burn(state.bad, state.events,
                                            objective.error_budget),
                    "recent_events": len(recent),
                    "recent_burn_rate": self._burn(
                        recent_bad, len(recent),
                        objective.error_budget),
                })
            exemplars = [{"bucket_le": bucket, **exemplar}
                         for bucket, exemplar
                         in sorted(self._exemplars.items())]
        return {"objectives": objectives, "exemplars": exemplars}

    def collect(self, registry) -> None:
        """Set the SLO gauge families on *registry* (pull-style)."""
        target = registry.gauge(
            "repro_slo_target", "Required compliance ratio")
        compliance = registry.gauge(
            "repro_slo_compliance_ratio",
            "Observed good/total ratio per objective")
        burn = registry.gauge(
            "repro_slo_error_budget_burn",
            "Error-budget burn rate (1.0 = spending exactly the "
            "budget); windowed series carry window=\"recent\"")
        events = registry.gauge(
            "repro_slo_events_total",
            "Query events evaluated per objective")
        bad = registry.gauge(
            "repro_slo_bad_total",
            "Events that violated the objective")
        snapshot = self.snapshot()
        for entry in snapshot["objectives"]:
            name = entry["name"]
            target.set(entry["target"], objective=name)
            compliance.set(entry["compliance"], objective=name)
            burn.set(entry["burn_rate"], objective=name)
            burn.set(entry["recent_burn_rate"], objective=name,
                     window="recent")
            events.set(entry["events"], objective=name)
            bad.set(entry["bad"], objective=name)
