"""EXPLAIN ANALYZE: estimated vs. actual, per operator.

The paper's Sec. 2.2.2 cost model prices every plan in abstract cost
units derived from estimated cardinalities; the engines report the
same counters *measured*.  This module joins the two per operator: a
traced execution (:class:`~repro.obs.spans.Span` tree, which mirrors
the plan tree node for node) is zipped with the plan's optimizer
annotations into an :class:`OperatorAnalysis` tree carrying, for each
operator, estimated vs. actual output cardinality and cumulative
cost, wall time, the operator's exact share of every cost-model
counter — and the **Q-error** of both estimates.

Q-error (Moerkotte et al., "Preventing Bad Plans by Bounding the
Impact of Cardinality Estimation Errors", VLDB 2009) is the symmetric
ratio ``max(est, act) / min(est, act)`` with both sides clamped to at
least 1 so empty results do not divide by zero.  A Q-error of 1 is a
perfect estimate; the factor by which it exceeds 1 bounds how far the
optimizer's cost ranking can drift for that operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.pattern import QueryPattern
from repro.core.plans import (IndexScanPlan, PhysicalPlan, SortPlan,
                              StructuralJoinPlan)
from repro.errors import PlanError
from repro.obs.spans import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.optimizer import OptimizationResult
    from repro.engine.executor import ExecutionResult
    from repro.obs.planspace import PlanSpaceReport

__all__ = ["ExplainReport", "OperatorAnalysis", "build_analysis",
           "q_error"]


def q_error(estimated: float, actual: float) -> float:
    """Symmetric estimate/actual ratio, both sides clamped to >= 1."""
    estimated = max(float(estimated), 1.0)
    actual = max(float(actual), 1.0)
    return max(estimated, actual) / min(estimated, actual)


def _plan_label(plan: PhysicalPlan, pattern: QueryPattern | None) -> str:
    def label(node_id: int) -> str:
        if pattern is None:
            return f"${node_id}"
        return f"${node_id}:{pattern.node(node_id).label()}"

    if isinstance(plan, IndexScanPlan):
        return f"IndexScan({label(plan.node_id)})"
    if isinstance(plan, SortPlan):
        return f"Sort(by {label(plan.by_node)})"
    if isinstance(plan, StructuralJoinPlan):
        return (f"{plan.algorithm}({label(plan.ancestor_node)} "
                f"{plan.axis} {label(plan.descendant_node)})")
    raise PlanError(f"unknown plan node type {type(plan).__name__}")


@dataclass
class OperatorAnalysis:
    """Estimate-vs-actual feedback for one plan operator.

    ``actual_cost`` is cumulative over the subtree (matching the
    optimizer's cumulative ``estimated_cost``); ``simulated_cost`` is
    this operator's own share.  ``counters`` is the operator's exact
    share of each cost-model counter.
    """

    label: str
    estimated_rows: float
    actual_rows: int
    estimated_cost: float
    actual_cost: float
    seconds: float
    self_seconds: float
    simulated_cost: float
    counters: dict[str, float]
    children: list["OperatorAnalysis"] = field(default_factory=list)

    @property
    def rows_q_error(self) -> float:
        return q_error(self.estimated_rows, self.actual_rows)

    @property
    def cost_q_error(self) -> float:
        return q_error(self.estimated_cost, self.actual_cost)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, object]:
        return {
            "operator": self.label,
            "estimated_rows": self.estimated_rows,
            "actual_rows": self.actual_rows,
            "rows_q_error": self.rows_q_error,
            "estimated_cost": self.estimated_cost,
            "actual_cost": self.actual_cost,
            "cost_q_error": self.cost_q_error,
            "seconds": self.seconds,
            "self_seconds": self.self_seconds,
            "simulated_cost": self.simulated_cost,
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    def _render(self, depth: int, lines: list[str]) -> None:
        lines.append(
            f"{'  ' * depth}{self.label}"
            f" rows={self.estimated_rows:.1f}/{self.actual_rows}"
            f" (q={self.rows_q_error:.2f})"
            f" cost={self.estimated_cost:.1f}/{self.actual_cost:.1f}"
            f" (q={self.cost_q_error:.2f})"
            f" time={self.self_seconds * 1e3:.2f}ms")
        for child in self.children:
            child._render(depth + 1, lines)


def build_analysis(plan: PhysicalPlan, span: Span,
                   pattern: QueryPattern | None = None) -> OperatorAnalysis:
    """Zip a plan tree with its (shape-identical) span tree."""
    children_plans = plan.children()
    if len(children_plans) != len(span.children):
        raise PlanError(
            f"span tree does not mirror the plan: {span.name} has "
            f"{len(span.children)} children, plan node has "
            f"{len(children_plans)}")
    children = [build_analysis(child_plan, child_span, pattern)
                for child_plan, child_span in zip(children_plans,
                                                  span.children)]
    own_cost = (span.metrics.simulated_cost()
                if span.metrics is not None else 0.0)
    actual_cost = own_cost + sum(child.actual_cost for child in children)
    return OperatorAnalysis(
        label=_plan_label(plan, pattern),
        estimated_rows=plan.estimated_cardinality,
        actual_rows=span.output_rows,
        estimated_cost=plan.estimated_cost,
        actual_cost=actual_cost,
        seconds=span.seconds,
        self_seconds=span.exclusive_seconds(),
        simulated_cost=own_cost,
        counters=span.counters(),
        children=children)


@dataclass
class ExplainReport:
    """Everything ``Database.explain`` produced for one query.

    With ``analyze=False`` only the optimizer's side is present; with
    ``analyze=True`` the plan was executed under tracing and
    ``execution`` / ``root`` / ``span`` carry the measured side.
    """

    query: str
    algorithm: str
    engine: str
    optimization: "OptimizationResult"
    analyze: bool = False
    execution: "ExecutionResult | None" = None
    root: OperatorAnalysis | None = None
    span: Span | None = None
    parse_seconds: float = 0.0
    #: sharded execution only: shard count plus the merged statistics'
    #: per-shard provenance (which shard contributed which share of
    #: each pattern tag's histogram mass)
    shards: "dict[str, object] | None" = None
    #: present when explain ran with ``plan_space=True``: the search
    #: space behind the chosen plan (see :mod:`repro.obs.planspace`)
    plan_space: "PlanSpaceReport | None" = None

    @property
    def optimize_seconds(self) -> float:
        return self.optimization.report.optimization_seconds

    @property
    def trace_id(self) -> str:
        """Join key to ``/traces`` (empty when the run was not traced)."""
        if self.span is None:
            return ""
        return self.span.trace_id or ""

    @property
    def execute_seconds(self) -> float:
        if self.execution is None:
            return 0.0
        return self.execution.metrics.wall_seconds

    def max_rows_q_error(self) -> float:
        """The worst per-operator cardinality Q-error (1.0 if none)."""
        if self.root is None:
            return 1.0
        return max(node.rows_q_error for node in self.root.walk())

    def actual_totals(self) -> dict[str, float]:
        """Sum of per-operator counter shares over the whole plan."""
        totals: dict[str, float] = {}
        if self.root is None:
            return totals
        for node in self.root.walk():
            for name, value in node.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def render(self) -> str:
        """Human-readable report (the CLI ``explain`` output)."""
        lines = [f"{self.algorithm} plan for {self.query}"]
        if self.shards is not None:
            provenance = self.shards.get("statistics_provenance", {})
            for tag in sorted(provenance):
                shares = ", ".join(
                    f"shard[{entry['shard_id']}] {entry['count']}"
                    f" ({entry['fraction'] * 100:.0f}%)"
                    for entry in provenance[tag])
                lines.append(f"statistics[{tag}]: {shares}")
        if not self.analyze:
            lines.append(self.optimization.explain())
            if self.plan_space is not None:
                lines.append("")
                lines.append(self.plan_space.render())
            return "\n".join(lines)
        assert self.root is not None and self.execution is not None
        lines.append(
            f"engine={self.engine}  parse {self.parse_seconds * 1e3:.2f} ms"
            f" | optimize {self.optimize_seconds * 1e3:.2f} ms"
            f" | execute {self.execute_seconds * 1e3:.2f} ms")
        lines.append("operator rows=est/act (q=Q-error) "
                     "cost=est/act (q=Q-error) time=self")
        body: list[str] = []
        self.root._render(0, body)
        lines.extend(body)
        metrics = self.execution.metrics
        lines.append(
            f"totals: {len(self.execution)} rows, estimated cost "
            f"{self.optimization.estimated_cost:.1f} vs actual "
            f"{metrics.simulated_cost():.1f} "
            f"(q={q_error(self.optimization.estimated_cost, metrics.simulated_cost()):.2f}), "
            f"max operator rows q-error {self.max_rows_q_error():.2f}")
        if self.trace_id:
            lines.append(f"trace: {self.trace_id}")
        if self.plan_space is not None:
            lines.append("")
            lines.append(self.plan_space.render())
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-able report (the ``explain --json`` payload)."""
        payload: dict[str, object] = {
            "query": self.query,
            "algorithm": self.algorithm,
            "engine": self.engine,
            "analyze": self.analyze,
            "estimated_cost": self.optimization.estimated_cost,
            "parse_seconds": self.parse_seconds,
            "optimize_seconds": self.optimize_seconds,
            "trace_id": self.trace_id,
        }
        if self.shards is not None:
            payload["shards"] = self.shards
        if self.plan_space is not None:
            payload["plan_space"] = self.plan_space.to_dict()
        if self.analyze and self.execution is not None:
            metrics = self.execution.metrics
            payload.update({
                "execute_seconds": self.execute_seconds,
                "rows": len(self.execution),
                "actual_cost": metrics.simulated_cost(),
                "cost_q_error": q_error(self.optimization.estimated_cost,
                                        metrics.simulated_cost()),
                "max_rows_q_error": self.max_rows_q_error(),
                "totals": metrics.counters(),
                "plan": (self.root.to_dict()
                         if self.root is not None else None),
                "spans": (self.span.to_dict()
                          if self.span is not None else None),
            })
        else:
            payload["plan"] = self.optimization.explain()
        return payload
