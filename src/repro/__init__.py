"""repro — Structural Join Order Selection for XML Query Optimization.

A from-scratch reproduction of Wu, Patel & Jagadish (ICDE 2003): a
native-XML-database substrate (region-encoded documents, paged storage,
tag indexes, stack-tree structural joins, positional-histogram
cardinality estimation) plus the paper's contribution — five
cost-based structural join order selection algorithms (DP, DPP,
DPAP-EB, DPAP-LD, FP).

Quick start::

    from repro import Database

    db = Database.from_xml("<a><b><c/></b></a>")
    result = db.query("//a//b/c", algorithm="DPP")
    print(result.explain())
    print(len(result), "matches")
"""

from repro.api import Database, QueryResult
from repro.core import (Axis, CostFactors, CostModel, DPOptimizer,
                        DPPOptimizer, DPAPEBOptimizer, DPAPLDOptimizer,
                        FPOptimizer, JoinAlgorithm, OptimizationResult,
                        PatternNode, Predicate, QueryPattern,
                        get_optimizer, optimizer_names)
from repro.core.pattern import PatternBuilder
from repro.document import DocumentBuilder, XmlDocument, parse_xml, serialize
from repro.engine import ExecutionResult
from repro.errors import ReproError
from repro.estimation import ExactEstimator, PositionalEstimator
from repro.service import PlanCache, QueryService
from repro.xpath import compile_xpath

__version__ = "1.0.0"

__all__ = [
    "Database",
    "QueryResult",
    "Axis",
    "CostFactors",
    "CostModel",
    "DPOptimizer",
    "DPPOptimizer",
    "DPAPEBOptimizer",
    "DPAPLDOptimizer",
    "FPOptimizer",
    "JoinAlgorithm",
    "OptimizationResult",
    "PatternBuilder",
    "PatternNode",
    "Predicate",
    "QueryPattern",
    "get_optimizer",
    "optimizer_names",
    "DocumentBuilder",
    "XmlDocument",
    "parse_xml",
    "serialize",
    "ExecutionResult",
    "ReproError",
    "ExactEstimator",
    "PositionalEstimator",
    "PlanCache",
    "QueryService",
    "compile_xpath",
    "__version__",
]
