"""The paper's contribution: structural join order selection.

This package contains the query-pattern model, the cost model
(Sec. 2.2.2), the status/move search space (Sec. 3.1.1), physical plan
trees, and the five optimization algorithms:

* :class:`~repro.core.dp.DPOptimizer` — exhaustive dynamic programming
* :class:`~repro.core.dpp.DPPOptimizer` — DP with pruning (and the
  DPP' no-lookahead variant)
* :class:`~repro.core.dpap.DPAPEBOptimizer` — expansion-bounded DPAP
* :class:`~repro.core.dpap.DPAPLDOptimizer` — left-deep-only DPAP
* :class:`~repro.core.fp.FPOptimizer` — fully-pipelined plans only
"""

from repro.core.pattern import (Axis, PatternEdge, PatternNode, Predicate,
                                QueryPattern)
from repro.core.cost import CostFactors, CostModel
from repro.core.plans import (IndexScanPlan, JoinAlgorithm, PhysicalPlan,
                              SortPlan, StructuralJoinPlan)
from repro.core.status import Move, Status, StatusNode
from repro.core.stats import OptimizerReport
from repro.core.optimizer import (Optimizer, OptimizationResult,
                                  get_optimizer, optimizer_names)
from repro.core.dp import DPOptimizer
from repro.core.dpp import DPPOptimizer
from repro.core.dpap import DPAPEBOptimizer, DPAPLDOptimizer
from repro.core.fp import FPOptimizer
from repro.core.random_plans import RandomPlanGenerator, worst_random_plan
from repro.core.trace import SearchTrace, TraceEvent
from repro.core.viz import plan_to_dot, trace_to_dot

__all__ = [
    "Axis", "PatternEdge", "PatternNode", "Predicate", "QueryPattern",
    "CostFactors", "CostModel",
    "IndexScanPlan", "JoinAlgorithm", "PhysicalPlan", "SortPlan",
    "StructuralJoinPlan",
    "Move", "Status", "StatusNode",
    "OptimizerReport",
    "Optimizer", "OptimizationResult", "get_optimizer", "optimizer_names",
    "DPOptimizer", "DPPOptimizer",
    "DPAPEBOptimizer", "DPAPLDOptimizer",
    "FPOptimizer",
    "RandomPlanGenerator", "worst_random_plan",
]
