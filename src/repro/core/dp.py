"""Exhaustive dynamic programming (Sec. 3.1).

The textbook algorithm adapted to statuses: search proceeds strictly
level by level (Definition 5); every status on a level is expanded
through all its possible moves; when the same status is generated along
several paths only the cheapest is retained.  Guaranteed optimal, and
deliberately unpruned — it is the yardstick DPP is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OptimizerError
from repro.core.enumeration import (EnumerationContext, build_plan,
                                    possible_moves)
from repro.core.optimizer import Optimizer, register
from repro.core.planspace import PRUNE_DOMINATED
from repro.core.plans import PhysicalPlan
from repro.core.stats import OptimizerReport
from repro.core.status import Move, Status


@dataclass
class _Entry:
    """Best known way to reach a status."""

    cost: float
    previous: Status | None
    move: Move | None


def reconstruct_moves(levels: list[dict[Status, _Entry]],
                      final_status: Status) -> list[Move]:
    """Walk back-pointers from a final status to the start status."""
    moves: list[Move] = []
    status = final_status
    for level in range(len(levels) - 1, 0, -1):
        entry = levels[level][status]
        if entry.move is None or entry.previous is None:
            raise OptimizerError("broken back-pointer chain")
        moves.append(entry.move)
        status = entry.previous
    moves.reverse()
    return moves


@register
class DPOptimizer(Optimizer):
    """Level-wise exhaustive dynamic programming."""

    name = "DP"

    def _search(self, context: EnumerationContext,
                report: OptimizerReport) -> tuple[PhysicalPlan, float]:
        start = Status.start(context.pattern)
        levels: list[dict[Status, _Entry]] = [
            {start: _Entry(context.start_cost(), None, None)}]
        report.statuses_generated += 1
        recorder = self.planspace

        for _ in context.pattern.edges:
            current = levels[-1]
            next_level: dict[Status, _Entry] = {}
            for status, entry in current.items():
                report.statuses_expanded += 1
                for move in possible_moves(status, context):
                    report.plans_considered += 1
                    new_cost = entry.cost + move.cost
                    if recorder is not None:
                        recorder.record_candidate(status, move, new_cost,
                                                  context)
                        if move.result.is_final():
                            alt = build_plan(
                                reconstruct_moves(levels, status) + [move],
                                context)
                            recorder.record_final_plan(
                                alt, alt.estimated_cost,
                                note=move.describe())
                    existing = next_level.get(move.result)
                    if existing is None:
                        report.statuses_generated += 1
                        next_level[move.result] = _Entry(new_cost, status,
                                                         move)
                    else:
                        report.memo_hits += 1
                        if new_cost < existing.cost:
                            if recorder is not None:
                                recorder.record_prune(
                                    move.result, PRUNE_DOMINATED,
                                    existing.cost)
                            next_level[move.result] = _Entry(new_cost,
                                                             status, move)
                        elif recorder is not None:
                            recorder.record_prune(move.result,
                                                  PRUNE_DOMINATED, new_cost)
            levels.append(next_level)

        finals = {status: entry for status, entry in levels[-1].items()
                  if status.is_final()}
        if not finals:
            raise OptimizerError("search reached no final status")
        best_status = min(finals, key=lambda status: finals[status].cost)
        moves = reconstruct_moves(levels, best_status)
        plan = build_plan(moves, context)
        if recorder is not None:
            for level_index, level in enumerate(levels):
                for status, entry in level.items():
                    recorder.record_memo_entry(status, entry.cost,
                                               level_index)
            for status in finals:
                alt = build_plan(reconstruct_moves(levels, status), context)
                recorder.record_final_plan(alt, alt.estimated_cost,
                                           note=f"final {status}")
        return plan, plan.estimated_cost
