"""Dynamic programming with aggressive pruning (Sec. 3.3).

Two heuristic restrictions of DPP, each trading optimality for a
smaller search:

* :class:`DPAPEBOptimizer` (Sec. 3.3.1) — the *expansion bound* ``T_e``
  caps how many statuses may be expanded at each level; once a level
  reaches the cap, statuses at strictly lower levels are never expanded
  again (their only purpose would be to create more statuses at the
  full level).
* :class:`DPAPLDOptimizer` (Sec. 3.3.2) — only *left-deep* statuses: a
  single "growing node" cluster is allowed to hold more than one
  pattern node, so every move extends that cluster by one base node
  set.  This mirrors the relational rule of thumb the paper shows to
  be a poor fit for XML.
"""

from __future__ import annotations

from repro.core.enumeration import (EnumerationContext, edge_eligible,
                                    left_deep_allows, possible_moves)
from repro.core.optimizer import register
from repro.core.dpp import DPPOptimizer
from repro.core.plans import PhysicalPlan
from repro.core.stats import OptimizerReport
from repro.core.status import Move, Status


@register
class DPAPEBOptimizer(DPPOptimizer):
    """DPP with a per-level expansion bound ``T_e``.

    The paper sets ``T_e`` to the number of pattern edges by default
    (Sec. 4.2); Figures 7 and 8 sweep it from 1 upward.
    """

    name = "DPAP-EB"

    def __init__(self, cost_model=None, expansion_bound: int | None = None,
                 lookahead: bool = True, trace=None, planspace=None) -> None:
        super().__init__(cost_model, lookahead=lookahead, trace=trace,
                         planspace=planspace)
        self.expansion_bound = expansion_bound
        self._limit = 0
        self._expansions: dict[int, int] = {}
        self._closed_below = 0

    def _search(self, context: EnumerationContext,
                report: OptimizerReport) -> tuple[PhysicalPlan, float]:
        self._limit = (self.expansion_bound
                       if self.expansion_bound is not None
                       else len(context.pattern.edges))
        self._expansions = {}
        self._closed_below = 0
        return super()._search(context, report)

    def _may_expand(self, status: Status, level: int,
                    report: OptimizerReport) -> bool:
        if level < self._closed_below:
            report.statuses_pruned += 1
            return False
        if self._expansions.get(level, 0) >= self._limit:
            report.statuses_pruned += 1
            return False
        return True

    def _note_expansion(self, status: Status, level: int) -> None:
        count = self._expansions.get(level, 0) + 1
        self._expansions[level] = count
        if count >= self._limit:
            # level is full: creating more statuses here is pointless,
            # so levels below it are closed for expansion.
            self._closed_below = max(self._closed_below, level)


@register
class DPAPLDOptimizer(DPPOptimizer):
    """DPP restricted to left-deep statuses (one growing node)."""

    name = "DPAP-LD"

    def _moves(self, status: Status,
               context: EnumerationContext) -> list[Move]:
        return possible_moves(status, context, left_deep=True)

    def _is_deadend(self, status: Status,
                    context: EnumerationContext) -> bool:
        """Left-deep doom test.

        In a left-deep status every further join consumes the single
        growing cluster, whose input ordering can never be changed —
        so the status is viable iff some remaining edge adjacent to the
        growing cluster has its growing-side endpoint equal to the
        cluster's ordering (the other endpoint is a singleton, which is
        always correctly ordered).
        """
        if status.is_final():
            return False
        growing = status.growing_nodes()
        if not growing:
            return False
        if len(growing) > 1:
            return True
        return not any(
            edge_eligible(status, edge) and left_deep_allows(status, edge)
            for edge in context.remaining_edges(status))
