"""Random valid plans and the "bad plan" yardstick (Sec. 4.2.1).

The paper quantifies how much optimization matters by generating random
query plans and reporting the worst.  The sampler here builds plans
directly (not through the status space): it joins the pattern's edges
in a random order, inserting input sorts wherever the randomly chosen
state of affairs demands one, and picks a random join algorithm per
edge.  That covers a superset of the status search space — exactly the
kind of plan a naive or unlucky translator might produce.
"""

from __future__ import annotations

import random

from repro.core.enumeration import EnumerationContext, estimate_plan_cost
from repro.core.pattern import QueryPattern
from repro.core.plans import (IndexScanPlan, JoinAlgorithm, PhysicalPlan,
                              SortPlan, StructuralJoinPlan)
from repro.estimation.estimator import CardinalityEstimator


class RandomPlanGenerator:
    """Samples uniformly-random valid structural-join plans."""

    def __init__(self, pattern: QueryPattern, seed: int = 0) -> None:
        self.pattern = pattern
        self._rng = random.Random(seed)

    def sample(self) -> PhysicalPlan:
        """One random plan covering the whole pattern."""
        pattern = self.pattern
        fragments: dict[frozenset[int], tuple[PhysicalPlan, int]] = {}
        for node in pattern.nodes:
            key = frozenset((node.node_id,))
            fragments[key] = (IndexScanPlan(node.node_id), node.node_id)

        edges = list(pattern.edges)
        self._rng.shuffle(edges)
        for edge in edges:
            ancestor_key = self._key_of(fragments, edge.parent)
            descendant_key = self._key_of(fragments, edge.child)
            ancestor_plan, ancestor_order = fragments.pop(ancestor_key)
            descendant_plan, descendant_order = fragments.pop(descendant_key)
            if ancestor_order != edge.parent:
                ancestor_plan = SortPlan(ancestor_plan, edge.parent)
            if descendant_order != edge.child:
                descendant_plan = SortPlan(descendant_plan, edge.child)
            algorithm = self._rng.choice(
                (JoinAlgorithm.STACK_TREE_ANC,
                 JoinAlgorithm.STACK_TREE_DESC))
            join = StructuralJoinPlan(ancestor_plan, descendant_plan,
                                      edge.parent, edge.child, edge.axis,
                                      algorithm)
            fragments[ancestor_key | descendant_key] = (join,
                                                        join.ordered_by)
        (plan, _), = fragments.values()
        return plan

    @staticmethod
    def _key_of(fragments: dict[frozenset[int], tuple[PhysicalPlan, int]],
                node_id: int) -> frozenset[int]:
        for key in fragments:
            if node_id in key:
                return key
        raise AssertionError(f"node {node_id} lost during sampling")


def worst_random_plan(pattern: QueryPattern,
                      estimator: CardinalityEstimator,
                      samples: int = 30, seed: int = 0,
                      cost_model=None) -> tuple[PhysicalPlan, float]:
    """The costliest of *samples* random plans, by estimated cost.

    This is the paper's "bad plan" column: "randomly (but not
    exhaustively) generated ... picked the worst of these plans".
    """
    from repro.core.cost import CostModel

    context = EnumerationContext(pattern, cost_model or CostModel(),
                                 estimator)
    generator = RandomPlanGenerator(pattern, seed=seed)
    worst_plan: PhysicalPlan | None = None
    worst_cost = float("-inf")
    for _ in range(max(samples, 1)):
        plan = generator.sample()
        cost = estimate_plan_cost(plan, context)
        if cost > worst_cost:
            worst_plan = plan
            worst_cost = cost
    assert worst_plan is not None
    return worst_plan, worst_cost
