"""Search tracing: the Fig. 3 / Fig. 4 optimization process, observable.

The paper illustrates DP and DPP by walking through the statuses they
generate, expand and prune (Examples 3.3 and 3.6).  A
:class:`SearchTrace` attached to a DPP-family optimizer records that
walk: statuses are numbered in generation order — exactly how Fig. 4
numbers them — and every expansion, pruning, deadend avoidance, cost
improvement and final-status discovery becomes an event.

Used by ``examples/search_trace.py`` to print the optimization process
as a narrative, and by tests to assert the search's bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.status import Move, Status


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One step of the search."""

    kind: str            # generate | improve | expand | prune |
    #                      deadend | final | skip
    status_id: int
    cost: float
    detail: str = ""

    def __str__(self) -> str:
        note = f"  ({self.detail})" if self.detail else ""
        return f"{self.kind:8s} status{self.status_id} " \
               f"cost={self.cost:.1f}{note}"


@dataclass
class SearchTrace:
    """Recorder attached to a DPP-family optimizer."""

    events: list[TraceEvent] = field(default_factory=list)
    _ids: dict[Status, int] = field(default_factory=dict)
    _render: dict[int, str] = field(default_factory=dict)

    def status_id(self, status: Status) -> int:
        """Fig. 4-style numbering: statuses in generation order."""
        identifier = self._ids.get(status)
        if identifier is None:
            identifier = len(self._ids)
            self._ids[status] = identifier
            self._render[identifier] = str(status)
        return identifier

    def record(self, kind: str, status: Status, cost: float,
               detail: str = "") -> None:
        self.events.append(TraceEvent(kind, self.status_id(status),
                                      cost, detail))

    # -- views --------------------------------------------------------------

    def events_of_kind(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def status_count(self) -> int:
        return len(self._ids)

    def describe_status(self, status_id: int) -> str:
        return self._render.get(status_id, "?")

    def narrative(self, limit: int | None = None) -> str:
        """Multi-line rendering of the search, Example 3.6 style."""
        lines = []
        events = self.events if limit is None else self.events[:limit]
        for event in events:
            clusters = self.describe_status(event.status_id)
            note = f" -- {event.detail}" if event.detail else ""
            lines.append(f"{event.kind:8s} status{event.status_id:<3d} "
                         f"{clusters}  cost={event.cost:.1f}{note}")
        if limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)


def describe_move(move: Move) -> str:
    """Short human label for a move, for trace details."""
    return move.describe()
