"""Query patterns: rooted node-labelled trees (Sec. 2.1).

A :class:`QueryPattern` is the internal form of a tree-pattern query.
Nodes carry a tag test (or wildcard) plus optional value predicates;
edges carry an :class:`Axis` — ``CHILD`` for parent/child edges or
``DESCENDANT`` for ancestor/descendant edges (the ``*``-labelled edges
of the paper).  Patterns are immutable once built; they are the input
to every optimizer and the schema of every result tuple.
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import PatternError
from repro.document.node import NodeRecord


class Axis(enum.Enum):
    """Structural relationship required along a pattern edge."""

    CHILD = "child"
    DESCENDANT = "descendant"

    def __str__(self) -> str:
        return "/" if self is Axis.CHILD else "//"


_OPERATORS: dict[str, Callable[[str, str], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "contains": lambda left, right: right in left,
}


@dataclass(frozen=True, slots=True)
class Predicate:
    """A value predicate on a pattern node.

    ``kind`` is ``"text"`` (compare the element's character data) or
    ``"attribute"`` (compare the named attribute).  Comparisons are
    string comparisons unless both sides parse as numbers, in which
    case they compare numerically — matching how the workload data
    encodes values.
    """

    kind: str
    op: str
    value: str
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("text", "attribute"):
            raise PatternError(f"unknown predicate kind {self.kind!r}")
        if self.op not in _OPERATORS:
            raise PatternError(f"unknown predicate operator {self.op!r}")
        if self.kind == "attribute" and not self.name:
            raise PatternError("attribute predicates need an attribute name")

    def matches(self, node: NodeRecord) -> bool:
        """Evaluate this predicate against a data node."""
        if self.kind == "text":
            actual = node.text
        else:
            actual = node.attributes.get(self.name)
            if actual is None:
                return False
        compare = _OPERATORS[self.op]
        try:
            return compare(float(actual), float(self.value))
        except ValueError:
            return compare(actual, self.value)

    def __str__(self) -> str:
        subject = "text()" if self.kind == "text" else f"@{self.name}"
        return f"{subject} {self.op} {self.value!r}"


@dataclass(frozen=True, slots=True)
class PatternNode:
    """One node of a query pattern.

    ``tag`` is the element-name test (``"*"`` matches any tag).
    ``predicates`` further restrict the candidate set.  ``node_id`` is
    the node's index within its pattern (assigned by
    :class:`QueryPattern`).
    """

    node_id: int
    tag: str
    predicates: tuple[Predicate, ...] = ()

    def matches(self, node: NodeRecord) -> bool:
        if self.tag != "*" and node.tag != self.tag:
            return False
        return all(predicate.matches(node) for predicate in self.predicates)

    @property
    def is_wildcard(self) -> bool:
        return self.tag == "*"

    def label(self) -> str:
        """Human-readable label used in plan explanations."""
        if not self.predicates:
            return self.tag
        conditions = " and ".join(str(p) for p in self.predicates)
        return f"{self.tag}[{conditions}]"

    def __str__(self) -> str:
        return f"${self.node_id}:{self.label()}"


@dataclass(frozen=True, slots=True)
class PatternEdge:
    """A directed edge from parent to child in the pattern tree."""

    parent: int
    child: int
    axis: Axis = Axis.CHILD

    def __str__(self) -> str:
        return f"${self.parent} {self.axis} ${self.child}"


class QueryPattern:
    """A rooted tree-pattern query.

    Build one with :meth:`QueryPattern.build`, the
    :class:`PatternBuilder` helper, or the XPath front-end
    (:func:`repro.xpath.compile_xpath`).
    """

    def __init__(self, nodes: Iterable[PatternNode],
                 edges: Iterable[PatternEdge],
                 order_by: int | None = None) -> None:
        self.nodes: tuple[PatternNode, ...] = tuple(nodes)
        self.edges: tuple[PatternEdge, ...] = tuple(edges)
        self.order_by = order_by
        self._parents: dict[int, PatternEdge] = {}
        self._children: dict[int, list[PatternEdge]] = {}
        self._validate()
        self._edge_by_pair = {(edge.parent, edge.child): edge
                              for edge in self.edges}

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, spec: Mapping[str, object]) -> "QueryPattern":
        """Build a pattern from a compact dict specification.

        Example::

            QueryPattern.build({
                "nodes": ["manager", "employee", "name"],
                "edges": [(0, 1, "//"), (1, 2, "/")],
                "order_by": 0,
            })
        """
        node_specs = spec["nodes"]
        nodes = []
        for index, node_spec in enumerate(node_specs):  # type: ignore[arg-type]
            if isinstance(node_spec, str):
                nodes.append(PatternNode(index, node_spec))
            else:
                tag, predicates = node_spec  # type: ignore[misc]
                nodes.append(PatternNode(index, tag, tuple(predicates)))
        edges = []
        for parent, child, axis in spec["edges"]:  # type: ignore[misc]
            if isinstance(axis, str):
                axis = Axis.DESCENDANT if axis == "//" else Axis.CHILD
            edges.append(PatternEdge(parent, child, axis))
        return cls(nodes, edges, order_by=spec.get("order_by"))  # type: ignore[arg-type]

    def _validate(self) -> None:
        if not self.nodes:
            raise PatternError("a pattern needs at least one node")
        ids = [node.node_id for node in self.nodes]
        if ids != list(range(len(self.nodes))):
            raise PatternError("pattern node ids must be 0..n-1 in order")
        if len(self.edges) != len(self.nodes) - 1:
            raise PatternError(
                f"a tree with {len(self.nodes)} nodes needs "
                f"{len(self.nodes) - 1} edges, got {len(self.edges)}")
        for edge in self.edges:
            for endpoint in (edge.parent, edge.child):
                if not 0 <= endpoint < len(self.nodes):
                    raise PatternError(f"edge references node {endpoint}, "
                                       f"which does not exist")
            if edge.child in self._parents:
                raise PatternError(f"node {edge.child} has two parents")
            self._parents[edge.child] = edge
            self._children.setdefault(edge.parent, []).append(edge)
        roots = [node.node_id for node in self.nodes
                 if node.node_id not in self._parents]
        if len(roots) != 1:
            raise PatternError(f"pattern must have one root, found {roots}")
        self._root = roots[0]
        # connectivity: BFS from the root must reach every node.
        seen = {self._root}
        frontier = [self._root]
        while frontier:
            current = frontier.pop()
            for edge in self._children.get(current, ()):
                seen.add(edge.child)
                frontier.append(edge.child)
        if len(seen) != len(self.nodes):
            raise PatternError("pattern is not connected")
        if self.order_by is not None and not (
                0 <= self.order_by < len(self.nodes)):
            raise PatternError(f"order_by node {self.order_by} out of range")

    # -- structure accessors --------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def root(self) -> int:
        return self._root

    def node(self, node_id: int) -> PatternNode:
        return self.nodes[node_id]

    def parent_edge(self, node_id: int) -> PatternEdge | None:
        return self._parents.get(node_id)

    def child_edges(self, node_id: int) -> list[PatternEdge]:
        return list(self._children.get(node_id, ()))

    def children(self, node_id: int) -> list[int]:
        return [edge.child for edge in self._children.get(node_id, ())]

    def edge_between(self, a: int, b: int) -> PatternEdge | None:
        """The edge joining *a* and *b*, in either direction."""
        return (self._edge_by_pair.get((a, b))
                or self._edge_by_pair.get((b, a)))

    def neighbors(self, node_id: int) -> list[int]:
        """All nodes adjacent to *node_id* in the (undirected) tree."""
        result = [edge.child for edge in self._children.get(node_id, ())]
        parent = self._parents.get(node_id)
        if parent is not None:
            result.append(parent.parent)
        return result

    def is_connected_subset(self, node_ids: frozenset[int] | set[int]) -> bool:
        """Definition 1: is *node_ids* a valid status-node cluster?"""
        if not node_ids:
            return False
        start = next(iter(node_ids))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in self.neighbors(current):
                if neighbor in node_ids and neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(node_ids)

    def edges_within(self, node_ids: frozenset[int]) -> list[PatternEdge]:
        """Pattern edges with both endpoints inside *node_ids*."""
        return [edge for edge in self.edges
                if edge.parent in node_ids and edge.child in node_ids]

    def subtree_nodes(self, node_id: int) -> frozenset[int]:
        """Node ids of the subtree rooted at *node_id*."""
        seen = {node_id}
        frontier = [node_id]
        while frontier:
            current = frontier.pop()
            for child in self.children(current):
                seen.add(child)
                frontier.append(child)
        return frozenset(seen)

    def walk_preorder(self) -> Iterator[int]:
        """Node ids in pre-order from the root."""
        stack = [self._root]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(reversed(self.children(current)))

    def depth(self) -> int:
        """Length of the longest root-to-leaf edge path."""
        depths = {self._root: 0}
        best = 0
        for node_id in self.walk_preorder():
            for child in self.children(node_id):
                depths[child] = depths[node_id] + 1
                best = max(best, depths[child])
        return best

    def describe(self) -> str:
        """Multi-line, indented rendering of the pattern tree."""
        lines: list[str] = []
        depths = {self._root: 0}

        def visit(node_id: int) -> None:
            depth = depths[node_id]
            edge = self.parent_edge(node_id)
            prefix = "  " * depth + (str(edge.axis) if edge else "")
            lines.append(f"{prefix}{self.node(node_id).label()}")
            for child in self.children(node_id):
                depths[child] = depth + 1
                visit(child)

        visit(self._root)
        if self.order_by is not None:
            lines.append(f"order by ${self.order_by}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"QueryPattern(nodes={len(self.nodes)}, "
                f"edges={len(self.edges)})")


class PatternBuilder:
    """Fluent builder for query patterns.

    Example::

        builder = PatternBuilder()
        manager = builder.node("manager")
        employee = builder.node("employee")
        builder.edge(manager, employee, Axis.DESCENDANT)
        pattern = builder.finish(order_by=manager)
    """

    def __init__(self) -> None:
        self._nodes: list[PatternNode] = []
        self._edges: list[PatternEdge] = []

    def node(self, tag: str,
             predicates: Iterable[Predicate] = ()) -> int:
        node_id = len(self._nodes)
        self._nodes.append(PatternNode(node_id, tag, tuple(predicates)))
        return node_id

    def edge(self, parent: int, child: int,
             axis: Axis = Axis.CHILD) -> "PatternBuilder":
        self._edges.append(PatternEdge(parent, child, axis))
        return self

    def add_predicate(self, node_id: int, predicate: Predicate) -> None:
        """Attach one more predicate to an already-declared node."""
        node = self._nodes[node_id]
        self._nodes[node_id] = PatternNode(
            node.node_id, node.tag, node.predicates + (predicate,))

    def finish(self, order_by: int | None = None) -> QueryPattern:
        return QueryPattern(self._nodes, self._edges, order_by=order_by)
