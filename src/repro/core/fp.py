"""Fully-pipelined plan selection (Sec. 3.4).

Theorem 3.1 guarantees that every pattern has a sort-free
(fully-pipelined) plan producing results ordered by any chosen node.
The FP algorithm enumerates exactly that space:

for each candidate result-order node ``r`` (or only the query's
``order_by``), the pattern is "picked up" at ``r``; each neighbor
subtree is solved recursively for the best FP plan ordered by its own
root; then the subtree plans are joined with ``r``'s candidate set in
the best permutation.  Each join is forced to keep the accumulating
cluster ordered by ``r``'s side: when ``r``'s side is the structural
ancestor the join must be Stack-Tree-Anc, otherwise Stack-Tree-Desc —
so no sort ever appears and the plan pipelines end to end.

Sub-solutions are memoized on (node, excluded neighbor), so work is
shared across the candidate roots.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from repro.errors import OptimizerError
from repro.core.enumeration import EnumerationContext
from repro.core.optimizer import Optimizer, register
from repro.core.planspace import PRUNE_DOMINATED
from repro.core.plans import (IndexScanPlan, JoinAlgorithm, PhysicalPlan,
                              StructuralJoinPlan)
from repro.core.stats import OptimizerReport


@dataclass
class _SubPlan:
    """Best FP plan of one pattern component, ordered by its root."""

    plan: PhysicalPlan
    cost: float
    cardinality: float
    nodes: frozenset[int]


@register
class FPOptimizer(Optimizer):
    """Enumerates only fully-pipelined plans; optimal among them."""

    name = "FP"

    def _search(self, context: EnumerationContext,
                report: OptimizerReport) -> tuple[PhysicalPlan, float]:
        pattern = context.pattern
        memo: dict[tuple[int, int | None], _SubPlan] = {}
        recorder = self.planspace

        def scan_subplan(node_id: int) -> _SubPlan:
            cost = context.cost_model.index_access(
                context.cards.candidates(node_id))
            plan = IndexScanPlan(
                node_id,
                estimated_cardinality=context.cards.node(node_id),
                estimated_cost=cost)
            return _SubPlan(plan, cost, context.cards.node(node_id),
                            frozenset((node_id,)))

        def best_ordered(node_id: int, exclude: int | None) -> _SubPlan:
            """Best FP plan for node_id's component (minus the neighbor
            *exclude*), producing output ordered by *node_id*."""
            key = (node_id, exclude)
            cached = memo.get(key)
            if cached is not None:
                report.memo_hits += 1
                return cached
            neighbors = [neighbor for neighbor in pattern.neighbors(node_id)
                         if neighbor != exclude]
            base = scan_subplan(node_id)
            if not neighbors:
                memo[key] = base
                return base
            subplans = [best_ordered(neighbor, node_id)
                        for neighbor in neighbors]
            fixed_cost = base.cost + sum(sub.cost for sub in subplans)
            best_order: tuple[int, ...] | None = None
            best_total = float("inf")
            for order in permutations(range(len(neighbors))):
                report.plans_considered += 1
                total = fixed_cost
                current_nodes = base.nodes
                for index in order:
                    sub = subplans[index]
                    merged_nodes = current_nodes | sub.nodes
                    merged_card = context.cards.cluster(merged_nodes)
                    edge = pattern.edge_between(node_id, neighbors[index])
                    if edge is None:
                        raise OptimizerError("pattern neighbor without edge")
                    if edge.parent == node_id:
                        total += context.cost_model.stack_tree_anc(
                            context.cards.cluster(current_nodes),
                            merged_card)
                    else:
                        total += context.cost_model.stack_tree_desc(
                            sub.cardinality)
                    current_nodes = merged_nodes
                if recorder is not None:
                    recorder.record_permutation(node_id, exclude, order,
                                                total)
                if total < best_total:
                    best_total = total
                    best_order = order
                elif recorder is not None:
                    recorder.record_prune(f"fp({node_id},{exclude}) order "
                                          + ",".join(map(str, order)),
                                          PRUNE_DOMINATED, total)
            assert best_order is not None
            result = self._assemble(context, base, neighbors, subplans,
                                    best_order, node_id, best_total)
            memo[key] = result
            return result

        if pattern.order_by is not None:
            roots = [pattern.order_by]
        else:
            roots = [node.node_id for node in pattern.nodes]
        best: _SubPlan | None = None
        for root in roots:
            candidate = best_ordered(root, None)
            if recorder is not None:
                recorder.record_final_plan(candidate.plan, candidate.cost,
                                           note=f"ordered by {root}")
            if best is None or candidate.cost < best.cost:
                best = candidate
        assert best is not None
        if recorder is not None:
            for key, sub in memo.items():
                recorder.record_memo_entry(f"fp{key}", sub.cost,
                                           len(sub.nodes) - 1)
        return best.plan, best.cost

    @staticmethod
    def _assemble(context: EnumerationContext, base: _SubPlan,
                  neighbors: list[int], subplans: list[_SubPlan],
                  order: tuple[int, ...], node_id: int,
                  total_cost: float) -> _SubPlan:
        """Build the plan tree for the winning permutation."""
        pattern = context.pattern
        plan = base.plan
        current_nodes = base.nodes
        running_cost = base.cost
        for index in order:
            sub = subplans[index]
            merged_nodes = current_nodes | sub.nodes
            merged_card = context.cards.cluster(merged_nodes)
            edge = pattern.edge_between(node_id, neighbors[index])
            assert edge is not None
            if edge.parent == node_id:
                join_cost = context.cost_model.stack_tree_anc(
                    context.cards.cluster(current_nodes), merged_card)
                plan = StructuralJoinPlan(
                    plan, sub.plan, edge.parent, edge.child, edge.axis,
                    JoinAlgorithm.STACK_TREE_ANC,
                    estimated_cardinality=merged_card,
                    estimated_cost=running_cost + sub.cost + join_cost)
            else:
                join_cost = context.cost_model.stack_tree_desc(
                    sub.cardinality)
                plan = StructuralJoinPlan(
                    sub.plan, plan, edge.parent, edge.child, edge.axis,
                    JoinAlgorithm.STACK_TREE_DESC,
                    estimated_cardinality=merged_card,
                    estimated_cost=running_cost + sub.cost + join_cost)
            running_cost += sub.cost + join_cost
            current_nodes = merged_nodes
        return _SubPlan(plan, total_cost,
                        context.cards.cluster(current_nodes), current_nodes)
