"""Statuses and moves: the optimizer search space (Sec. 3.1.1).

A *status* (Definition 2) captures an intermediate stage of query
evaluation: the pattern nodes are partitioned into *status nodes*
(Definition 1) — connected clusters whose internal edges have already
been joined — and each cluster records the pattern node by which its
intermediate result is physically ordered.  A *move* (Definition 4)
evaluates one remaining pattern edge, merging two clusters, choosing a
join algorithm (which fixes the native output order) and optionally a
sort that re-orders the merged result.

Statuses are immutable and hashable; two statuses with the same
clusters and orderings compare equal, which is what lets dynamic
programming collapse alternative paths (Sec. 3.1.2).  The final status
(single cluster covering the whole pattern) canonicalizes its ordering
to the query's ``order_by`` node, or to the ``ANY_ORDER`` sentinel when
the query does not constrain result order — the paper's "we don't care
about the ordering any more" (Example 3.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import OptimizerError
from repro.core.pattern import PatternEdge, QueryPattern
from repro.core.plans import JoinAlgorithm

#: Sentinel ordering of a final status when the query has no order-by.
ANY_ORDER = -1


@dataclass(frozen=True, slots=True)
class StatusNode:
    """One cluster of already-joined pattern nodes (Definition 1)."""

    nodes: frozenset[int]
    ordered_by: int

    def __post_init__(self) -> None:
        if not self.nodes:
            raise OptimizerError("a status node cannot be empty")
        if self.ordered_by != ANY_ORDER and self.ordered_by not in self.nodes:
            raise OptimizerError(
                f"ordered_by {self.ordered_by} is not in the cluster "
                f"{sorted(self.nodes)}")

    @property
    def is_singleton(self) -> bool:
        return len(self.nodes) == 1

    def __str__(self) -> str:
        labels = ",".join(
            f"[{node}]" if node == self.ordered_by else str(node)
            for node in sorted(self.nodes))
        return "{" + labels + "}"


@dataclass(frozen=True, slots=True)
class Status:
    """A partition of the pattern into ordered clusters (Definition 2)."""

    clusters: frozenset[StatusNode]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for cluster in self.clusters:
            if seen & cluster.nodes:
                raise OptimizerError("status clusters overlap")
            seen |= cluster.nodes

    @classmethod
    def start(cls, pattern: QueryPattern) -> "Status":
        """The start status S0: every node in its own cluster."""
        return cls(frozenset(
            StatusNode(frozenset((node.node_id,)), node.node_id)
            for node in pattern.nodes))

    # -- accessors ---------------------------------------------------------

    def cluster_of(self, node_id: int) -> StatusNode:
        for cluster in self.clusters:
            if node_id in cluster.nodes:
                return cluster
        raise OptimizerError(f"node {node_id} not in any cluster")

    def level(self, pattern: QueryPattern) -> int:
        """Definition 5: number of moves from the start status."""
        return len(pattern) - len(self.clusters)

    def is_final(self) -> bool:
        return len(self.clusters) == 1

    def remaining_edges(self, pattern: QueryPattern) -> Iterator[PatternEdge]:
        """Pattern edges whose endpoints lie in different clusters."""
        membership: dict[int, StatusNode] = {}
        for cluster in self.clusters:
            for node_id in cluster.nodes:
                membership[node_id] = cluster
        for edge in pattern.edges:
            if membership[edge.parent] is not membership[edge.child]:
                yield edge

    def growing_nodes(self) -> list[StatusNode]:
        """Clusters holding more than one pattern node (DPAP-LD)."""
        return [cluster for cluster in self.clusters
                if not cluster.is_singleton]

    def __str__(self) -> str:
        return " ".join(sorted(str(cluster) for cluster in self.clusters))


@dataclass(frozen=True, slots=True)
class Move:
    """One evaluation step (Definition 4).

    Joins the clusters containing ``edge.parent`` (ancestor side) and
    ``edge.child`` (descendant side) with ``algorithm``, optionally
    followed by a sort that leaves the merged result ordered by
    ``sort_to``.  ``cost`` is the estimated cost of the join plus the
    optional sort; ``result`` is the status reached.
    """

    edge: PatternEdge
    algorithm: JoinAlgorithm
    sort_to: int | None
    cost: float
    result: Status

    @property
    def output_order(self) -> int:
        """The ordering of the merged cluster after this move."""
        merged = next(cluster for cluster in self.result.clusters
                      if self.edge.parent in cluster.nodes)
        return merged.ordered_by

    def describe(self) -> str:
        sort_note = (f" + sort by {self.sort_to}"
                     if self.sort_to is not None else "")
        return (f"join {self.edge.parent}{self.edge.axis}{self.edge.child} "
                f"via {self.algorithm}{sort_note} (cost {self.cost:.1f})")
