"""Graphviz (dot) export for plans and search traces.

Two renderers:

* :func:`plan_to_dot` — a physical plan as an operator tree, annotated
  with estimated cardinalities/costs (what Fig. 2 sketches);
* :func:`trace_to_dot` — the status graph a DPP search walked,
  generation edges labelled with moves (what Figs. 3 and 4 draw).

The output is plain dot text; render with ``dot -Tsvg``.
"""

from __future__ import annotations

from repro.core.pattern import QueryPattern
from repro.core.plans import (IndexScanPlan, PhysicalPlan, SortPlan,
                              StructuralJoinPlan)
from repro.core.trace import SearchTrace


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def plan_to_dot(plan: PhysicalPlan,
                pattern: QueryPattern | None = None,
                title: str = "plan") -> str:
    """Render a plan tree as a dot digraph."""
    lines = [f'digraph "{_escape(title)}" {{',
             "  node [shape=box, fontname=monospace];",
             "  rankdir=BT;"]
    identifiers: dict[int, str] = {}

    def label_of(node: PhysicalPlan) -> str:
        if isinstance(node, IndexScanPlan):
            name = f"IndexScan ${node.node_id}"
            if pattern is not None:
                name = f"IndexScan {pattern.node(node.node_id).label()}"
        elif isinstance(node, SortPlan):
            name = f"Sort by ${node.by_node}"
        elif isinstance(node, StructuralJoinPlan):
            name = (f"{node.algorithm.value}\\n"
                    f"${node.ancestor_node} {node.axis} "
                    f"${node.descendant_node}")
        else:  # pragma: no cover - future plan kinds
            name = type(node).__name__
        return (f"{name}\\ncard={node.estimated_cardinality:.0f} "
                f"cost={node.estimated_cost:.0f}")

    def visit(node: PhysicalPlan) -> str:
        identifier = identifiers.get(id(node))
        if identifier is not None:
            return identifier
        identifier = f"n{len(identifiers)}"
        identifiers[id(node)] = identifier
        shape = ("ellipse" if isinstance(node, IndexScanPlan)
                 else "box")
        style = ', style=filled, fillcolor="#ffeeee"' \
            if isinstance(node, SortPlan) else ""
        lines.append(f'  {identifier} [label="{_escape(label_of(node))}"'
                     f", shape={shape}{style}];")
        for child in node.children():
            child_id = visit(child)
            lines.append(f"  {child_id} -> {identifier};")
        return identifier

    visit(plan)
    lines.append("}")
    return "\n".join(lines)


def trace_to_dot(trace: SearchTrace, title: str = "search") -> str:
    """Render a recorded DPP search as a dot digraph.

    Statuses become nodes (doubled border when expanded, grey when
    pruned); generation and improvement events become edges labelled
    with the move that produced them.
    """
    lines = [f'digraph "{_escape(title)}" {{',
             "  node [shape=box, fontname=monospace];"]
    expanded = {event.status_id
                for event in trace.events_of_kind("expand")}
    pruned = {event.status_id for event in trace.events_of_kind("prune")}
    finals = {event.status_id for event in trace.events_of_kind("final")}

    seen: set[int] = set()
    for event in trace.events:
        if event.status_id in seen:
            continue
        seen.add(event.status_id)
        attributes = []
        if event.status_id in finals:
            attributes.append('fillcolor="#eeffee", style=filled')
        elif event.status_id in pruned:
            attributes.append('fillcolor="#eeeeee", style=filled')
        if event.status_id in expanded:
            attributes.append("peripheries=2")
        label = _escape(
            f"status{event.status_id}\\n"
            f"{trace.describe_status(event.status_id)}")
        extra = (", " + ", ".join(attributes)) if attributes else ""
        lines.append(f'  s{event.status_id} [label="{label}"{extra}];')

    previous_expansion = 0
    for event in trace.events:
        if event.kind == "expand":
            previous_expansion = event.status_id
        elif event.kind in ("generate", "improve", "final") \
                and event.status_id != previous_expansion:
            style = ' [style=dashed]' if event.kind == "improve" else ""
            lines.append(
                f"  s{previous_expansion} -> s{event.status_id}{style};")
    lines.append("}")
    return "\n".join(lines)
