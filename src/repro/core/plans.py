"""Physical evaluation plans (Sec. 2.3).

A plan is a rooted tree of physical operations: index scans at the
leaves, structural joins at internal nodes, with optional sorts.  Plans
record the estimated cardinality and cumulative estimated cost the
optimizer derived, the pattern node by which their output is ordered,
and expose the structural properties the paper's taxonomy uses:
left-deep vs. bushy, fully pipelined vs. blocking (Fig. 2).
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.errors import PlanError
from repro.core.pattern import Axis, QueryPattern


class JoinAlgorithm(enum.Enum):
    """Physical structural-join algorithm (Sec. 2.2.1)."""

    STACK_TREE_ANC = "stack-tree-anc"
    STACK_TREE_DESC = "stack-tree-desc"
    NESTED_LOOP = "nested-loop"

    def __str__(self) -> str:
        return self.value


class PhysicalPlan:
    """Base class for plan nodes.

    Attributes
    ----------
    ordered_by:
        Pattern-node id whose region start orders the output stream.
    estimated_cardinality, estimated_cost:
        Optimizer annotations; ``estimated_cost`` is cumulative over the
        subtree.
    """

    def __init__(self, ordered_by: int,
                 estimated_cardinality: float = 0.0,
                 estimated_cost: float = 0.0) -> None:
        self.ordered_by = ordered_by
        self.estimated_cardinality = estimated_cardinality
        self.estimated_cost = estimated_cost

    # -- structure -----------------------------------------------------------

    def children(self) -> tuple["PhysicalPlan", ...]:
        return ()

    def pattern_nodes(self) -> frozenset[int]:
        """Pattern-node ids bound by this plan's output tuples."""
        raise NotImplementedError

    def walk(self) -> Iterator["PhysicalPlan"]:
        """This node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    # -- taxonomy (Fig. 2) ------------------------------------------------------

    @property
    def is_fully_pipelined(self) -> bool:
        """True if no blocking operator (sort) appears anywhere."""
        return not any(isinstance(node, SortPlan) for node in self.walk())

    @property
    def is_left_deep(self) -> bool:
        """True if every join has at least one scan-leaf input.

        This is the XML analogue of relational left-deep plans: one
        "growing" intermediate result joined with base node sets.
        """
        for node in self.walk():
            if isinstance(node, StructuralJoinPlan):
                sides_with_joins = sum(
                    1 for side in node.children()
                    if any(isinstance(inner, StructuralJoinPlan)
                           for inner in side.walk()))
                if sides_with_joins > 1:
                    return False
        return True

    def join_count(self) -> int:
        return sum(1 for node in self.walk()
                   if isinstance(node, StructuralJoinPlan))

    def sort_count(self) -> int:
        return sum(1 for node in self.walk()
                   if isinstance(node, SortPlan))

    # -- rendering ---------------------------------------------------------------

    def explain(self, pattern: QueryPattern | None = None) -> str:
        """Multi-line, indented plan rendering."""
        lines: list[str] = []
        self._explain(pattern, 0, lines)
        return "\n".join(lines)

    def _explain(self, pattern: QueryPattern | None, depth: int,
                 lines: list[str]) -> None:
        raise NotImplementedError

    def _label(self, pattern: QueryPattern | None, node_id: int) -> str:
        if pattern is None:
            return f"${node_id}"
        return f"${node_id}:{pattern.node(node_id).label()}"

    def signature(self) -> str:
        """Compact one-line structural identity (tests, dedup)."""
        raise NotImplementedError


class IndexScanPlan(PhysicalPlan):
    """Leaf: retrieve the candidate set of one pattern node."""

    def __init__(self, node_id: int,
                 estimated_cardinality: float = 0.0,
                 estimated_cost: float = 0.0) -> None:
        super().__init__(node_id, estimated_cardinality, estimated_cost)
        self.node_id = node_id

    def pattern_nodes(self) -> frozenset[int]:
        return frozenset((self.node_id,))

    def _explain(self, pattern: QueryPattern | None, depth: int,
                 lines: list[str]) -> None:
        lines.append(
            f"{'  ' * depth}IndexScan({self._label(pattern, self.node_id)})"
            f" card={self.estimated_cardinality:.1f}"
            f" cost={self.estimated_cost:.1f}")

    def signature(self) -> str:
        return f"scan({self.node_id})"


class StructuralJoinPlan(PhysicalPlan):
    """Binary structural join.

    ``ancestor_plan`` supplies bindings for ``ancestor_node`` (ordered
    by it); ``descendant_plan`` supplies ``descendant_node``.  The
    algorithm fixes the output order: Stack-Tree-Anc orders by the
    ancestor node, Stack-Tree-Desc by the descendant node.
    """

    def __init__(self, ancestor_plan: PhysicalPlan,
                 descendant_plan: PhysicalPlan,
                 ancestor_node: int, descendant_node: int,
                 axis: Axis, algorithm: JoinAlgorithm,
                 estimated_cardinality: float = 0.0,
                 estimated_cost: float = 0.0) -> None:
        if algorithm is JoinAlgorithm.STACK_TREE_ANC:
            ordered_by = ancestor_node
        elif algorithm is JoinAlgorithm.STACK_TREE_DESC:
            ordered_by = descendant_node
        else:
            ordered_by = ancestor_plan.ordered_by
        super().__init__(ordered_by, estimated_cardinality, estimated_cost)
        if ancestor_node not in ancestor_plan.pattern_nodes():
            raise PlanError(f"ancestor node {ancestor_node} not produced "
                            "by the ancestor input")
        if descendant_node not in descendant_plan.pattern_nodes():
            raise PlanError(f"descendant node {descendant_node} not "
                            "produced by the descendant input")
        overlap = (ancestor_plan.pattern_nodes()
                   & descendant_plan.pattern_nodes())
        if overlap:
            raise PlanError(f"join inputs overlap on {sorted(overlap)}")
        self.ancestor_plan = ancestor_plan
        self.descendant_plan = descendant_plan
        self.ancestor_node = ancestor_node
        self.descendant_node = descendant_node
        self.axis = axis
        self.algorithm = algorithm

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.ancestor_plan, self.descendant_plan)

    def pattern_nodes(self) -> frozenset[int]:
        return (self.ancestor_plan.pattern_nodes()
                | self.descendant_plan.pattern_nodes())

    def _explain(self, pattern: QueryPattern | None, depth: int,
                 lines: list[str]) -> None:
        lines.append(
            f"{'  ' * depth}{self.algorithm}"
            f"({self._label(pattern, self.ancestor_node)} {self.axis} "
            f"{self._label(pattern, self.descendant_node)})"
            f" order-by=${self.ordered_by}"
            f" card={self.estimated_cardinality:.1f}"
            f" cost={self.estimated_cost:.1f}")
        self.ancestor_plan._explain(pattern, depth + 1, lines)
        self.descendant_plan._explain(pattern, depth + 1, lines)

    def signature(self) -> str:
        return (f"{self.algorithm.value}[{self.ancestor_node}"
                f"{self.axis}{self.descendant_node}]"
                f"({self.ancestor_plan.signature()},"
                f"{self.descendant_plan.signature()})")


class SortPlan(PhysicalPlan):
    """Blocking re-order of a tuple stream by one bound node."""

    def __init__(self, child: PhysicalPlan, by_node: int,
                 estimated_cardinality: float = 0.0,
                 estimated_cost: float = 0.0) -> None:
        super().__init__(by_node, estimated_cardinality, estimated_cost)
        if by_node not in child.pattern_nodes():
            raise PlanError(f"cannot sort by unbound node {by_node}")
        self.child = child
        self.by_node = by_node

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def pattern_nodes(self) -> frozenset[int]:
        return self.child.pattern_nodes()

    def _explain(self, pattern: QueryPattern | None, depth: int,
                 lines: list[str]) -> None:
        lines.append(
            f"{'  ' * depth}Sort(by {self._label(pattern, self.by_node)})"
            f" card={self.estimated_cardinality:.1f}"
            f" cost={self.estimated_cost:.1f}")
        self.child._explain(pattern, depth + 1, lines)

    def signature(self) -> str:
        return f"sort[{self.by_node}]({self.child.signature()})"


def validate_plan(plan: PhysicalPlan, pattern: QueryPattern) -> None:
    """Check that *plan* evaluates exactly the given pattern.

    Raises :class:`~repro.errors.PlanError` if any pattern node is
    missing or duplicated, or if a join does not correspond to a
    pattern edge with the right axis and orientation.
    """
    bound = plan.pattern_nodes()
    expected = frozenset(range(len(pattern)))
    if bound != expected:
        raise PlanError(f"plan binds {sorted(bound)}, pattern has "
                        f"{sorted(expected)}")
    for node in plan.walk():
        if isinstance(node, StructuralJoinPlan):
            edge = pattern.edge_between(node.ancestor_node,
                                        node.descendant_node)
            if edge is None:
                raise PlanError(
                    f"join on ({node.ancestor_node}, "
                    f"{node.descendant_node}): no such pattern edge")
            if (edge.parent, edge.child) != (node.ancestor_node,
                                             node.descendant_node):
                raise PlanError(
                    f"join on ({node.ancestor_node}, "
                    f"{node.descendant_node}) is inverted: pattern edge "
                    f"is ({edge.parent}, {edge.child})")
            if edge.axis is not node.axis:
                raise PlanError(
                    f"join axis {node.axis} does not match pattern edge "
                    f"axis {edge.axis}")
