"""Dynamic programming with pruning (Sec. 3.2).

Best-first search over statuses, ordered by ``Cost + ubCost``:

* **Expanding Rule** — always expand the un-expanded status with the
  lowest ``Cost + ubCost`` (a priority queue).
* **Pruning Rule** — once a full plan of cost ``MinCost`` is known,
  any status whose accumulated ``Cost`` exceeds ``MinCost`` is dead.
* **Lookahead Rule** — never *generate* a deadend status (Definition
  6).  Disabling this flag yields the DPP' variant of Table 2.

Like DP, DPP conceptually explores the whole space and is exact: the
queue is drained until no status cheaper than the best full plan
remains, and re-discovering a status at lower cost re-queues it (the
ubCost heuristic is an upper bound, not an admissible lower bound, so
the first pop of a status is not necessarily its cheapest path).
"""

from __future__ import annotations

import heapq
import itertools

from repro.errors import OptimizerError
from repro.core.dp import _Entry
from repro.core.enumeration import (EnumerationContext, build_plan,
                                    is_doomed, possible_moves,
                                    upper_bound_completion)
from repro.core.optimizer import Optimizer, register
from repro.core.planspace import (PRUNE_COST_BOUND, PRUNE_DOMINATED,
                                  PRUNE_EXPANSION_BOUND, PRUNE_INFEASIBLE)
from repro.core.plans import PhysicalPlan
from repro.core.stats import OptimizerReport
from repro.core.status import Move, Status


@register
class DPPOptimizer(Optimizer):
    """Best-first exact search with pruning and lookahead."""

    name = "DPP"

    def __init__(self, cost_model=None, lookahead: bool = True,
                 trace=None, planspace=None) -> None:
        super().__init__(cost_model, planspace=planspace)
        self.lookahead = lookahead
        #: optional :class:`repro.core.trace.SearchTrace` recorder
        self.trace = trace

    # -- hooks for the DPAP subclasses ------------------------------------

    def _may_expand(self, status: Status, level: int,
                    report: OptimizerReport) -> bool:
        """Extra expansion gate; DPAP-EB overrides."""
        return True

    def _note_expansion(self, status: Status, level: int) -> None:
        """Called when a status is actually expanded; DPAP-EB overrides."""

    def _moves(self, status: Status,
               context: EnumerationContext) -> list[Move]:
        """Move generation; DPAP-LD overrides to stay left-deep."""
        return possible_moves(status, context)

    def _is_deadend(self, status: Status,
                    context: EnumerationContext) -> bool:
        """Lookahead test; DPAP-LD overrides to match its move set.

        Uses the strengthened :func:`is_doomed` check (any sound dead-
        status test preserves exactness, and the stronger test is what
        makes a per-level expansion bound of 1 always reach a plan).
        """
        return is_doomed(status, context)

    # -- search -------------------------------------------------------------

    def _search(self, context: EnumerationContext,
                report: OptimizerReport) -> tuple[PhysicalPlan, float]:
        pattern = context.pattern
        start = Status.start(pattern)
        start_cost = context.start_cost()

        best: dict[Status, _Entry] = {
            start: _Entry(start_cost, None, None)}
        report.statuses_generated += 1
        if self.trace is not None:
            self.trace.record("generate", start, start_cost, "start")
        tie_breaker = itertools.count()
        start_bound = start_cost + upper_bound_completion(start, context)
        heap: list[tuple[float, int, float, Status]] = []
        heapq.heappush(heap, (start_bound, next(tie_breaker), start_cost,
                              start))

        recorder = self.planspace
        min_final_cost = float("inf")
        # Tightest known achievable full-plan cost: every live status'
        # Cost + ubCost is the cost of a real completion, so it bounds
        # the optimum and seeds the Pruning Rule from the first push.
        best_bound = start_bound
        best_final: Status | None = None

        while heap:
            _, _, queued_cost, status = heapq.heappop(heap)
            entry = best[status]
            if queued_cost > entry.cost:
                continue  # stale queue entry; a cheaper path superseded it
            if entry.cost > min(min_final_cost, best_bound):
                report.statuses_pruned += 1
                if recorder is not None:
                    recorder.record_prune(status, PRUNE_COST_BOUND,
                                          entry.cost)
                if self.trace is not None:
                    self.trace.record("prune", status, entry.cost,
                                      "cost exceeds best known plan")
                continue  # Pruning Rule: dead
            if status.is_final():
                continue  # finals are never expanded
            level = status.level(pattern)
            if not self._may_expand(status, level, report):
                if recorder is not None:
                    recorder.record_prune(status, PRUNE_EXPANSION_BOUND,
                                          entry.cost)
                continue
            self._note_expansion(status, level)
            report.statuses_expanded += 1
            if self.trace is not None:
                self.trace.record("expand", status, entry.cost)

            for move in self._moves(status, context):
                report.plans_considered += 1
                new_cost = entry.cost + move.cost
                if recorder is not None:
                    recorder.record_candidate(status, move, new_cost,
                                              context)
                new_status = move.result
                if new_status.is_final():
                    if recorder is not None:
                        alt = build_plan(
                            self._reconstruct(best, status) + [move],
                            context)
                        recorder.record_final_plan(alt, alt.estimated_cost,
                                                   note=move.describe())
                    existing = best.get(new_status)
                    if existing is None or new_cost < existing.cost:
                        if existing is None:
                            report.statuses_generated += 1
                        else:
                            report.memo_hits += 1
                        best[new_status] = _Entry(new_cost, status, move)
                    else:
                        report.memo_hits += 1
                    if new_cost < min_final_cost:
                        min_final_cost = new_cost
                        best_final = new_status
                        if self.trace is not None:
                            self.trace.record("final", new_status,
                                              new_cost, move.describe())
                    continue
                if new_cost > min(min_final_cost, best_bound):
                    report.statuses_pruned += 1
                    if recorder is not None:
                        recorder.record_prune(new_status, PRUNE_COST_BOUND,
                                              new_cost)
                    continue
                if self.lookahead and self._is_deadend(new_status, context):
                    report.deadends_avoided += 1
                    if recorder is not None:
                        recorder.record_prune(new_status, PRUNE_INFEASIBLE,
                                              new_cost)
                    if self.trace is not None:
                        self.trace.record("deadend", new_status,
                                          new_cost, "not generated")
                    continue
                existing = best.get(new_status)
                if existing is not None:
                    report.memo_hits += 1
                    if new_cost >= existing.cost:
                        if recorder is not None:
                            recorder.record_prune(new_status,
                                                  PRUNE_DOMINATED, new_cost)
                        continue
                if existing is None:
                    report.statuses_generated += 1
                    if self.trace is not None:
                        self.trace.record("generate", new_status,
                                          new_cost, move.describe())
                elif self.trace is not None:
                    self.trace.record("improve", new_status, new_cost)
                best[new_status] = _Entry(new_cost, status, move)
                bound = new_cost + upper_bound_completion(new_status,
                                                          context)
                best_bound = min(best_bound, bound)
                heapq.heappush(heap, (bound, next(tie_breaker), new_cost,
                                      new_status))

        if best_final is None:
            raise OptimizerError("search reached no final status")
        moves = self._reconstruct(best, best_final)
        plan = build_plan(moves, context)
        if recorder is not None:
            for memo_status, memo_entry in best.items():
                recorder.record_memo_entry(memo_status, memo_entry.cost,
                                           memo_status.level(pattern))
            for memo_status in best:
                if memo_status.is_final():
                    alt = build_plan(self._reconstruct(best, memo_status),
                                     context)
                    recorder.record_final_plan(alt, alt.estimated_cost,
                                               note=f"final {memo_status}")
        # Report the replayed cost of the reconstructed chain: for the
        # exact searches it equals best[best_final].cost; under
        # DPAP-EB's expansion cap a predecessor may have improved after
        # the final status was last refreshed, making the chain
        # genuinely cheaper than the recorded label.
        return plan, plan.estimated_cost

    @staticmethod
    def _reconstruct(best: dict[Status, _Entry],
                     final_status: Status) -> list[Move]:
        moves: list[Move] = []
        status = final_status
        while True:
            entry = best[status]
            if entry.move is None:
                break
            moves.append(entry.move)
            if entry.previous is None:
                raise OptimizerError("broken back-pointer chain")
            status = entry.previous
        moves.reverse()
        return moves
