"""Shared plan-enumeration machinery.

Everything the five optimizers have in common lives here: the
per-query :class:`EnumerationContext` (pattern + cost model +
cardinality cache), move generation (``possible_moves``), deadend
detection (Definition 6 / the Lookahead Rule), the ``ubCost`` upper
bound used by DPP's priority queue, and the translation of a winning
move sequence back into a :class:`~repro.core.plans.PhysicalPlan`.
"""

from __future__ import annotations

from repro.errors import OptimizerError
from repro.core.cost import CostModel
from repro.core.pattern import PatternEdge, QueryPattern
from repro.core.plans import (IndexScanPlan, JoinAlgorithm, PhysicalPlan,
                              SortPlan, StructuralJoinPlan)
from repro.core.status import ANY_ORDER, Move, Status, StatusNode
from repro.estimation.estimator import (CardinalityEstimator,
                                        PatternCardinalities)


class EnumerationContext:
    """Per-optimize-call bundle: pattern, cost model, cached estimates."""

    def __init__(self, pattern: QueryPattern, cost_model: CostModel,
                 estimator: CardinalityEstimator) -> None:
        self.pattern = pattern
        self.cost_model = cost_model
        self.cards = PatternCardinalities(pattern, estimator)
        self._depths = self._node_depths()
        self._remaining: dict[Status, tuple[PatternEdge, ...]] = {}

    def remaining_edges(self, status: "Status") -> tuple[PatternEdge, ...]:
        """Memoized ``status.remaining_edges`` — the hottest query of
        the whole search, shared by move generation, the lookahead
        test and the ubCost bound."""
        cached = self._remaining.get(status)
        if cached is None:
            cached = tuple(status.remaining_edges(self.pattern))
            self._remaining[status] = cached
        return cached

    def _node_depths(self) -> dict[int, int]:
        depths = {self.pattern.root: 0}
        for node_id in self.pattern.walk_preorder():
            for child in self.pattern.children(node_id):
                depths[child] = depths[node_id] + 1
        return depths

    def depth(self, node_id: int) -> int:
        return self._depths[node_id]

    def start_cost(self) -> float:
        """Index-access cost of retrieving every candidate list.

        Charged on the start status: every plan scans the same indexes,
        so this is a constant offset, but including it keeps estimated
        plan costs comparable with measured execution costs.
        """
        return sum(
            self.cost_model.index_access(self.cards.candidates(node.node_id))
            for node in self.pattern.nodes)


def edge_eligible(status: Status, edge: PatternEdge) -> bool:
    """Can *edge* be joined without re-sorting either input?

    The stack-tree algorithms need the ancestor-side input ordered by
    the ancestor node and the descendant-side input ordered by the
    descendant node.  Singleton clusters (index scans) are ordered by
    their own node, so they are always eligible.
    """
    return (status.cluster_of(edge.parent).ordered_by == edge.parent
            and status.cluster_of(edge.child).ordered_by == edge.child)


def is_deadend(status: Status, pattern: QueryPattern) -> bool:
    """Definition 6: a non-final status with no possible moves."""
    if status.is_final():
        return False
    return not any(edge_eligible(status, edge)
                   for edge in status.remaining_edges(pattern))


def is_doomed(status: Status, context: "EnumerationContext") -> bool:
    """Stronger lookahead: can *status* still reach the final status?

    A move may re-sort its *output* to any node, but never an existing
    cluster's input: once a multi-node cluster is ordered by ``w``, the
    first join that consumes it must be on a remaining edge whose
    endpoint inside the cluster is exactly ``w``.  A cluster with no
    such edge can never participate in another join, so the status is
    unsalvageable even if Definition 6's one-step test passes.

    Used as the Lookahead Rule's test (any sound dead-status test keeps
    DPP exact); :func:`is_deadend` remains the literal Definition 6.
    """
    if status.is_final():
        return False
    remaining = context.remaining_edges(status)
    for cluster in status.clusters:
        if cluster.is_singleton:
            continue
        satisfiable = any(
            (edge.parent in cluster.nodes
             and edge.parent == cluster.ordered_by)
            or (edge.child in cluster.nodes
                and edge.child == cluster.ordered_by)
            for edge in remaining)
        if not satisfiable:
            return True
    return not any(edge_eligible(status, edge) for edge in remaining)


def left_deep_allows(status: Status, edge: PatternEdge) -> bool:
    """DPAP-LD rule: moves must extend the single *growing node*."""
    growing = status.growing_nodes()
    if not growing:
        return True  # the first join creates the growing node
    if len(growing) > 1:
        return False
    cluster = growing[0]
    return (edge.parent in cluster.nodes) != (edge.child in cluster.nodes)


def possible_moves(status: Status, context: EnumerationContext,
                   left_deep: bool = False) -> list[Move]:
    """All moves from *status* (pM(S) of Sec. 3.1.1).

    For every eligible remaining edge ``(u, v)`` the alternatives are:

    * Stack-Tree-Desc, output ordered by ``v``;
    * Stack-Tree-Anc, output ordered by ``u``;
    * Stack-Tree-Desc followed by a sort to any other node of the
      merged cluster (including ``u`` — sometimes cheaper than STA).

    A move that completes the pattern canonicalizes the final ordering:
    to the query's ``order_by`` (charging a final sort if the native
    order differs), or to ``ANY_ORDER`` when the query is unordered.
    """
    pattern = context.pattern
    cost_model = context.cost_model
    moves: list[Move] = []
    for edge in context.remaining_edges(status):
        if not edge_eligible(status, edge):
            continue
        if left_deep and not left_deep_allows(status, edge):
            continue
        ancestor_cluster = status.cluster_of(edge.parent)
        descendant_cluster = status.cluster_of(edge.child)
        merged_nodes = ancestor_cluster.nodes | descendant_cluster.nodes
        ancestor_card = context.cards.cluster(ancestor_cluster.nodes)
        merged_card = context.cards.cluster(merged_nodes)
        other_clusters = frozenset(
            cluster for cluster in status.clusters
            if cluster not in (ancestor_cluster, descendant_cluster))
        is_final = len(merged_nodes) == len(pattern)

        def emit(algorithm: JoinAlgorithm, native_order: int,
                 join_cost: float, sort_to: int | None = None) -> None:
            cost = join_cost
            order = native_order
            if sort_to is not None:
                cost += cost_model.sort(merged_card)
                order = sort_to
            if is_final:
                if pattern.order_by is None:
                    order = ANY_ORDER
                    sort_to = None
                elif order != pattern.order_by:
                    sort_to = pattern.order_by
                    cost += cost_model.sort(merged_card)
                    order = pattern.order_by
            merged = StatusNode(merged_nodes, order)
            result = Status(other_clusters | frozenset((merged,)))
            moves.append(Move(edge=edge, algorithm=algorithm,
                              sort_to=sort_to, cost=cost, result=result))

        desc_cost = cost_model.stack_tree_desc(ancestor_card)
        anc_cost = cost_model.stack_tree_anc(ancestor_card, merged_card)
        emit(JoinAlgorithm.STACK_TREE_DESC, edge.child, desc_cost)
        emit(JoinAlgorithm.STACK_TREE_ANC, edge.parent, anc_cost)
        if not is_final:
            for target in merged_nodes:
                if target != edge.child:
                    emit(JoinAlgorithm.STACK_TREE_DESC, edge.child,
                         desc_cost, sort_to=target)
    return moves


def upper_bound_completion(status: Status,
                           context: EnumerationContext) -> float:
    """ubCost (Sec. 3.2): upper-bound cost to reach the final status.

    The bound is the cost of one *feasible* completion, built greedily:
    repeatedly join a remaining edge whose two sides are currently
    joinable — a side is joinable if it is a singleton, if its fixed
    ordering matches the edge endpoint, or if it was merged during this
    completion (every merged result is charged a sort, so its order is
    freely re-chosen).  Each join is charged Stack-Tree-Desc plus that
    sort on the estimated cluster cardinalities.

    Because the completion is achievable, ``Cost + ubCost`` of any
    live status is the cost of a real full plan — DPP seeds its
    pruning threshold from it, which is what confines the search to
    the paper's "narrow band along the optimal path".  Unsalvageable
    statuses (see :func:`is_doomed`) get ``inf``.
    """
    cost_model = context.cost_model
    remaining = list(context.remaining_edges(status))
    if not remaining:
        return 0.0
    representative: dict[int, int] = {}
    members: dict[int, frozenset[int]] = {}
    cardinality: dict[int, float] = {}
    ordering: dict[int, int] = {}
    reorderable: dict[int, bool] = {}
    for cluster in status.clusters:
        rep = min(cluster.nodes)
        for node_id in cluster.nodes:
            representative[node_id] = rep
        members[rep] = cluster.nodes
        cardinality[rep] = context.cards.cluster(cluster.nodes)
        ordering[rep] = cluster.ordered_by
        reorderable[rep] = False

    def joinable(rep: int, endpoint: int) -> bool:
        return reorderable[rep] or ordering[rep] == endpoint

    total = 0.0
    while remaining:
        chosen = None
        for index, edge in enumerate(remaining):
            anc_rep = representative[edge.parent]
            desc_rep = representative[edge.child]
            if (joinable(anc_rep, edge.parent)
                    and joinable(desc_rep, edge.child)):
                chosen = index
                break
        if chosen is None:
            return float("inf")  # doomed status: no feasible completion
        edge = remaining.pop(chosen)
        anc_rep = representative[edge.parent]
        desc_rep = representative[edge.child]
        merged_nodes = members[anc_rep] | members[desc_rep]
        merged_card = context.cards.cluster(merged_nodes)
        total += (cost_model.stack_tree_desc(cardinality[anc_rep])
                  + cost_model.sort(merged_card))
        for node_id in merged_nodes:
            representative[node_id] = anc_rep
        members[anc_rep] = merged_nodes
        cardinality[anc_rep] = merged_card
        reorderable[anc_rep] = True
    return total


def build_plan(moves: list[Move],
               context: EnumerationContext) -> PhysicalPlan:
    """Translate a start-to-final move sequence into a physical plan."""
    pattern = context.pattern
    cost_model = context.cost_model
    plans: dict[frozenset[int], PhysicalPlan] = {}
    for node in pattern.nodes:
        scan_cost = cost_model.index_access(
            context.cards.candidates(node.node_id))
        plans[frozenset((node.node_id,))] = IndexScanPlan(
            node.node_id,
            estimated_cardinality=context.cards.node(node.node_id),
            estimated_cost=scan_cost)

    for move in moves:
        ancestor_key = _key_containing(plans, move.edge.parent)
        descendant_key = _key_containing(plans, move.edge.child)
        ancestor_plan = plans.pop(ancestor_key)
        descendant_plan = plans.pop(descendant_key)
        merged_key = ancestor_key | descendant_key
        merged_card = context.cards.cluster(merged_key)
        ancestor_card = context.cards.cluster(ancestor_key)
        if move.algorithm is JoinAlgorithm.STACK_TREE_ANC:
            join_cost = cost_model.stack_tree_anc(ancestor_card, merged_card)
        else:
            join_cost = cost_model.stack_tree_desc(ancestor_card)
        plan: PhysicalPlan = StructuralJoinPlan(
            ancestor_plan, descendant_plan,
            move.edge.parent, move.edge.child,
            move.edge.axis, move.algorithm,
            estimated_cardinality=merged_card,
            estimated_cost=(ancestor_plan.estimated_cost
                            + descendant_plan.estimated_cost + join_cost))
        if move.sort_to is not None:
            plan = SortPlan(plan, move.sort_to,
                            estimated_cardinality=merged_card,
                            estimated_cost=(plan.estimated_cost
                                            + cost_model.sort(merged_card)))
        plans[merged_key] = plan

    if len(plans) != 1:
        raise OptimizerError(
            f"move sequence left {len(plans)} fragments, expected 1")
    return next(iter(plans.values()))


def _key_containing(plans: dict[frozenset[int], PhysicalPlan],
                    node_id: int) -> frozenset[int]:
    for key in plans:
        if node_id in key:
            return key
    raise OptimizerError(f"no plan fragment binds node {node_id}")


def estimate_plan_cost(plan: PhysicalPlan,
                       context: EnumerationContext) -> float:
    """Re-derive a plan's cumulative estimated cost (and annotate it).

    Works on any plan shape, including plans with input sorts that the
    status search never generates (used by the random-plan sampler).
    """
    cost_model = context.cost_model
    if isinstance(plan, IndexScanPlan):
        plan.estimated_cardinality = context.cards.node(plan.node_id)
        plan.estimated_cost = cost_model.index_access(
            context.cards.candidates(plan.node_id))
        return plan.estimated_cost
    if isinstance(plan, SortPlan):
        child_cost = estimate_plan_cost(plan.child, context)
        plan.estimated_cardinality = plan.child.estimated_cardinality
        plan.estimated_cost = child_cost + cost_model.sort(
            plan.estimated_cardinality)
        return plan.estimated_cost
    if isinstance(plan, StructuralJoinPlan):
        ancestor_cost = estimate_plan_cost(plan.ancestor_plan, context)
        descendant_cost = estimate_plan_cost(plan.descendant_plan, context)
        ancestor_card = plan.ancestor_plan.estimated_cardinality
        merged_card = context.cards.cluster(plan.pattern_nodes())
        if plan.algorithm is JoinAlgorithm.STACK_TREE_ANC:
            join_cost = cost_model.stack_tree_anc(ancestor_card, merged_card)
        else:
            join_cost = cost_model.stack_tree_desc(ancestor_card)
        plan.estimated_cardinality = merged_card
        plan.estimated_cost = ancestor_cost + descendant_cost + join_cost
        return plan.estimated_cost
    raise OptimizerError(f"unknown plan node {type(plan).__name__}")
