"""Opt-in plan-space recording for the optimizer searches.

A :class:`PlanSpaceRecorder` captures what an optimizer *saw* while
choosing a plan: every costed candidate (with its estimated cost split
across the four Sec. 2.2.2 counter families), every memo-table entry
retained, every pruning with its reason, and the alternative final
plans the search reached.  Recording follows the same is-None-slot
pattern as the executor's operator spans: optimizers hoist
``recorder = self.planspace`` to a local and guard every call with
``if recorder is not None``, so the off path costs one predictable
branch per candidate.

The recorder itself is deliberately dependency-light (statuses, plans,
cost model only); rendering — digests, top-k ranking, "why the winner
won" — lives in :mod:`repro.obs.planspace`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.plans import (IndexScanPlan, JoinAlgorithm, PhysicalPlan,
                              SortPlan, StructuralJoinPlan)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.enumeration import EnumerationContext
    from repro.core.pattern import QueryPattern
    from repro.core.stats import OptimizerReport
    from repro.core.status import Move, Status

#: Pruning taxonomy (DESIGN.md §11).  ``dominated-by-cost`` is dynamic
#: programming's own rule (same status reached cheaper another way);
#: ``cost-bound`` is DPP's Pruning Rule (Sec. 3.2, cost exceeds the
#: best known full plan); ``infeasible`` is the Lookahead Rule
#: (Definition 6 deadends, never generated); ``expansion-bound`` is
#: DPAP-EB's per-level ``T_e`` cap (Sec. 3.3.1).
PRUNE_DOMINATED = "dominated-by-cost"
PRUNE_COST_BOUND = "cost-bound"
PRUNE_INFEASIBLE = "infeasible"
PRUNE_EXPANSION_BOUND = "expansion-bound"

PRUNE_REASONS = (PRUNE_DOMINATED, PRUNE_COST_BOUND, PRUNE_INFEASIBLE,
                 PRUNE_EXPANSION_BOUND)

#: Cost-family keys, matching :data:`repro.core.cost.COST_FACTOR_NAMES`.
FAMILIES = ("f_index", "f_sort", "f_io", "f_stack")


def move_breakdown(status: "Status", move: "Move",
                   context: "EnumerationContext") -> dict[str, float]:
    """Split one move's estimated cost across the four counter families.

    The join component is re-derived from the clusters the move merges
    (cardinality lookups hit :class:`PatternCardinalities`' cache); the
    residual is exactly the sort cost the move charged (intermediate
    re-sorts and the final order-by canonicalization both price as
    sorts), so the families always sum to ``move.cost``.
    """
    edge = move.edge
    ancestor = status.cluster_of(edge.parent)
    descendant = status.cluster_of(edge.child)
    ancestor_card = context.cards.cluster(ancestor.nodes)
    factors = context.cost_model.factors
    stack = 2.0 * ancestor_card * factors.f_stack
    if move.algorithm is JoinAlgorithm.STACK_TREE_ANC:
        merged_card = context.cards.cluster(ancestor.nodes
                                            | descendant.nodes)
        io = 2.0 * merged_card * factors.f_io
    else:
        io = 0.0
    sort = move.cost - io - stack
    return {"f_index": 0.0, "f_sort": sort if sort > 1e-9 else 0.0,
            "f_io": io, "f_stack": stack}


def plan_cost_breakdown(plan: PhysicalPlan,
                        factors) -> dict[str, float]:
    """Split an annotated plan's cumulative cost across the families.

    Works from the plan's own cardinality annotations, so it prices a
    reconstructed or logged plan the same way the enumerator priced it
    live.  Join algorithms outside the stack-tree pair (none are ever
    emitted by the optimizers) fold their residual into ``f_stack``.
    """
    import math

    totals = {name: 0.0 for name in FAMILIES}

    def visit(node: PhysicalPlan) -> None:
        if isinstance(node, IndexScanPlan):
            totals["f_index"] += node.estimated_cost
        elif isinstance(node, SortPlan):
            visit(node.child)
            items = node.estimated_cardinality
            if items > 1:
                totals["f_sort"] += (items * math.log2(items)
                                     * factors.f_sort)
        elif isinstance(node, StructuralJoinPlan):
            visit(node.ancestor_plan)
            visit(node.descendant_plan)
            stack = (2.0 * node.ancestor_plan.estimated_cardinality
                     * factors.f_stack)
            if node.algorithm is JoinAlgorithm.STACK_TREE_ANC:
                totals["f_io"] += (2.0 * node.estimated_cardinality
                                   * factors.f_io)
                totals["f_stack"] += stack
            elif node.algorithm is JoinAlgorithm.STACK_TREE_DESC:
                totals["f_stack"] += stack
            else:
                join_cost = (node.estimated_cost
                             - node.ancestor_plan.estimated_cost
                             - node.descendant_plan.estimated_cost)
                totals["f_stack"] += join_cost

    visit(plan)
    return totals


class PlanSpaceRecorder:
    """Collects one ``optimize()`` call's search-space evidence.

    Attach via ``get_optimizer(name, planspace=recorder)`` (or
    ``Database.optimize(..., planspace=recorder)``); read the captured
    lists afterwards, or hand the recorder to
    :func:`repro.obs.planspace.build_plan_space_report` for rendering.
    A recorder is single-use per optimize call: ``begin`` resets it.
    """

    def __init__(self, max_candidates: int = 20000,
                 max_memo_entries: int = 50000,
                 max_prune_samples: int = 50) -> None:
        self.max_candidates = max_candidates
        self.max_memo_entries = max_memo_entries
        self.max_prune_samples = max_prune_samples
        self._reset()

    def _reset(self) -> None:
        self.algorithm: str | None = None
        self.pattern: "QueryPattern | None" = None
        self.context: "EnumerationContext | None" = None
        #: every costed candidate move/permutation (capped)
        self.candidates: list[dict[str, object]] = []
        self.candidates_dropped = 0
        #: memo-table entries retained by the search (capped)
        self.memo_entries: list[dict[str, object]] = []
        self.memo_dropped = 0
        #: pruning counts by reason, plus a bounded sample of details
        self.prunings: dict[str, int] = {}
        self.prune_samples: list[dict[str, object]] = []
        #: alternative final plans: (plan, cost, note)
        self.finals: list[tuple[PhysicalPlan, float, str]] = []
        self.winner: PhysicalPlan | None = None
        self.winner_cost = 0.0
        self.report: "OptimizerReport | None" = None

    # -- lifecycle ---------------------------------------------------------

    def begin(self, algorithm: str, pattern: "QueryPattern",
              context: "EnumerationContext") -> None:
        self._reset()
        self.algorithm = algorithm
        self.pattern = pattern
        self.context = context

    def finish(self, plan: PhysicalPlan, cost: float,
               report: "OptimizerReport") -> None:
        self.winner = plan
        self.winner_cost = cost
        self.report = report

    # -- recording hooks (optimizers call these behind is-None guards) -----

    def record_candidate(self, status: "Status", move: "Move",
                         path_cost: float,
                         context: "EnumerationContext") -> None:
        """One costed move out of *status*; ``path_cost`` is the
        cumulative cost of the path ending in this move."""
        if len(self.candidates) >= self.max_candidates:
            self.candidates_dropped += 1
            return
        self.candidates.append({
            "kind": "move",
            "status": str(status),
            "move": move.describe(),
            "algorithm": move.algorithm.value,
            "sort_to": move.sort_to,
            "move_cost": move.cost,
            "path_cost": path_cost,
            "breakdown": move_breakdown(status, move, context),
        })

    def record_permutation(self, node_id: int, exclude: int | None,
                           order: tuple[int, ...], cost: float) -> None:
        """One costed FP join permutation under root *node_id*."""
        if len(self.candidates) >= self.max_candidates:
            self.candidates_dropped += 1
            return
        self.candidates.append({
            "kind": "permutation",
            "status": f"fp({node_id},{exclude})",
            "move": "join order " + ",".join(map(str, order)),
            "algorithm": None,
            "sort_to": None,
            "move_cost": cost,
            "path_cost": cost,
            "breakdown": None,
        })

    def record_memo_entry(self, status: object, cost: float,
                          level: int) -> None:
        """A retained memo-table entry (DP level / DPP best / FP memo)."""
        if len(self.memo_entries) >= self.max_memo_entries:
            self.memo_dropped += 1
            return
        self.memo_entries.append({
            "status": str(status), "cost": cost, "level": level})

    def record_prune(self, subject: object, reason: str,
                     cost: float) -> None:
        """A candidate/status discarded for *reason* (see taxonomy)."""
        self.prunings[reason] = self.prunings.get(reason, 0) + 1
        if len(self.prune_samples) < self.max_prune_samples:
            self.prune_samples.append({
                "subject": str(subject), "reason": reason, "cost": cost})

    def record_final_plan(self, plan: PhysicalPlan, cost: float,
                          note: str = "") -> None:
        """A complete alternative plan the search reached."""
        self.finals.append((plan, cost, note))

    # -- summaries ---------------------------------------------------------

    @property
    def memo_size(self) -> int:
        return len(self.memo_entries) + self.memo_dropped

    @property
    def candidates_enumerated(self) -> int:
        return len(self.candidates) + self.candidates_dropped

    @property
    def pruned_total(self) -> int:
        return sum(self.prunings.values())
