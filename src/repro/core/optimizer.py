"""Optimizer base class, result type, and registry.

Every algorithm subclasses :class:`Optimizer` and implements
``_search``; the base class handles the shared flow — trivial
single-node patterns, timing, plan validation — and exposes a registry
so harness code can select algorithms by the names the paper uses
("DP", "DPP", "DPP'", "DPAP-EB", "DPAP-LD", "FP").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import OptimizerError
from repro.core.cost import CostModel
from repro.core.enumeration import EnumerationContext
from repro.core.pattern import QueryPattern
from repro.core.plans import IndexScanPlan, PhysicalPlan, validate_plan
from repro.core.stats import OptimizerReport
from repro.estimation.estimator import CardinalityEstimator


@dataclass
class OptimizationResult:
    """A chosen plan plus the work it took to choose it."""

    pattern: QueryPattern
    plan: PhysicalPlan
    estimated_cost: float
    report: OptimizerReport

    def explain(self) -> str:
        return self.plan.explain(self.pattern)


class Optimizer:
    """Base class for the five join-order-selection algorithms."""

    #: Registry name; subclasses override (e.g. ``"DPP"``).
    name = "base"

    def __init__(self, cost_model: CostModel | None = None,
                 planspace=None) -> None:
        self.cost_model = cost_model or CostModel()
        #: optional :class:`repro.core.planspace.PlanSpaceRecorder`;
        #: None (the default) keeps the search paths recording-free.
        self.planspace = planspace

    def optimize(self, pattern: QueryPattern,
                 estimator: CardinalityEstimator) -> OptimizationResult:
        """Select a plan for *pattern* using *estimator*'s statistics."""
        report = OptimizerReport(self.name)
        context = EnumerationContext(pattern, self.cost_model, estimator)
        recorder = self.planspace
        if recorder is not None:
            recorder.begin(self.name, pattern, context)
        started = time.perf_counter()
        if len(pattern) == 1:
            node_id = pattern.root
            plan: PhysicalPlan = IndexScanPlan(
                node_id,
                estimated_cardinality=context.cards.node(node_id),
                estimated_cost=context.start_cost())
            cost = plan.estimated_cost
            report.plans_considered = 1
            if recorder is not None:
                recorder.record_final_plan(plan, cost, "single-node scan")
        else:
            plan, cost = self._search(context, report)
        report.optimization_seconds = time.perf_counter() - started
        validate_plan(plan, pattern)
        if recorder is not None:
            recorder.finish(plan, cost, report)
        return OptimizationResult(pattern=pattern, plan=plan,
                                  estimated_cost=cost, report=report)

    def _search(self, context: EnumerationContext,
                report: OptimizerReport) -> tuple[PhysicalPlan, float]:
        raise NotImplementedError


_REGISTRY: dict[str, type[Optimizer]] = {}


def register(cls: type[Optimizer]) -> type[Optimizer]:
    """Class decorator adding an optimizer to the registry."""
    if cls.name in _REGISTRY:
        raise OptimizerError(f"duplicate optimizer name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def optimizer_names() -> list[str]:
    """Registered algorithm names, in registration order."""
    return list(_REGISTRY)


def get_optimizer(name: str, **kwargs: object) -> Optimizer:
    """Instantiate a registered optimizer by paper name.

    Special cases mirror the paper's variants: ``"DPP'"`` is DPP with
    the Lookahead Rule disabled (Table 2).
    """
    if name == "DPP'":
        from repro.core.dpp import DPPOptimizer
        return DPPOptimizer(lookahead=False, **kwargs)  # type: ignore[arg-type]
    cls = _REGISTRY.get(name)
    if cls is None:
        raise OptimizerError(
            f"unknown optimizer {name!r}; known: {optimizer_names()}")
    return cls(**kwargs)  # type: ignore[arg-type]
