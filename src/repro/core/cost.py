"""Cost model for the physical operations (Sec. 2.2.2).

The paper costs four physical operations with per-system weight
factors:

* index access of ``n`` items:      ``f_I * n``
* sort of ``n`` items:              ``n * log2(n) * f_s``
* Stack-Tree-Anc join:              ``2 * |AB| * f_IO + 2 * |A| * f_st``
* Stack-Tree-Desc join:             ``2 * |A| * f_st``

where ``|A|`` is the cardinality of the ancestor-side input and
``|AB|`` the cardinality of the join output.  The same factors are
reused by :mod:`repro.engine.metrics` to convert measured operation
counts into *simulated seconds*, so the optimizer's estimates and the
engine's reports are expressed in one currency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.errors import OptimizerError

#: the four factors, in the positional order ``CostFactors`` takes
#: them — shared by the calibrator, which fits them as a vector.
COST_FACTOR_NAMES = ("f_index", "f_sort", "f_io", "f_stack")


@dataclass(frozen=True, slots=True)
class CostFactors:
    """Weight factors normalizing the four physical operations.

    Defaults model a system where disk I/O is the expensive operation,
    sorting costs more per item than a stack operation, and index
    access is cheap per retrieved item — the relative magnitudes the
    paper's experiments imply (I/O-bound STA joins, sort-heavy
    left-deep plans).  The sort/IO ratio places the blocking-vs-
    pipelined crossover (Table 3 / Sec. 4.3) around ``n*log2(n*) =
    2*f_io/f_sort``, i.e. intermediate results of ~64K tuples at the
    defaults — inside the folding range the benchmarks sweep.  Units
    are arbitrary "cost units" out of the box; the calibrator
    (:mod:`repro.obs.calibrate`) replaces them with measured
    seconds-per-operation, after which estimated and actual costs are
    directly comparable.
    """

    f_index: float = 1.0
    f_sort: float = 2.0
    f_io: float = 16.0
    f_stack: float = 1.0

    def __post_init__(self) -> None:
        for name in COST_FACTOR_NAMES:
            if getattr(self, name) < 0:
                raise OptimizerError(f"cost factor {name} must be >= 0")

    def as_tuple(self) -> tuple[float, float, float, float]:
        """The factors in :data:`COST_FACTOR_NAMES` order."""
        return (self.f_index, self.f_sort, self.f_io, self.f_stack)

    def to_dict(self) -> dict[str, float]:
        """JSON-able mapping (query-log records, calibration output)."""
        return {name: getattr(self, name) for name in COST_FACTOR_NAMES}

    @classmethod
    def from_dict(cls, payload: Mapping[str, float]) -> "CostFactors":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        unknown = set(payload) - set(COST_FACTOR_NAMES)
        if unknown:
            raise OptimizerError(
                f"unknown cost factor(s) {sorted(unknown)}; "
                f"expected {COST_FACTOR_NAMES}")
        return cls(**{name: float(value)
                      for name, value in payload.items()})


class CostModel:
    """Evaluates the Sec. 2.2.2 cost formulae for given cardinalities.

    The factors are **swappable at runtime** via :meth:`set_factors`:
    a database that applies calibrated factors mid-flight re-prices
    every subsequent optimization without rebuilding its optimizers.
    Callers that cache plans priced with the old factors must
    invalidate them (``Database.set_cost_factors`` bumps the
    statistics epoch for exactly that reason).
    """

    def __init__(self, factors: CostFactors | None = None) -> None:
        self.factors = factors or CostFactors()

    def set_factors(self, factors: CostFactors) -> None:
        """Swap the weight factors for all subsequent cost evaluations."""
        if not isinstance(factors, CostFactors):
            raise OptimizerError(
                f"set_factors expects CostFactors, got "
                f"{type(factors).__name__}")
        self.factors = factors

    def index_access(self, items: int) -> float:
        """Cost of retrieving *items* postings from the tag index."""
        self._check(items, "items")
        return self.factors.f_index * items

    def sort(self, items: int) -> float:
        """Cost of sorting *items* tuples (``n log n``)."""
        self._check(items, "items")
        if items <= 1:
            return 0.0
        return items * math.log2(items) * self.factors.f_sort

    def stack_tree_anc(self, ancestor_cardinality: float,
                       output_cardinality: float) -> float:
        """Stack-Tree-Anc: buffers output lists, paying I/O on |AB|."""
        self._check(ancestor_cardinality, "ancestor cardinality")
        self._check(output_cardinality, "output cardinality")
        return (2.0 * output_cardinality * self.factors.f_io
                + 2.0 * ancestor_cardinality * self.factors.f_stack)

    def stack_tree_desc(self, ancestor_cardinality: float) -> float:
        """Stack-Tree-Desc: pure streaming, stack work only."""
        self._check(ancestor_cardinality, "ancestor cardinality")
        return 2.0 * ancestor_cardinality * self.factors.f_stack

    @staticmethod
    def _check(value: float, what: str) -> None:
        if value < 0:
            raise OptimizerError(f"{what} must be >= 0, got {value}")
