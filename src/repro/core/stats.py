"""Optimizer instrumentation.

Table 2 of the paper compares the algorithms by optimization time and
by the *number of alternative plans considered*; every optimizer fills
an :class:`OptimizerReport` so the benchmark harness can reproduce
that table.  "Plans considered" counts every costed alternative: each
generated move in the DP-family searches, and each evaluated
permutation/sub-plan in FP.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class OptimizerReport:
    """Work counters for one ``optimize()`` call."""

    algorithm: str
    plans_considered: int = 0
    statuses_generated: int = 0
    statuses_expanded: int = 0
    deadends_avoided: int = 0
    statuses_pruned: int = 0
    #: times the search re-reached an already-tabled sub-result (a
    #: status seen via another path, or an FP (node, exclude) sub-plan)
    memo_hits: int = 0
    optimization_seconds: float = 0.0

    @property
    def alternatives_considered(self) -> int:
        """The paper's Table-2 "# of Plans" metric.

        For the status-based searches this is the number of distinct
        partial plans retained (statuses generated); for FP, which has
        no statuses, it is the number of candidate plans (permutations)
        evaluated.  ``plans_considered`` remains the raw count of every
        costed move, including duplicates that dynamic programming
        immediately discards.
        """
        if self.statuses_generated:
            return self.statuses_generated
        return self.plans_considered

    def summary(self) -> str:
        return (f"{self.algorithm}: plans={self.plans_considered} "
                f"statuses={self.statuses_generated}/"
                f"{self.statuses_expanded} "
                f"pruned={self.statuses_pruned} "
                f"time={self.optimization_seconds * 1000:.2f}ms")
