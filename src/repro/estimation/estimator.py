"""Cardinality estimators used by the optimizers.

Two interchangeable estimators implement
:class:`CardinalityEstimator`:

* :class:`PositionalEstimator` — positional + level histograms per tag,
  as in the paper's experiments;
* :class:`ExactEstimator` — exact pairwise structural-join counts
  computed from the data (used for calibration, tests, and the
  estimation-error ablation bench).

Both expose the same three queries: candidate-set size of one pattern
node, result size of one pattern edge, and result size of a connected
sub-pattern.  Sub-pattern sizes combine per-edge selectivities under
the textbook attribute-independence assumption — the estimator of the
paper's reference [17] is likewise built from pairwise statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import EstimationError
from repro.document.document import XmlDocument
from repro.document.node import NodeRecord, Region
from repro.core.pattern import Axis, PatternNode, QueryPattern
from repro.estimation.histogram import LevelHistogram, PositionalHistogram

WILDCARD = "*"

#: Fallback selectivity for range predicates, where distinct-value
#: counts say nothing about the cut point.
RANGE_PREDICATE_SELECTIVITY = 1.0 / 3.0


@dataclass
class TagStatistics:
    """Per-tag summary: counts, histograms, distinct-value counts."""

    tag: str
    count: int = 0
    positions: PositionalHistogram | None = None
    levels: LevelHistogram = field(default_factory=LevelHistogram)
    distinct_texts: int = 0
    distinct_attribute_values: dict[str, int] = field(default_factory=dict)

    def clone(self) -> "TagStatistics":
        """Deep-enough copy for copy-on-write statistics deltas."""
        return TagStatistics(
            self.tag, self.count,
            self.positions.clone() if self.positions else None,
            self.levels.clone(), self.distinct_texts,
            dict(self.distinct_attribute_values))

    def merge(self, other: "TagStatistics") -> None:
        """Fold *other* into this entry (shard-statistics merge).

        Counts and histograms add exactly because per-shard histograms
        are built over the shared global label space.  Distinct-value
        counts add under a disjoint-values assumption — shards own
        disjoint subtrees, so a value repeated across shards is
        counted once per shard.  That overcounts shared values, which
        only makes equality predicates look *more* selective; the
        estimates remain sane for planning.
        """
        if other.tag != self.tag:
            raise EstimationError(
                f"cannot merge statistics for tag {other.tag!r} into "
                f"{self.tag!r}")
        self.count += other.count
        if other.positions is not None:
            if self.positions is None:
                self.positions = other.positions.clone()
            else:
                self.positions.merge_from(other.positions)
        self.levels.merge_from(other.levels)
        self.distinct_texts += other.distinct_texts
        for name, distinct in other.distinct_attribute_values.items():
            self.distinct_attribute_values[name] = (
                self.distinct_attribute_values.get(name, 0) + distinct)


def build_tag_statistics(document: XmlDocument, grid: int = 16,
                         nodes: Iterable[NodeRecord] | None = None,
                         space: int | None = None) -> dict[str, TagStatistics]:
    """Scan *document* once and build statistics for every tag.

    The special key ``"*"`` aggregates all nodes, supporting wildcard
    pattern nodes.

    The histogram position space is the document's *label* space
    (``root.end + 1``), not its node count: for densely labeled
    documents the two coincide, while gapped region labels (the
    incremental write path, :mod:`repro.txn`) spread fewer nodes over
    a larger space.

    *nodes* restricts the scan to a subset of the document's nodes and
    *space* pins the histogram position space — together they let a
    shard build statistics over only its assigned subtrees while
    keeping histogram buckets aligned with every other shard's, so
    :func:`merge_tag_statistics` can add them cell-for-cell.
    """
    if space is None:
        space = document.root.end + 1
    stats: dict[str, TagStatistics] = {}
    texts: dict[str, set[str]] = {}
    attributes: dict[str, dict[str, set[str]]] = {}
    for key in (WILDCARD,):
        stats[key] = TagStatistics(
            key, positions=PositionalHistogram(space, grid))
        texts[key] = set()
        attributes[key] = {}
    for node in (document if nodes is None else nodes):
        for key in (node.tag, WILDCARD):
            entry = stats.get(key)
            if entry is None:
                entry = TagStatistics(
                    key, positions=PositionalHistogram(space, grid))
                stats[key] = entry
                texts[key] = set()
                attributes[key] = {}
            entry.count += 1
            entry.positions.add(node.region)
            entry.levels.add(node.level)
            if node.text:
                texts[key].add(node.text)
            for name, value in node.attributes.items():
                attributes[key].setdefault(name, set()).add(value)
    for key, entry in stats.items():
        entry.distinct_texts = len(texts[key])
        entry.distinct_attribute_values = {
            name: len(values) for name, values in attributes[key].items()}
    return stats


def merge_tag_statistics(
        parts: Iterable[Mapping[str, TagStatistics]]
) -> dict[str, TagStatistics]:
    """Combine per-shard statistics into one global statistics map.

    Every part must have been built over the same position space and
    grid (see :func:`build_tag_statistics`'s *space* parameter); the
    merged map is what the coordinator's planner estimates against.
    """
    merged: dict[str, TagStatistics] = {}
    for part in parts:
        for tag, entry in part.items():
            existing = merged.get(tag)
            if existing is None:
                merged[tag] = entry.clone()
            else:
                existing.merge(entry)
    return merged


def _predicate_selectivity(node: PatternNode,
                           stats: Mapping[str, TagStatistics]) -> float:
    """Estimated combined selectivity of a pattern node's predicates."""
    entry = stats.get(node.tag if not node.is_wildcard else WILDCARD)
    selectivity = 1.0
    for predicate in node.predicates:
        if predicate.op == "=":
            if predicate.kind == "text":
                distinct = entry.distinct_texts if entry else 0
            else:
                distinct = (entry.distinct_attribute_values.get(
                    predicate.name, 0) if entry else 0)
            selectivity *= 1.0 / distinct if distinct else 0.1
        elif predicate.op == "!=":
            selectivity *= 0.9
        else:
            selectivity *= RANGE_PREDICATE_SELECTIVITY
    return selectivity


class CardinalityEstimator:
    """Interface consumed by the optimizers."""

    def node_candidates(self, node: PatternNode) -> float:
        """Index postings retrieved for *node* (before predicates)."""
        raise NotImplementedError

    def node_cardinality(self, node: PatternNode) -> float:
        """Candidate-set size of *node* after its predicates."""
        raise NotImplementedError

    def edge_cardinality(self, pattern: QueryPattern, parent: int,
                         child: int) -> float:
        """Estimated result size of the single edge (parent, child)."""
        raise NotImplementedError

    def cluster_cardinality(self, pattern: QueryPattern,
                            node_ids: frozenset[int]) -> float:
        """Estimated match count of the connected sub-pattern *node_ids*.

        Default implementation: independence combination of per-edge
        selectivities, ``prod(|n|) * prod(sel(e))``.
        """
        if not node_ids:
            raise EstimationError("cluster must be non-empty")
        if not pattern.is_connected_subset(node_ids):
            raise EstimationError(f"cluster {sorted(node_ids)} is not a "
                                  "connected sub-pattern")
        cardinality = 1.0
        for node_id in node_ids:
            cardinality *= self.node_cardinality(pattern.node(node_id))
        for edge in pattern.edges_within(node_ids):
            parent_size = self.node_cardinality(pattern.node(edge.parent))
            child_size = self.node_cardinality(pattern.node(edge.child))
            if parent_size == 0 or child_size == 0:
                return 0.0
            pair = self.edge_cardinality(pattern, edge.parent, edge.child)
            cardinality *= pair / (parent_size * child_size)
        return cardinality


class PositionalEstimator(CardinalityEstimator):
    """Histogram-backed estimator (the paper's configuration)."""

    def __init__(self, stats: Mapping[str, TagStatistics]) -> None:
        self._stats = dict(stats)
        # Pairwise histogram joins are the expensive part of estimation;
        # they depend only on (node tests, axis), so memoize across
        # queries the way a real system caches derived statistics.
        self._edge_cache: dict[tuple[PatternNode, PatternNode, Axis],
                               float] = {}

    @classmethod
    def from_document(cls, document: XmlDocument,
                      grid: int = 16) -> "PositionalEstimator":
        return cls(build_tag_statistics(document, grid=grid))

    def _entry(self, tag: str) -> TagStatistics | None:
        return self._stats.get(tag)

    def node_candidates(self, node: PatternNode) -> float:
        entry = self._entry(WILDCARD if node.is_wildcard else node.tag)
        return float(entry.count) if entry else 0.0

    def node_cardinality(self, node: PatternNode) -> float:
        candidates = self.node_candidates(node)
        if candidates == 0.0:
            return 0.0
        return candidates * _predicate_selectivity(node, self._stats)

    def edge_cardinality(self, pattern: QueryPattern, parent: int,
                         child: int) -> float:
        edge = pattern.edge_between(parent, child)
        if edge is None or (edge.parent, edge.child) != (parent, child):
            raise EstimationError(
                f"({parent}, {child}) is not an edge of the pattern")
        parent_node = pattern.node(parent)
        child_node = pattern.node(child)
        key = (parent_node, child_node, edge.axis)
        cached = self._edge_cache.get(key)
        if cached is not None:
            return cached
        parent_entry = self._entry(
            WILDCARD if parent_node.is_wildcard else parent_node.tag)
        child_entry = self._entry(
            WILDCARD if child_node.is_wildcard else child_node.tag)
        if parent_entry is None or child_entry is None:
            estimate = 0.0
        else:
            estimate = parent_entry.positions.estimate_containment_join(
                child_entry.positions)
            if edge.axis is Axis.CHILD:
                estimate *= parent_entry.levels.parent_child_fraction(
                    child_entry.levels)
            estimate *= _predicate_selectivity(parent_node, self._stats)
            estimate *= _predicate_selectivity(child_node, self._stats)
        self._edge_cache[key] = estimate
        return estimate


class ExactEstimator(CardinalityEstimator):
    """Ground-truth pairwise estimator computed from the document.

    Node candidate sets (with predicates applied) and single-edge join
    sizes are exact; multi-edge sub-patterns still combine edges under
    independence, which keeps optimization costs polynomial and mirrors
    what a production estimator can know.
    """

    def __init__(self, document: XmlDocument) -> None:
        self._document = document
        self._stats = build_tag_statistics(document, grid=1)
        self._candidate_cache: dict[PatternNode, list[NodeRecord]] = {}
        self._edge_cache: dict[tuple[PatternNode, PatternNode, Axis],
                               int] = {}

    def _candidates(self, node: PatternNode) -> list[NodeRecord]:
        cached = self._candidate_cache.get(node)
        if cached is None:
            if node.is_wildcard:
                pool: Iterable[NodeRecord] = self._document
            else:
                pool = self._document.nodes_with_tag(node.tag)
            cached = [candidate for candidate in pool
                      if node.matches(candidate)]
            self._candidate_cache[node] = cached
        return cached

    def node_candidates(self, node: PatternNode) -> float:
        if node.is_wildcard:
            return float(len(self._document))
        return float(self._document.tag_count(node.tag))

    def node_cardinality(self, node: PatternNode) -> float:
        return float(len(self._candidates(node)))

    def edge_cardinality(self, pattern: QueryPattern, parent: int,
                         child: int) -> float:
        edge = pattern.edge_between(parent, child)
        if edge is None or (edge.parent, edge.child) != (parent, child):
            raise EstimationError(
                f"({parent}, {child}) is not an edge of the pattern")
        parent_node = pattern.node(parent)
        child_node = pattern.node(child)
        key = (parent_node, child_node, edge.axis)
        cached = self._edge_cache.get(key)
        if cached is None:
            cached = count_containment_pairs(
                [c.region for c in self._candidates(parent_node)],
                [c.region for c in self._candidates(child_node)],
                parent_child=edge.axis is Axis.CHILD)
            self._edge_cache[key] = cached
        return float(cached)


def count_containment_pairs(ancestors: list[Region],
                            descendants: list[Region],
                            parent_child: bool = False) -> int:
    """Exact count of (a, d) containment pairs between two region lists.

    Both lists must be in document order (sorted by start).  Runs the
    counting variant of the stack-tree merge: linear in input size plus
    output count bookkeeping.
    """
    count = 0
    stack: list[Region] = []
    a_index = 0
    for descendant in descendants:
        while a_index < len(ancestors) and (
                ancestors[a_index].start < descendant.start):
            candidate = ancestors[a_index]
            while stack and stack[-1].end < candidate.start:
                stack.pop()
            stack.append(candidate)
            a_index += 1
        while stack and stack[-1].end < descendant.start:
            stack.pop()
        if parent_child:
            count += sum(1 for region in stack
                         if region.end >= descendant.end
                         and region.level + 1 == descendant.level)
        else:
            count += sum(1 for region in stack
                         if region.end >= descendant.end)
    return count


class ScaledEstimator(CardinalityEstimator):
    """What-if wrapper: hypothetically scaled per-tag cardinalities.

    Multiplies a base estimator's per-node candidate counts and
    cardinalities by a per-tag factor (``{"item": 10.0}`` models "ten
    times as many items"); edge results scale by both endpoints'
    factors, which leaves per-edge *selectivities* unchanged — the
    hypothesis grows the data, not the structural correlation.  The
    base estimator is never modified, so a what-if analysis can price
    plans against hypothetical statistics without touching the
    database's statistics epoch (:func:`repro.obs.planspace.run_whatif`).
    """

    def __init__(self, base: CardinalityEstimator,
                 tag_scale: Mapping[str, float]) -> None:
        self._base = base
        self._scale = {tag: float(factor)
                       for tag, factor in tag_scale.items()}
        for tag, factor in self._scale.items():
            if factor < 0:
                raise EstimationError(
                    f"tag scale for {tag!r} must be >= 0, got {factor}")

    def _factor(self, node: PatternNode) -> float:
        if node.tag == WILDCARD:
            return self._scale.get(WILDCARD, 1.0)
        return self._scale.get(node.tag, 1.0)

    def node_candidates(self, node: PatternNode) -> float:
        return self._base.node_candidates(node) * self._factor(node)

    def node_cardinality(self, node: PatternNode) -> float:
        return self._base.node_cardinality(node) * self._factor(node)

    def edge_cardinality(self, pattern: QueryPattern, parent: int,
                         child: int) -> float:
        return (self._base.edge_cardinality(pattern, parent, child)
                * self._factor(pattern.node(parent))
                * self._factor(pattern.node(child)))


class PatternCardinalities:
    """Per-query cache of node and cluster cardinalities.

    Optimizers instantiate one of these per ``optimize()`` call so that
    repeated lookups during plan enumeration hit a dict instead of
    re-deriving histogram math.
    """

    def __init__(self, pattern: QueryPattern,
                 estimator: CardinalityEstimator) -> None:
        self.pattern = pattern
        self.estimator = estimator
        self._node_cache: dict[int, float] = {}
        self._candidates_cache: dict[int, float] = {}
        self._cluster_cache: dict[frozenset[int], float] = {}

    def node(self, node_id: int) -> float:
        cached = self._node_cache.get(node_id)
        if cached is None:
            cached = self.estimator.node_cardinality(
                self.pattern.node(node_id))
            self._node_cache[node_id] = cached
        return cached

    def candidates(self, node_id: int) -> float:
        cached = self._candidates_cache.get(node_id)
        if cached is None:
            cached = self.estimator.node_candidates(
                self.pattern.node(node_id))
            self._candidates_cache[node_id] = cached
        return cached

    def cluster(self, node_ids: frozenset[int]) -> float:
        if len(node_ids) == 1:
            return self.node(next(iter(node_ids)))
        cached = self._cluster_cache.get(node_ids)
        if cached is None:
            cached = self.estimator.cluster_cardinality(
                self.pattern, node_ids)
            self._cluster_cache[node_ids] = cached
        return cached
