"""Positional histograms for structural-join size estimation.

A :class:`PositionalHistogram` for tag ``T`` is a 2-D grid over the
``(start, end)`` plane of the document's position space.  Each element
with region ``(s, e)`` increments the cell containing ``(s, e)``.
Since ``e >= s``, only the upper triangle is populated.  The
ancestor/descendant join size between two tags is estimated by summing,
over all cell pairs, the expected number of (ancestor, descendant)
pairs under a uniform-within-cell assumption — the technique of
"Estimating Answer Sizes for XML Queries" (EDBT 2002), which the paper
uses for all its experiments.

A companion :class:`LevelHistogram` records the distribution of node
depths and is used to refine ancestor/descendant estimates into
parent/child estimates.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import EstimationError
from repro.document.node import Region


def _overlap_uniform_less(a_low: float, a_high: float,
                          b_low: float, b_high: float) -> float:
    """P(X < Y) for X ~ U[a_low, a_high), Y ~ U[b_low, b_high).

    Computed as the average of ``P(X < y) = clamp((y - a_low) /
    a_width)`` over the Y interval.  Zero-width intervals degrade to
    point masses.
    """
    a_width = a_high - a_low
    b_width = b_high - b_low
    if b_width <= 0:
        if a_width <= 0:
            return 1.0 if a_low < b_low else 0.0
        return min(max((b_low - a_low) / a_width, 0.0), 1.0)
    if a_width <= 0:
        return min(max((b_high - a_low) / b_width, 0.0), 1.0)
    total = 0.0
    # segment of Y where P(X < y) ramps linearly: y in [a_low, a_high)
    ramp_low = max(b_low, a_low)
    ramp_high = min(b_high, a_high)
    if ramp_high > ramp_low:
        total += (((ramp_high - a_low) ** 2 - (ramp_low - a_low) ** 2)
                  / (2.0 * a_width))
    # segment of Y entirely above X's support: P(X < y) = 1
    sure_low = max(b_low, a_high)
    if b_high > sure_low:
        total += b_high - sure_low
    return min(max(total / b_width, 0.0), 1.0)


class PositionalHistogram:
    """2-D (start, end) grid histogram of one tag's regions."""

    def __init__(self, position_space: int, grid: int = 16) -> None:
        if position_space < 1:
            raise EstimationError("position space must be >= 1")
        if grid < 1:
            raise EstimationError("grid must be >= 1")
        self.position_space = position_space
        self.grid = min(grid, position_space)
        self._cell_width = position_space / self.grid
        # sparse: (row, col) -> count, row = start bucket, col = end bucket
        self.cells: dict[tuple[int, int], int] = {}
        self.total = 0

    def _bucket(self, position: int) -> int:
        index = int(position / self._cell_width)
        return min(index, self.grid - 1)

    def add(self, region: Region) -> None:
        if region.end >= self.position_space:
            raise EstimationError(
                f"region end {region.end} outside position space "
                f"{self.position_space}")
        key = (self._bucket(region.start), self._bucket(region.end))
        self.cells[key] = self.cells.get(key, 0) + 1
        self.total += 1

    def remove(self, region: Region) -> None:
        """Inverse of :meth:`add` (incremental-maintenance delta).

        The region must have been added to this histogram (or to one
        whose buckets this one subsumes after :meth:`double_space`);
        removing an unseen region is a caller bug and raises.
        """
        if region.end >= self.position_space:
            raise EstimationError(
                f"region end {region.end} outside position space "
                f"{self.position_space}")
        key = (self._bucket(region.start), self._bucket(region.end))
        count = self.cells.get(key, 0)
        if count <= 0:
            raise EstimationError(
                f"cannot remove region {region} from empty cell {key}")
        if count == 1:
            del self.cells[key]
        else:
            self.cells[key] = count - 1
        self.total -= 1

    def add_all(self, regions: Iterable[Region]) -> None:
        for region in regions:
            self.add(region)

    def double_space(self) -> None:
        """Double the position space, merging bucket pairs exactly.

        The new bucket ``k`` covers exactly old buckets ``2k`` and
        ``2k + 1``, so the remap is lossless at histogram resolution —
        this is how incremental ingest extends a tag's statistics when
        appended labels outgrow the original space without a rebuild.
        """
        self.position_space *= 2
        self._cell_width = self.position_space / self.grid
        merged: dict[tuple[int, int], int] = {}
        for (row, col), count in self.cells.items():
            key = (row // 2, col // 2)
            merged[key] = merged.get(key, 0) + count
        self.cells = merged

    def ensure_space(self, position: int) -> None:
        """Grow the space (by doubling) until *position* fits."""
        while position >= self.position_space:
            self.double_space()

    def clone(self) -> "PositionalHistogram":
        copy = PositionalHistogram.__new__(PositionalHistogram)
        copy.position_space = self.position_space
        copy.grid = self.grid
        copy._cell_width = self._cell_width
        copy.cells = dict(self.cells)
        copy.total = self.total
        return copy

    def merge_from(self, other: "PositionalHistogram") -> None:
        """Add *other*'s counts cell-for-cell (shard-statistics merge).

        Both histograms must cover the same position space with the
        same grid — per-shard statistics are built over the *global*
        label space precisely so their buckets line up exactly.
        """
        if (other.position_space != self.position_space
                or other.grid != self.grid):
            raise EstimationError(
                f"cannot merge histograms over different spaces "
                f"({self.position_space}/{self.grid} vs "
                f"{other.position_space}/{other.grid})")
        for key, count in other.cells.items():
            self.cells[key] = self.cells.get(key, 0) + count
        self.total += other.total

    def _cell_bounds(self, bucket: int) -> tuple[float, float]:
        return bucket * self._cell_width, (bucket + 1) * self._cell_width

    def estimate_containment_join(self,
                                  descendants: "PositionalHistogram") -> float:
        """Estimated |{(a, d) : a.start < d.start and d.end <= a.end}|.

        Sums the expected pair count over all (ancestor cell,
        descendant cell) combinations under uniform-within-cell spread.
        """
        if not self.cells or not descendants.cells:
            return 0.0
        expected = 0.0
        for (a_row, a_col), a_count in self.cells.items():
            a_start_low, a_start_high = self._cell_bounds(a_row)
            a_end_low, a_end_high = self._cell_bounds(a_col)
            for (d_row, d_col), d_count in descendants.cells.items():
                d_start_low, d_start_high = descendants._cell_bounds(d_row)
                d_end_low, d_end_high = descendants._cell_bounds(d_col)
                p_start = _overlap_uniform_less(
                    a_start_low, a_start_high, d_start_low, d_start_high)
                if p_start == 0.0:
                    continue
                # d.end <= a.end  ==  not (a.end < d.end)
                p_end = 1.0 - _overlap_uniform_less(
                    a_end_low, a_end_high, d_end_low, d_end_high)
                expected += a_count * d_count * p_start * p_end
        return expected

    def __len__(self) -> int:
        return self.total


class LevelHistogram:
    """Distribution of node depths for one tag."""

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.total = 0

    def add(self, level: int) -> None:
        self.counts[level] = self.counts.get(level, 0) + 1
        self.total += 1

    def remove(self, level: int) -> None:
        """Inverse of :meth:`add` (incremental-maintenance delta)."""
        count = self.counts.get(level, 0)
        if count <= 0:
            raise EstimationError(
                f"cannot remove unseen level {level}")
        if count == 1:
            del self.counts[level]
        else:
            self.counts[level] = count - 1
        self.total -= 1

    def add_all(self, regions: Iterable[Region]) -> None:
        for region in regions:
            self.add(region.level)

    def clone(self) -> "LevelHistogram":
        copy = LevelHistogram()
        copy.counts = dict(self.counts)
        copy.total = self.total
        return copy

    def merge_from(self, other: "LevelHistogram") -> None:
        """Add *other*'s depth counts (shard-statistics merge)."""
        for level, count in other.counts.items():
            self.counts[level] = self.counts.get(level, 0) + count
        self.total += other.total

    def probability(self, level: int) -> float:
        if not self.total:
            return 0.0
        return self.counts.get(level, 0) / self.total

    def parent_child_fraction(self, child: "LevelHistogram") -> float:
        """P(child level == ancestor level + 1 | child deeper).

        Used to scale an ancestor/descendant join estimate down to a
        parent/child estimate: of all depth combinations in which the
        descendant is strictly deeper, what fraction differ by exactly
        one level?
        """
        if not self.total or not child.total:
            return 0.0
        adjacent = 0.0
        deeper = 0.0
        for a_level, a_count in self.counts.items():
            for d_level, d_count in child.counts.items():
                if d_level > a_level:
                    weight = a_count * d_count
                    deeper += weight
                    if d_level == a_level + 1:
                        adjacent += weight
        if deeper == 0.0:
            return 0.0
        return adjacent / deeper
