"""Cardinality estimation for structural joins.

The paper's optimizer obtains intermediate-result size estimates from
*positional histograms* (Wu, Patel, Jagadish — EDBT 2002).  This
package reimplements that technique
(:class:`~repro.estimation.histogram.PositionalHistogram`) and wraps it
in the :class:`~repro.estimation.estimator.CardinalityEstimator`
interface the optimizers consume.  An exact estimator is provided for
calibration and for tests that need ground truth.
"""

from repro.estimation.histogram import PositionalHistogram, LevelHistogram
from repro.estimation.estimator import (CardinalityEstimator,
                                        ExactEstimator,
                                        PositionalEstimator,
                                        TagStatistics)
from repro.estimation.sampling import SamplingEstimator

__all__ = [
    "PositionalHistogram",
    "LevelHistogram",
    "CardinalityEstimator",
    "ExactEstimator",
    "PositionalEstimator",
    "SamplingEstimator",
    "TagStatistics",
]
