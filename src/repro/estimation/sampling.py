"""Sampling-based cardinality estimation.

A third estimator alongside the positional histograms and the exact
calibrator: edge cardinalities are estimated by drawing a systematic
sample of the ancestor candidate list and counting, for each sampled
ancestor, its matching descendants with two binary searches over the
(document-ordered) descendant list.  Extrapolating the per-ancestor
average gives the join size.

Compared to positional histograms this trades statistics-build time
(none) for estimation-time work proportional to the sample size, and
is typically far more accurate on skewed nesting — which makes it the
interesting second axis of the estimation-quality ablation.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import EstimationError
from repro.document.document import XmlDocument
from repro.document.node import NodeRecord, Region
from repro.core.pattern import Axis, PatternNode, QueryPattern
from repro.estimation.estimator import (CardinalityEstimator,
                                        _predicate_selectivity,
                                        build_tag_statistics, WILDCARD)


class SamplingEstimator(CardinalityEstimator):
    """Estimates edge cardinalities from a systematic candidate sample."""

    def __init__(self, document: XmlDocument, sample_size: int = 64) -> None:
        if sample_size < 1:
            raise EstimationError("sample size must be >= 1")
        self._document = document
        self.sample_size = sample_size
        self._stats = build_tag_statistics(document, grid=1)
        self._edge_cache: dict[tuple[PatternNode, PatternNode, Axis],
                               float] = {}

    # -- node-level ---------------------------------------------------------

    def _tag_nodes(self, node: PatternNode) -> list[NodeRecord]:
        if node.is_wildcard:
            return list(self._document.nodes)
        return self._document.nodes_with_tag(node.tag)

    def node_candidates(self, node: PatternNode) -> float:
        entry = self._stats.get(WILDCARD if node.is_wildcard else node.tag)
        return float(entry.count) if entry else 0.0

    def node_cardinality(self, node: PatternNode) -> float:
        candidates = self.node_candidates(node)
        if candidates == 0.0:
            return 0.0
        return candidates * _predicate_selectivity(node, self._stats)

    # -- edge-level ------------------------------------------------------------

    def edge_cardinality(self, pattern: QueryPattern, parent: int,
                         child: int) -> float:
        edge = pattern.edge_between(parent, child)
        if edge is None or (edge.parent, edge.child) != (parent, child):
            raise EstimationError(
                f"({parent}, {child}) is not an edge of the pattern")
        parent_node = pattern.node(parent)
        child_node = pattern.node(child)
        key = (parent_node, child_node, edge.axis)
        cached = self._edge_cache.get(key)
        if cached is not None:
            return cached

        ancestors = self._tag_nodes(parent_node)
        descendants = self._tag_nodes(child_node)
        if not ancestors or not descendants:
            self._edge_cache[key] = 0.0
            return 0.0
        starts = [node.start for node in descendants]
        step = max(len(ancestors) // self.sample_size, 1)
        sample = ancestors[::step]
        matched = 0
        for ancestor in sample:
            matched += self._count_matches(ancestor.region, descendants,
                                           starts, edge.axis)
        estimate = matched / len(sample) * len(ancestors)
        estimate *= _predicate_selectivity(parent_node, self._stats)
        estimate *= _predicate_selectivity(child_node, self._stats)
        self._edge_cache[key] = estimate
        return estimate

    @staticmethod
    def _count_matches(ancestor: Region, descendants: list[NodeRecord],
                       starts: list[int], axis: Axis) -> int:
        """Descendants of *ancestor* in a document-ordered list.

        Containment is a contiguous start-position range, so two
        bisections bound it; parent/child additionally filters on
        level.
        """
        low = bisect_right(starts, ancestor.start)
        high = bisect_right(starts, ancestor.end)
        if axis is Axis.DESCENDANT:
            return high - low
        target_level = ancestor.level + 1
        return sum(1 for node in descendants[low:high]
                   if node.level == target_level)
