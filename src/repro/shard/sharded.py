"""The sharded database facade.

:class:`ShardedDatabase` exposes the same query surface as
:class:`~repro.api.Database` — ``compile`` / ``optimize`` / ``execute``
/ ``query`` / ``query_many`` / ``explain`` / ``stats`` — so the query
service, the CLI and the observability stack work unchanged on top of
a shard fleet.  Construction partitions the corpus
(:mod:`repro.shard.partition`), persists each shard as a durable
single-shard database under its own directory, builds the merged
statistics the coordinator plans against, and starts one worker
process per shard (:mod:`repro.shard.coordinator`).

The execution contract differs from a single node in exactly two
documented ways: result tuples arrive in global document order (sorted
by the merge key — single-node plan output order is plan-dependent),
and cost-model counters are the *sum* of per-shard work (the
replicated root's postings are scanned once per shard, so counters are
diagnostics here, not an engine-parity surface).
"""

from __future__ import annotations

import heapq
import shutil
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable

from repro.errors import ShardError
from repro.api import Database, QueryResult
from repro.core.cost import CostFactors, CostModel
from repro.core.optimizer import OptimizationResult, get_optimizer
from repro.core.pattern import QueryPattern
from repro.core.plans import PhysicalPlan
from repro.document.document import XmlDocument
from repro.document.node import Region
from repro.engine.executor import (ExecutionResult, FirstResultTiming,
                                   StreamingExecution,
                                   measure_time_to_first,
                                   validate_engine)
from repro.engine.metrics import ExecutionMetrics
from repro.engine.tuples import Schema
from repro.estimation.estimator import (CardinalityEstimator,
                                        ExactEstimator,
                                        PositionalEstimator)
from repro.obs.explain import (ExplainReport, OperatorAnalysis,
                               build_analysis)
from repro.obs.spans import (Span, TraceContext, Tracer,
                             assign_span_ids)
from repro.service.service import QueryService
from repro.shard.coordinator import (DEFAULT_TIMEOUT, ShardWorkerPool,
                                     merge_sorted_runs)
from repro.shard.partition import ShardPartition, partition_document
from repro.storage.disk import FileDisk
from repro.xpath.parser import compile_xpath

__all__ = ["ShardedDatabase"]


class ShardedDatabase:
    """N durable shards behind one ``Database``-shaped facade."""

    #: every ``spans=True`` execution records its stitched trace into
    #: :attr:`tracer` directly (the stitch happens here, nowhere else);
    #: layers above (service trace sampling) must not record again.
    records_traces_in_execute = True

    def __init__(self, document: XmlDocument, shards: int = 2,
                 base_dir: "str | Path | None" = None,
                 engine: str = "block",
                 cost_factors: CostFactors | None = None,
                 histogram_grid: int = 16,
                 start_method: str = "spawn",
                 timeout: float = DEFAULT_TIMEOUT,
                 service_options: dict | None = None) -> None:
        if shards < 1:
            raise ShardError(f"shard count must be >= 1, got {shards}")
        self.engine = validate_engine(engine)
        self.shards = shards
        self.name = f"{document.name}-shards{shards}"
        self.cost_factors = cost_factors or CostFactors()
        self.cost_model = CostModel(self.cost_factors)
        self.histogram_grid = histogram_grid
        self.service_options = dict(service_options or {})
        self.tracer = Tracer()
        self._start_method = start_method
        self._timeout = timeout
        self._owns_dir = base_dir is None
        self._base_dir = (Path(tempfile.mkdtemp(prefix="repro-shards-"))
                          if base_dir is None else Path(base_dir))
        self._generation = 0
        #: one statistics epoch per shard, bumped whenever the shard's
        #: data (and thus its catalog/statistics) is rebuilt; the
        #: aggregate — their sum — keys the plan cache, so reloading
        #: any shard invalidates every cached plan.
        self._shard_epochs = [0] * shards
        self._shard_totals = [{"queries": 0, "rows": 0, "seconds": 0.0}
                              for _ in range(shards)]
        self._totals_mutex = threading.Lock()
        self._closed = False
        self.last_shard_profile: list[dict] = []
        self._service: QueryService | None = None
        self._exact_estimator: ExactEstimator | None = None
        self.document = document
        self.partition: ShardPartition
        self.workers: ShardWorkerPool
        self._load(document)

    # -- construction / lifecycle -----------------------------------------

    def _load(self, document: XmlDocument) -> None:
        """Partition, persist shard directories, start the workers."""
        self._generation += 1
        partition = partition_document(document, self.shards)
        generation_dir = self._generation_dir(self._generation)
        paths: list[str] = []
        for shard_id in range(self.shards):
            shard_dir = generation_dir / f"shard-{shard_id:02d}"
            shard_dir.mkdir(parents=True, exist_ok=True)
            pages_path = shard_dir / "pages.db"
            disk = FileDisk(pages_path)
            try:
                shard_database = Database.from_document(
                    partition.shard_document(shard_id), disk=disk)
                shard_database.persist()
            finally:
                disk.close()
            paths.append(str(pages_path))
        self.partition = partition
        self.document = document
        self._region_map: "dict[int, Region] | None" = None
        self._estimator = PositionalEstimator(
            partition.merged_statistics(grid=self.histogram_grid))
        self._exact_estimator = None
        for shard_id in range(self.shards):
            self._shard_epochs[shard_id] += 1
        self.workers = ShardWorkerPool(paths,
                                       start_method=self._start_method,
                                       timeout=self._timeout)

    def _generation_dir(self, generation: int) -> Path:
        return self._base_dir / f"gen{generation:03d}"

    def _regions_by_start(self) -> "dict[int, Region]":
        """Start label → region, over the whole corpus (lazy, cached).

        Workers ship result rows as start-label tuples; this map turns
        them back into region rows without any per-row object traffic
        on the pipes.
        """
        if self._region_map is None:
            self._region_map = {node.region.start: node.region
                                for node in self.document}
        return self._region_map

    def reload(self, document: XmlDocument) -> None:
        """Replace the corpus: re-partition, re-persist, restart workers.

        Every shard's epoch is bumped, so the aggregate
        :attr:`statistics_epoch` changes and no plan cached against
        the old statistics can ever serve the new data.
        """
        self._require_open()
        previous_generation = self._generation
        self.workers.close()
        self._load(document)
        shutil.rmtree(self._generation_dir(previous_generation),
                      ignore_errors=True)
        if self._service is not None:
            self._service.invalidate()

    def close(self) -> None:
        """Stop the worker fleet and drop owned shard directories."""
        if self._closed:
            return
        self._closed = True
        self.workers.close()
        if self._owns_dir:
            shutil.rmtree(self._base_dir, ignore_errors=True)

    def _require_open(self) -> None:
        if self._closed:
            raise ShardError("sharded database is closed")

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- statistics -------------------------------------------------------

    @property
    def statistics_epoch(self) -> int:
        """Aggregate epoch: the sum of all per-shard epochs."""
        return sum(self._shard_epochs)

    def shard_epochs(self) -> list[int]:
        return list(self._shard_epochs)

    @property
    def estimator(self) -> CardinalityEstimator:
        """The merged-statistics estimator the coordinator plans with."""
        return self._estimator

    @property
    def exact_estimator(self) -> ExactEstimator:
        if self._exact_estimator is None:
            self._exact_estimator = ExactEstimator(self.document)
        return self._exact_estimator

    def warm_statistics(self, query: "str | QueryPattern") -> None:
        """Precompute the merged-statistics estimates a pattern needs."""
        pattern = self.compile(query)
        for node in pattern.nodes:
            self._estimator.node_cardinality(node)
        for edge in pattern.edges:
            self._estimator.edge_cardinality(pattern, edge.parent,
                                             edge.child)

    # -- optimization & execution -----------------------------------------

    def compile(self, query: "str | QueryPattern") -> QueryPattern:
        if isinstance(query, QueryPattern):
            return query
        return compile_xpath(query)

    def optimize(self, query: "str | QueryPattern",
                 algorithm: str = "DPP", exact: bool = False,
                 **options: object) -> OptimizationResult:
        """Plan **once**, against the merged statistics.

        The chosen plan is fanned out verbatim to every shard: shards
        share the global label space, so one plan is valid everywhere
        and per-shard optimization would only diverge the fleet.
        """
        pattern = self.compile(query)
        optimizer = get_optimizer(algorithm, cost_model=self.cost_model,
                                  **options)
        estimator = (self.exact_estimator if exact
                     else self._estimator)
        return optimizer.optimize(pattern, estimator)

    def execute(self, plan: PhysicalPlan, pattern: QueryPattern,
                engine: str | None = None, spans: bool = False,
                algorithm: str = "",
                trace_context: TraceContext | None = None
                ) -> ExecutionResult:
        """Scatter *plan* to every shard, gather, k-way merge.

        Returns the merged result in global document order (see the
        module docstring for the two contract differences from a
        single node).  With ``spans=True`` the execution runs as one
        distributed trace: a :class:`TraceContext` (fresh, or the
        caller's *trace_context*) rides with the plan to every worker,
        each worker ships its span subtree back serialized, and the
        subtrees are stitched under coordinator-side
        scatter/gather/merge spans into a single trace recorded in
        :attr:`tracer`.  The stitched tree's cost-counter shares sum
        *exactly* to the merged ``ExecutionMetrics`` — counters cross
        the pipe as ints, never re-measured.
        """
        self._require_open()
        engine = validate_engine(engine or self.engine)
        trace: TraceContext | None = None
        if spans:
            trace = trace_context or TraceContext.new()
        started = time.perf_counter()
        payloads, node_ids, metrics = self._gather(plan, pattern,
                                                   engine, trace)
        # workers ship merge keys (start-label tuples); rebuild region
        # rows from the coordinator's own copy of the document
        merge_started = time.perf_counter()
        regions = self._regions_by_start()
        tuples = [tuple(regions[start] for start in key)
                  for key in merge_sorted_runs(
                      [payload["rows"] for payload in payloads])]
        merge_seconds = time.perf_counter() - merge_started
        metrics.wall_seconds = time.perf_counter() - started
        span: Span | None = None
        if spans:
            assert trace is not None
            span = self._stitch_trace(trace, payloads, metrics,
                                      len(tuples), merge_seconds)
            self.tracer.record(span)
        return ExecutionResult(tuples=tuples, schema=Schema(node_ids),
                               metrics=metrics, span=span)

    def _gather(self, plan: PhysicalPlan, pattern: QueryPattern,
                engine: str, trace: TraceContext | None
                ) -> "tuple[list[dict], list[int], ExecutionMetrics]":
        """Scatter *plan*, gather payloads, sum counters, book totals.

        Shared by :meth:`execute` and :meth:`stream_execute`; the
        returned metrics carry the summed per-shard counters but no
        ``wall_seconds`` — the caller owns end-to-end timing (the
        streamed path keeps the clock running through the merge).
        """
        payloads = self.workers.scatter_gather(
            plan, pattern, engine, want_span=trace is not None,
            trace_context=trace.to_dict() if trace is not None
            else None)
        node_ids = payloads[0]["node_ids"]
        for payload in payloads[1:]:
            if payload["node_ids"] != node_ids:
                raise ShardError(
                    f"shards disagree on the output schema: "
                    f"{node_ids} vs {payload['node_ids']}")
        metrics = ExecutionMetrics(factors=self.cost_factors)
        for payload in payloads:
            for name, value in payload["counters"].items():
                setattr(metrics, name, getattr(metrics, name) + value)
            metrics.page_reads += payload["page_reads"]
            metrics.buffer_hits += payload["buffer_hits"]
            metrics.buffer_misses += payload["buffer_misses"]
        with self._totals_mutex:
            for payload in payloads:
                totals = self._shard_totals[payload["shard_id"]]
                totals["queries"] += 1
                totals["rows"] += len(payload["rows"])
                totals["seconds"] += payload["wall_seconds"]
            # per-shard profile of this execution (bench/diagnostics):
            # wall inflates under core contention, CPU time does not
            self.last_shard_profile = [
                {"shard_id": payload["shard_id"],
                 "wall_seconds": payload["wall_seconds"],
                 "cpu_seconds": payload.get("cpu_seconds", 0.0),
                 "rows": len(payload["rows"])}
                for payload in payloads]
        return payloads, node_ids, metrics

    def stream_execute(self, plan: PhysicalPlan, pattern: QueryPattern,
                       engine: str | None = None,
                       cancel: "Callable[[], bool] | None" = None,
                       spans: bool = False,
                       trace_context: TraceContext | None = None,
                       ) -> StreamingExecution:
        """Scatter-gather, then stream rows out of the k-way merge.

        Shards execute their plans to completion before shipping rows
        (the pipe protocol is one payload per shard), so what streams
        is the coordinator-side merge: the first row leaves as soon as
        every shard has answered and the heads of the sorted runs have
        been compared — not after the whole merge has materialized.
        That is exactly the latency :meth:`time_to_first` reports as
        "honest" TTFR under scatter-gather.  *cancel* is checked per
        merged row; traced streams stitch and record their distributed
        trace when the stream finishes.
        """
        self._require_open()
        engine = validate_engine(engine or self.engine)
        trace: TraceContext | None = None
        if spans or trace_context is not None:
            trace = trace_context or TraceContext.new()
        started = time.perf_counter()
        payloads, node_ids, metrics = self._gather(plan, pattern,
                                                   engine, trace)
        merge_started = time.perf_counter()

        def merged_rows():
            # the lazy twin of merge_sorted_runs: same adjacent-dedup
            # contract, but rows leave as the heads compare instead of
            # after the whole merge materializes
            regions = self._regions_by_start()
            previous = None
            for key in heapq.merge(
                    *[payload["rows"] for payload in payloads]):
                if key == previous:
                    continue
                previous = key
                yield tuple(regions[start] for start in key)

        def finish(stream: StreamingExecution) -> None:
            metrics.wall_seconds = stream.total_seconds
            if trace is not None:
                span = self._stitch_trace(
                    trace, payloads, metrics, stream.produced,
                    time.perf_counter() - merge_started)
                stream.span = span
                self.tracer.record(span)

        return StreamingExecution(Schema(node_ids), metrics,
                                  merged_rows(), cancel=cancel,
                                  started=started, on_finish=finish)

    def time_to_first(self, query: "str | QueryPattern",
                      algorithm: str = "FP", results: int = 1,
                      **options: object) -> FirstResultTiming:
        """Optimize, then measure latency to the first *results* rows.

        Matches :meth:`repro.api.Database.time_to_first` but stays
        honest under scatter-gather: the clock starts before the
        scatter, and ``first_seconds`` is when the *results*-th row
        left the k-way merge — shard execution and gather are on the
        bill, and a fast first shard cannot mask a straggler because
        the merge needs every run's head before it can emit.
        """
        pattern = self.compile(query)
        optimization = self.optimize(pattern, algorithm=algorithm,
                                     **options)
        stream = self.stream_execute(optimization.plan, pattern)
        return measure_time_to_first(stream, results=results)

    def _stitch_trace(self, trace: TraceContext, payloads: list[dict],
                      metrics: ExecutionMetrics, merged_rows: int,
                      merge_seconds: float) -> Span:
        """Assemble one distributed trace from the shard payloads.

        Structure: ``ShardScatterGather`` → [``scatter``, ``gather`` →
        one ``shard[i]`` wrapper per worker → that worker's rebuilt
        subtree, ``merge``].  Coordinator spans are stamped under the
        ``c`` prefix *before* the worker subtrees (already stamped
        ``s<shard>-…`` worker-side) are attached, then each subtree
        root is re-parented under its wrapper — so span ids are unique
        across the whole trace and parentage is well-formed without
        ever re-stamping worker spans.  Coordinator spans carry no
        metrics, so the trace's counter shares are exactly the worker
        shares, which sum to the merged totals by construction.
        """
        phases = dict(getattr(self.workers, "last_phase_seconds", {}))
        root = Span("ShardScatterGather",
                    detail=f"scatter-gather[{self.shards} shards]")
        root.seconds = metrics.wall_seconds
        root.output_rows = merged_rows
        scatter = Span("ShardScatter", detail="scatter")
        scatter.seconds = phases.get("scatter", 0.0)
        gather = Span("ShardGather", detail="gather")
        gather.seconds = phases.get("gather", 0.0)
        merge = Span("ShardMerge", detail="merge")
        merge.seconds = merge_seconds
        merge.output_rows = merged_rows
        subtrees: list[tuple[Span, Span]] = []
        for payload in payloads:
            wrapper = Span("Shard",
                           detail=f"shard[{payload['shard_id']}]")
            wrapper.seconds = payload["wall_seconds"]
            wrapper.output_rows = len(payload["rows"])
            gather.children.append(wrapper)
            if payload["span"] is not None:
                subtrees.append((wrapper,
                                 Span.from_dict(payload["span"])))
        root.children = [scatter, gather, merge]
        assign_span_ids(root, trace.trace_id, trace.parent_span_id,
                        prefix="c")
        for wrapper, subtree in subtrees:
            subtree.parent_span_id = wrapper.span_id
            wrapper.children = [subtree]
        return root

    def query(self, query: "str | QueryPattern",
              algorithm: str = "DPP", engine: str | None = None,
              **options: object) -> QueryResult:
        """Optimize once, then scatter-gather execute."""
        pattern = self.compile(query)
        optimization = self.optimize(pattern, algorithm=algorithm,
                                     **options)
        execution = self.execute(optimization.plan, pattern,
                                 engine=engine, algorithm=algorithm)
        return QueryResult(optimization=optimization,
                           execution=execution)

    def query_many(self, queries, algorithm: str = "DPP",
                   workers: int | None = None,
                   engine: str | None = None,
                   **options: object) -> list[QueryResult]:
        return self.service.query_many(queries, algorithm=algorithm,
                                       workers=workers, engine=engine,
                                       **options)

    def whatif(self, query: "str | QueryPattern",
               algorithm: str = "DPP", factors=None,
               tag_scale: "dict[str, float] | None" = None,
               exact: bool = False, force_plan: str | None = None):
        """What-if analysis against the merged statistics (plan-once
        semantics); see :meth:`repro.api.Database.whatif`."""
        from repro.obs.planspace import run_whatif

        return run_whatif(self, query, algorithm=algorithm,
                          factors=factors, tag_scale=tag_scale,
                          exact=exact, force_plan=force_plan)

    def explain(self, query: "str | QueryPattern",
                algorithm: str = "DPP", analyze: bool = False,
                engine: str | None = None,
                plan_space: bool = False, top_k: int = 3,
                **options: object) -> ExplainReport:
        """EXPLAIN (ANALYZE) with a scatter-gather root.

        The analyzed tree has a synthetic ``ShardScatterGather`` root
        whose children are one fully annotated per-shard plan analysis
        each — estimate-vs-actual drift is visible *per shard*, which
        is exactly where partition skew shows up.  The report also
        carries the merged statistics' *provenance* — which shard
        contributed which share of each pattern tag's histogram mass —
        so a skewed estimate can be traced to the shard that supplied
        the mass behind it.
        """
        engine = validate_engine(engine or self.engine)
        started = time.perf_counter()
        pattern = self.compile(query)
        parse_seconds = time.perf_counter() - started
        label = query if isinstance(query, str) else repr(pattern)
        recorder = None
        if plan_space:
            from repro.core.planspace import PlanSpaceRecorder

            recorder = PlanSpaceRecorder()
            options = dict(options)
            options["planspace"] = recorder
        optimization = self.optimize(pattern, algorithm=algorithm,
                                     **options)
        report = ExplainReport(query=label, algorithm=algorithm,
                               engine=engine, optimization=optimization,
                               parse_seconds=parse_seconds)
        report.shards = {
            "count": self.shards,
            "statistics_provenance": self.partition.
            statistics_provenance(
                tags=[node.tag for node in pattern.nodes],
                grid=self.histogram_grid),
        }
        if not analyze:
            Database._attach_plan_space(report, recorder, label, top_k)
            return report
        execution = self.execute(optimization.plan, pattern,
                                 engine=engine, spans=True)
        assert execution.span is not None
        plan = optimization.plan
        shard_analyses: list[OperatorAnalysis] = []
        for wrapper in self._shard_wrappers(execution.span):
            children = [build_analysis(plan, child, pattern)
                        for child in wrapper.children]
            shard_analyses.append(OperatorAnalysis(
                label=wrapper.detail,
                estimated_rows=plan.estimated_cardinality,
                actual_rows=wrapper.output_rows,
                estimated_cost=plan.estimated_cost,
                actual_cost=sum(child.actual_cost
                                for child in children),
                seconds=wrapper.seconds,
                self_seconds=0.0, simulated_cost=0.0, counters={},
                children=children))
        report.analyze = True
        report.execution = execution
        report.root = OperatorAnalysis(
            label=f"ShardScatterGather[{self.shards}]",
            estimated_rows=plan.estimated_cardinality,
            actual_rows=len(execution),
            estimated_cost=plan.estimated_cost,
            actual_cost=sum(analysis.actual_cost
                            for analysis in shard_analyses),
            seconds=execution.span.seconds,
            self_seconds=execution.span.exclusive_seconds(),
            simulated_cost=0.0, counters={},
            children=shard_analyses)
        report.span = execution.span
        Database._attach_plan_space(report, recorder, label, top_k)
        return report

    @staticmethod
    def _shard_wrappers(span: Span) -> list[Span]:
        """The per-shard wrapper spans of one stitched trace."""
        for child in span.children:
            if child.name == "ShardGather":
                return list(child.children)
        return [child for child in span.children
                if child.name == "Shard"]

    # -- serving & observability ------------------------------------------

    @property
    def service(self) -> QueryService:
        """A plan-caching query service over the shard fleet.

        The facade satisfies the service's database contract, so plan
        caching (keyed on the aggregate statistics epoch), latency
        percentiles and aggregate engine counters come for free.
        """
        if self._service is None:
            self._service = QueryService(self, **self.service_options)
        return self._service

    def stats(self) -> dict[str, object]:
        """Service snapshot plus the shard fleet's own statistics.

        ``statistics_epoch`` is the aggregate plan-cache epoch and
        ``shards.epochs`` the per-shard epochs it sums — after any
        shard reload the aggregate moves, which is what keeps cached
        plans from outliving the statistics they were costed with.
        """
        snapshot = self.service.snapshot()
        snapshot["statistics_epoch"] = self.statistics_epoch
        with self._totals_mutex:
            totals = [dict(entry) for entry in self._shard_totals]
        snapshot["shards"] = {
            "count": self.shards,
            "epochs": self.shard_epochs(),
            "nodes": [assignment.node_count
                      for assignment in self.partition.assignments],
            "label_ranges": [[assignment.label_lo, assignment.label_hi]
                             for assignment in
                             self.partition.assignments],
            "alive": ([] if self.workers.closed
                      else self.workers.alive()),
            "totals": totals,
        }
        return snapshot

    def collect_gauges(self, registry) -> None:
        """Per-shard gauges for the service's metrics registry.

        Called by :meth:`QueryService._collect` before every export,
        so scrapes always see current per-shard ownership, liveness
        and cumulative work.
        """
        nodes = registry.gauge("repro_shard_nodes",
                               "Nodes owned per shard")
        queries = registry.gauge("repro_shard_queries_total",
                                 "Queries executed per shard")
        rows = registry.gauge("repro_shard_rows_total",
                              "Result rows produced per shard")
        seconds = registry.gauge("repro_shard_seconds_total",
                                 "Execution wall seconds per shard")
        alive_gauge = registry.gauge("repro_shard_alive",
                                     "Worker liveness per shard (0/1)")
        alive = ([False] * self.shards if self.workers.closed
                 else self.workers.alive())
        with self._totals_mutex:
            totals = [dict(entry) for entry in self._shard_totals]
        for assignment, worker_alive, entry in zip(
                self.partition.assignments, alive, totals):
            shard = str(assignment.shard_id)
            nodes.set(assignment.node_count, shard=shard)
            queries.set(entry["queries"], shard=shard)
            rows.set(entry["rows"], shard=shard)
            seconds.set(entry["seconds"], shard=shard)
            alive_gauge.set(1 if worker_alive else 0, shard=shard)
