"""Sharded scatter-gather execution.

The paper's experiments are single-node; this package is the scale-out
layer on top of them.  A corpus is partitioned across N shards by
region-label ranges so that every structural join is shard-local
(:mod:`repro.shard.partition`), each shard is a full durable
:class:`~repro.api.Database` served by its own worker process
(:mod:`repro.shard.worker`), a coordinator plans once against merged
statistics and fans the identical plan out to every shard
(:mod:`repro.shard.coordinator`), and the per-shard result streams are
merged back into document order (:class:`repro.shard.sharded.ShardedDatabase`).
"""

from repro.shard.partition import ShardAssignment, ShardPartition, \
    partition_document
from repro.shard.coordinator import ShardWorkerPool
from repro.shard.sharded import ShardedDatabase

__all__ = ["ShardAssignment", "ShardPartition", "partition_document",
           "ShardWorkerPool", "ShardedDatabase"]
