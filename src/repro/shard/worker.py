"""Shard worker process: one durable shard database, one request loop.

Workers are real processes (``multiprocessing``), not threads — the
GIL caps the thread-pooled :class:`~repro.service.service.QueryService`
at one core of join work, while N shard workers join in parallel.
:func:`worker_main` is a module-level function with picklable
arguments, so it is spawn-start-method safe.

Each worker reopens its shard's ``pages.db`` **read-only in effect**:
queries never dirty pages, so any number of workers can share one
persisted shard directory.  The protocol over the pipe is a tagged
tuple per message:

* ``("query", plan, pattern, engine, want_span, trace_context)`` →
  ``("ok", payload)`` with the shard's rows sorted by their
  document-order merge key, or ``("error", type_name, message)``.
  Rows ship *as* their merge keys — plain tuples of start labels —
  not as region tuples: the coordinator owns the full document and
  rebuilds each region by start label locally, and pickling flat int
  tuples through the pipe is several times cheaper than pickling
  region dataclasses (result shipping is the dominant scatter-gather
  overhead).  ``trace_context`` is ``None`` or a
  :class:`~repro.obs.spans.TraceContext` dict; when present and
  sampled, the worker runs the query under its own
  :class:`~repro.obs.spans.Tracer`, stamps its span subtree with the
  coordinator's trace id under a per-shard span-id prefix, and ships
  the subtree back serialized (``span.to_dict()`` — counters ride as
  exact ints, never as live metric objects) for the coordinator to
  stitch.
* ``("ping",)`` → ``("pong", shard_id)``
* ``("stop",)`` → ``("bye",)`` and a clean exit
* ``("exit",)`` → ``os._exit(1)``, no reply — a crash hook for the
  coordinator fault tests
"""

from __future__ import annotations

import os
import time

from repro.engine.tuples import MatchTuple

__all__ = ["worker_main", "merge_key"]


def merge_key(row: MatchTuple) -> tuple[int, ...]:
    """Document-order merge key of one match tuple.

    The tuple of region start labels in schema order.  Start labels
    are global and unique per node, so distinct bindings always have
    distinct keys and the coordinator's k-way merge interleaves shard
    streams into one total document order.
    """
    return tuple(region.start for region in row)


def worker_main(shard_id: int, pages_path: str, conn) -> None:
    """Entry point of one shard worker process."""
    # imports deferred below the module guard keep spawn startup lean
    from repro.api import Database
    from repro.obs.spans import TraceContext, Tracer, assign_span_ids
    from repro.storage.disk import FileDisk

    try:
        database = Database.open(FileDisk(pages_path))
    except BaseException as error:  # noqa: BLE001 - report and die
        _send_error(conn, error)
        conn.close()
        return
    # the worker's own trace ring: every sampled query this worker
    # serves is retained locally (diagnosable in-process) in addition
    # to the subtree shipped back for coordinator-side stitching
    tracer = Tracer()
    conn.send(("ready", shard_id, len(database.document or ())))
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break  # coordinator went away
        kind = request[0]
        if kind == "stop":
            conn.send(("bye",))
            break
        if kind == "ping":
            conn.send(("pong", shard_id))
            continue
        if kind == "exit":
            os._exit(1)
        if kind != "query":
            conn.send(("error", "ShardError",
                       f"unknown request {request[0]!r}"))
            continue
        _, plan, pattern, engine, want_span, context = request
        trace = (TraceContext.from_dict(context)
                 if context is not None else None)
        sampled = want_span or (trace is not None and trace.sampled)
        cpu_started = time.process_time()
        try:
            result = database.execute(plan, pattern, engine=engine,
                                      spans=sampled)
        except BaseException as error:  # noqa: BLE001 - stay serving
            _send_error(conn, error)
            continue
        # CPU time alongside wall time: when workers outnumber cores
        # they time-slice, wall inflates with contention, and CPU time
        # is what a worker would take with a core of its own
        cpu_seconds = time.process_time() - cpu_started
        span_payload = None
        if result.span is not None:
            # stamp under a per-shard prefix so span ids stay unique
            # across the stitched trace; the coordinator re-parents
            # the subtree root under its shard wrapper span
            assign_span_ids(
                result.span,
                trace.trace_id if trace is not None else "",
                trace.parent_span_id if trace is not None else "",
                prefix=f"s{shard_id}-")
            tracer.record(result.span)
            span_payload = result.span.to_dict()
        rows = sorted(merge_key(row) for row in result.tuples)
        conn.send(("ok", {
            "shard_id": shard_id,
            "rows": rows,
            "node_ids": result.schema.node_ids,
            "counters": result.metrics.counters(),
            "page_reads": result.metrics.page_reads,
            "buffer_hits": result.metrics.buffer_hits,
            "buffer_misses": result.metrics.buffer_misses,
            "wall_seconds": result.metrics.wall_seconds,
            "cpu_seconds": cpu_seconds,
            "span": span_payload,
        }))
    conn.close()


def _send_error(conn, error: BaseException) -> None:
    try:
        conn.send(("error", type(error).__name__, str(error)))
    except (OSError, ValueError):  # pragma: no cover - pipe gone
        pass
