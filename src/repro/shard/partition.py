"""Subtree partitioning by region-label ranges.

The partitioning invariant that makes scatter-gather execution sound:
**no structural relationship ever crosses a shard boundary**.  Region
encodings give it almost for free — an ancestor's region strictly
contains every descendant's region, so cutting the corpus into whole
subtrees of the root's children means any (ancestor, descendant) pair
is either (a) inside one assigned subtree, hence in one shard, or
(b) anchored at the document root, which is *replicated* into every
shard.  Every shard therefore computes its structural joins entirely
locally against its own index, with the original (global) region
labels preserved, and shard results are disjoint except for bindings
that touch only the root.

Each shard receives a contiguous run of the root's child subtrees in
document order, so a shard owns one closed label range
``[label_lo, label_hi]`` and merged shard outputs interleave back into
document order with a k-way merge.  Assignment is greedy: subtrees are
dealt to the current shard until it reaches its fair share of the
remaining node count.  Shards past the last subtree stay empty —
legal, and exercised by the differential oracle's edge cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShardError
from repro.document.document import XmlDocument
from repro.document.node import NodeRecord
from repro.estimation.estimator import (TagStatistics,
                                        build_tag_statistics,
                                        merge_tag_statistics)

__all__ = ["ShardAssignment", "ShardPartition", "partition_document"]


@dataclass(frozen=True)
class ShardAssignment:
    """One shard's slice of the corpus.

    ``subtree_roots`` are the node ids (== start labels) of the root
    children whose whole subtrees this shard owns, in document order;
    ``label_lo``/``label_hi`` is the closed region-label range they
    cover (``-1``/``-1`` for an empty shard).  ``node_count`` excludes
    the replicated document root.
    """

    shard_id: int
    subtree_roots: tuple[int, ...]
    label_lo: int
    label_hi: int
    node_count: int

    @property
    def is_empty(self) -> bool:
        return not self.subtree_roots


class ShardPartition:
    """A full partitioning of one document across N shards."""

    def __init__(self, document: XmlDocument,
                 assignments: list[ShardAssignment]) -> None:
        self.document = document
        self.assignments = list(assignments)

    @property
    def shards(self) -> int:
        return len(self.assignments)

    def shard_nodes(self, shard_id: int) -> list[NodeRecord]:
        """The shard's own nodes (document order, root excluded)."""
        assignment = self.assignments[shard_id]
        nodes: list[NodeRecord] = []
        for root_id in assignment.subtree_roots:
            nodes.extend(self.document.subtree(
                self.document.node(root_id)))
        return nodes

    def shard_document(self, shard_id: int) -> XmlDocument:
        """The shard's corpus as a standalone document.

        The document root is replicated in front of the assigned
        subtrees and every node keeps its **original** region label,
        so per-shard plans see globally meaningful positions and the
        coordinator can merge shard outputs by label alone.
        """
        nodes = [self.document.root]
        nodes.extend(self.shard_nodes(shard_id))
        return XmlDocument(
            nodes, name=f"{self.document.name}-shard{shard_id}")

    def shard_of(self, node_id: int) -> int:
        """The shard owning *node_id* (the root lives in every shard)."""
        if node_id == self.document.root.node_id:
            raise ShardError(
                "the document root is replicated into every shard")
        for assignment in self.assignments:
            if assignment.label_lo <= node_id <= assignment.label_hi:
                return assignment.shard_id
        raise ShardError(f"node {node_id} is outside every shard range")

    # -- statistics ------------------------------------------------------

    def shard_statistics(self, shard_id: int,
                         grid: int = 16) -> dict[str, TagStatistics]:
        """Statistics over the shard's own nodes, in the *global*
        position space — buckets align across shards, so
        :func:`merged_statistics` can add them cell-for-cell."""
        return build_tag_statistics(
            self.document, grid=grid, nodes=self.shard_nodes(shard_id),
            space=self.document.root.end + 1)

    def merged_statistics(self, grid: int = 16) -> dict[str, TagStatistics]:
        """Global statistics assembled from the per-shard catalogs.

        The replicated root is contributed exactly once, so merged
        node counts and histograms equal a direct whole-document scan;
        only distinct-value counts differ (summed per shard under a
        disjoint-values assumption, see
        :meth:`~repro.estimation.estimator.TagStatistics.merge`).
        """
        space = self.document.root.end + 1
        parts = [self.shard_statistics(shard_id, grid=grid)
                 for shard_id in range(self.shards)]
        parts.append(build_tag_statistics(
            self.document, grid=grid, nodes=[self.document.root],
            space=space))
        return merge_tag_statistics(parts)

    def statistics_provenance(self, tags: "list[str] | None" = None,
                              grid: int = 16
                              ) -> dict[str, list[dict]]:
        """Which shard contributed which histogram mass, per tag.

        For every tag (or just *tags*): one entry per contributing
        shard with its node ``count`` and its ``fraction`` of the
        merged total — the decomposition of
        :meth:`merged_statistics`' cell-for-cell sums back into shard
        shares.  The replicated document root's single extra
        contribution is coordinator-side and excluded here, so
        fractions describe only shard-owned mass.
        """
        wanted = None if tags is None else set(tags)
        provenance: dict[str, list[dict]] = {}
        for shard_id in range(self.shards):
            for tag, stats in self.shard_statistics(
                    shard_id, grid=grid).items():
                if wanted is not None and tag not in wanted:
                    continue
                if stats.count <= 0:
                    continue
                provenance.setdefault(tag, []).append(
                    {"shard_id": shard_id, "count": stats.count})
        for contributions in provenance.values():
            total = sum(entry["count"] for entry in contributions)
            for entry in contributions:
                entry["fraction"] = (entry["count"] / total
                                     if total else 0.0)
        return provenance


def partition_document(document: XmlDocument,
                       shards: int) -> ShardPartition:
    """Split *document* into *shards* label ranges of whole subtrees.

    Greedy contiguous assignment: walking the root's children in
    document order, each shard takes subtrees until it holds its fair
    share — the remaining node count divided by the remaining shard
    count.  Contiguity keeps each shard a single closed label range;
    a subtree larger than the fair share simply overfills its shard
    (subtrees are never split, that is the whole invariant).
    """
    if shards < 1:
        raise ShardError(f"shard count must be >= 1, got {shards}")
    children = document.children(document.root)
    # gap-free labels (every freshly parsed document) make subtree
    # sizing O(1); label gaps from the write path fall back to counting
    dense = (len(document)
             == document.root.end - document.root.start + 1)
    sizes = [child.region.subtree_size if dense
             else sum(1 for _ in document.subtree(child))
             for child in children]
    assignments: list[ShardAssignment] = []
    index = 0
    remaining = sum(sizes)
    for shard_id in range(shards):
        target = remaining / (shards - shard_id)
        taken: list[NodeRecord] = []
        count = 0
        while index < len(children) and (count < target or not taken):
            # leave at least one subtree per still-unfilled shard when
            # there are enough to go around
            left_over = len(children) - index
            if taken and left_over <= (shards - shard_id - 1):
                break
            taken.append(children[index])
            count += sizes[index]
            index += 1
        remaining -= count
        assignments.append(ShardAssignment(
            shard_id=shard_id,
            subtree_roots=tuple(child.node_id for child in taken),
            label_lo=taken[0].start if taken else -1,
            label_hi=taken[-1].end if taken else -1,
            node_count=count))
    if index < len(children):  # pragma: no cover - defensive
        raise ShardError("partitioner failed to place every subtree")
    return ShardPartition(document, assignments)


def structural_pairs_local(partition: ShardPartition) -> bool:
    """Verify the partitioning invariant (test helper, O(n^2) worst).

    True iff every (ancestor, descendant) pair not involving the root
    lives in one shard.
    """
    document = partition.document
    root_id = document.root.node_id
    for node in document:
        if node.node_id == root_id:
            continue
        shard = partition.shard_of(node.node_id)
        for descendant in document.descendants(node):
            if partition.shard_of(descendant.node_id) != shard:
                return False
    return True
