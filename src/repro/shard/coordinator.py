"""Worker-pool coordinator: plan once, fan out, gather, merge.

:class:`ShardWorkerPool` owns one process per shard.  The pool's only
query entry point, :meth:`ShardWorkerPool.scatter_gather`, sends the
*same* physical plan to every worker and collects one reply per shard
— the plan-once/fan-out protocol: because shards share the global
label space and statistics were merged before planning, the
coordinator's single optimized plan is valid verbatim on every shard.

Failure semantics: a worker that dies (crash, kill, broken pipe) or
stops responding surfaces as a typed
:class:`~repro.errors.ShardError` and the pool tears itself down —
terminating and joining every remaining worker — before re-raising,
so callers never hang on a half-dead pool and never leak processes.
A worker-side *query* error (the worker stays alive) is re-raised
under its original :mod:`repro.errors` type when possible after all
shard replies are drained, keeping the pipes in lockstep.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import threading
import time

from repro import errors
from repro.errors import ReproError, ShardError
from repro.shard.worker import worker_main

__all__ = ["ShardWorkerPool", "merge_sorted_runs"]

#: seconds a gather waits for one shard reply before declaring the
#: worker unresponsive (generous: workers answer in milliseconds).
DEFAULT_TIMEOUT = 60.0


def merge_sorted_runs(
        runs: list[list[tuple[int, ...]]]) -> list[tuple[int, ...]]:
    """Document-order-preserving k-way merge of shard result streams.

    Each run is a sorted list of merge keys (start-label tuples, see
    :func:`~repro.shard.worker.merge_key`); the merged stream is
    globally sorted.  Adjacent equal rows are collapsed: the only
    duplicates shards can produce are bindings touching *only* the
    replicated document root (every other binding involves a node
    owned by exactly one shard), and identical rows have identical
    keys, so they emerge adjacent.
    """
    merged: list[tuple[int, ...]] = []
    previous: tuple[int, ...] | None = None
    for row in heapq.merge(*runs):
        if row != previous:
            merged.append(row)
            previous = row
    return merged


class ShardWorkerPool:
    """One coordinator-side handle per shard worker process."""

    def __init__(self, pages_paths: list[str],
                 start_method: str = "spawn",
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        if not pages_paths:
            raise ShardError("a worker pool needs at least one shard")
        self.timeout = timeout
        self._mutex = threading.Lock()
        self._closed = False
        #: scatter/gather wall seconds of the most recent
        #: :meth:`scatter_gather` call (coordinator-side span timing)
        self.last_phase_seconds: dict[str, float] = {}
        context = mp.get_context(start_method)
        self._processes: list = []
        self._connections: list = []
        try:
            for shard_id, path in enumerate(pages_paths):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=worker_main,
                    args=(shard_id, str(path), child_end),
                    name=f"repro-shard-{shard_id}", daemon=True)
                process.start()
                child_end.close()
                self._processes.append(process)
                self._connections.append(parent_end)
            for shard_id in range(len(pages_paths)):
                reply = self._recv(shard_id)
                if reply[0] != "ready":
                    raise ShardError(
                        f"shard {shard_id} failed to start: {reply!r}")
        except BaseException:
            self.close()
            raise

    @property
    def shards(self) -> int:
        return len(self._processes)

    @property
    def closed(self) -> bool:
        return self._closed

    def alive(self) -> list[bool]:
        return [process.is_alive() for process in self._processes]

    # -- protocol ---------------------------------------------------------

    def _send(self, shard_id: int, message: tuple) -> None:
        try:
            self._connections[shard_id].send(message)
        except (OSError, ValueError, BrokenPipeError) as error:
            raise ShardError(
                f"shard worker {shard_id} is gone: {error}") from error

    def _recv(self, shard_id: int) -> tuple:
        """One reply from a shard, or :class:`ShardError` on death.

        Polls the pipe so a dead worker is detected promptly instead
        of blocking forever on a ``recv`` that can never complete.
        """
        connection = self._connections[shard_id]
        process = self._processes[shard_id]
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                if connection.poll(0.05):
                    return connection.recv()
            except (EOFError, OSError) as error:
                raise ShardError(
                    f"shard worker {shard_id} closed its pipe "
                    f"(exit code {process.exitcode})") from error
            if not process.is_alive():
                # drain a reply the worker managed to send before dying
                try:
                    if connection.poll(0):
                        return connection.recv()
                except (EOFError, OSError):
                    pass
                raise ShardError(
                    f"shard worker {shard_id} died mid-query "
                    f"(exit code {process.exitcode})")
            if time.monotonic() > deadline:
                raise ShardError(
                    f"shard worker {shard_id} unresponsive after "
                    f"{self.timeout:.0f}s")

    @staticmethod
    def _raise_worker_error(shard_id: int, type_name: str,
                            message: str) -> None:
        """Re-raise a worker-reported error under its original type."""
        error_type = getattr(errors, type_name, None)
        if (isinstance(error_type, type)
                and issubclass(error_type, ReproError)):
            raise error_type(f"[shard {shard_id}] {message}")
        raise ShardError(
            f"shard {shard_id} failed: {type_name}: {message}")

    # -- queries ----------------------------------------------------------

    def scatter_gather(self, plan, pattern, engine: str,
                       want_span: bool = False,
                       trace_context: "dict | None" = None
                       ) -> list[dict]:
        """Fan one plan out to every shard; one payload per shard back.

        Serialized by the pool mutex: the pipe protocol is strictly
        one request, one reply per worker, so overlapping queries from
        service threads queue here instead of interleaving messages.
        *trace_context* (a :class:`~repro.obs.spans.TraceContext`
        dict) rides with the plan so sampled workers trace under the
        coordinator's trace id.  Scatter and gather wall times of the
        call are left on :attr:`last_phase_seconds` for the
        coordinator's stitched trace (read under the same serialized
        call, so the profile always belongs to the payloads returned).
        """
        with self._mutex:
            if self._closed:
                raise ShardError("worker pool is closed")
            try:
                scatter_started = time.perf_counter()
                for shard_id in range(self.shards):
                    self._send(shard_id,
                               ("query", plan, pattern, engine,
                                want_span, trace_context))
                gather_started = time.perf_counter()
                replies = [self._recv(shard_id)
                           for shard_id in range(self.shards)]
                self.last_phase_seconds = {
                    "scatter": gather_started - scatter_started,
                    "gather": time.perf_counter() - gather_started,
                }
            except ShardError:
                self._teardown()
                raise
        failure: tuple[int, str, str] | None = None
        payloads: list[dict] = []
        for shard_id, reply in enumerate(replies):
            if reply[0] == "ok":
                payloads.append(reply[1])
            elif reply[0] == "error" and failure is None:
                failure = (shard_id, reply[1], reply[2])
        if failure is not None:
            self._raise_worker_error(*failure)
        return payloads

    def ping(self) -> list[int]:
        """Round-trip every worker; shard ids echoed back."""
        with self._mutex:
            if self._closed:
                raise ShardError("worker pool is closed")
            try:
                for shard_id in range(self.shards):
                    self._send(shard_id, ("ping",))
                return [self._recv(shard_id)[1]
                        for shard_id in range(self.shards)]
            except ShardError:
                self._teardown()
                raise

    def crash_worker(self, shard_id: int) -> None:
        """Make one worker die on its next message (fault testing)."""
        with self._mutex:
            if self._closed:
                raise ShardError("worker pool is closed")
            self._send(shard_id, ("exit",))

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Stop every worker; idempotent, never raises on teardown."""
        with self._mutex:
            self._teardown()

    def _teardown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard_id, connection in enumerate(self._connections):
            process = self._processes[shard_id]
            try:
                if process.is_alive():
                    connection.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
