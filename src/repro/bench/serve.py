"""Open-loop serving benchmark (BENCH_PR10.json).

Drives the HTTP query server the way real load arrives: a Poisson
process per offered rate, split across tenants, issuing **streamed**
FP queries so time-to-first-result is measured at the protocol level
(the first row chunk on the wire, not an in-process timer).  Open
loop matters — a closed loop self-throttles when the server slows
down and hides the saturation knee; Poisson arrivals keep offering
load regardless, so the sweep records the honest curve: achieved
throughput, latency and TTFR percentiles, shed work (429s), deadline
cancellations, and the /slo error-budget burn at each point.

Two entry points: :func:`serving_report` owns its servers (single
node and a 4-shard fleet, one saturation sweep each) and is what
``repro bench serve`` runs by default; :func:`target_report` drives
an already-running server at one rate (``--target HOST:PORT``), which
is what CI's serving-smoke job uses.
"""

from __future__ import annotations

import asyncio
import json
import platform
import random
import time
from typing import Sequence

from repro.bench.harness import ExperimentSetup
from repro.server.client import HttpClient

#: offered arrival rates (queries/second) of the default sweep
DEFAULT_RATES = (8.0, 16.0, 32.0, 64.0)

#: shard counts measured by the owned-server sweep; 1 is the
#: single-node baseline, 4 the fleet the repo's CI drills
SHARD_COUNTS = (1, 4)

#: the streamed workload — FP-friendly paths on the Pers data set
#: (sort-free plans, so first results leave before the join finishes)
QUERIES = (
    "//employee//name",
    "//employee//os",
    "//employee",
)


def _percentile(values: "list[float]", fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


async def _one_request(host: str, port: int, path: str,
                       tenant: str, deadline_ms: float) -> dict:
    """Issue one streamed query; timestamps come off the wire."""
    client = HttpClient(host, port)
    started = time.perf_counter()
    outcome = {"status": 0, "rows": 0, "seconds": 0.0,
               "ttfr": None, "cancelled": False, "error": False}
    try:
        head, body = await client.stream(
            "GET", path,
            headers={"X-Tenant": tenant,
                     "X-Deadline-Ms": f"{deadline_ms:g}"},
            timeout=max(10.0, deadline_ms / 1000.0 + 10.0))
        outcome["status"] = head.status
        if head.status != 200:
            async for _ in body:
                pass
            outcome["seconds"] = time.perf_counter() - started
            return outcome
        buffer = b""
        summary: "dict | None" = None
        async for chunk in body:
            if outcome["ttfr"] is None:
                # header line arrives first; first *row* chunk is the
                # second line on the wire
                buffer += chunk
                if buffer.count(b"\n") >= 2:
                    outcome["ttfr"] = time.perf_counter() - started
            else:
                buffer += chunk
        lines = buffer.decode("utf-8", "replace").strip().splitlines()
        if lines:
            try:
                summary = json.loads(lines[-1])
            except ValueError:
                summary = None
        outcome["seconds"] = time.perf_counter() - started
        if summary is not None:
            outcome["rows"] = int(summary.get("rows", 0))
            outcome["cancelled"] = bool(summary.get("cancelled"))
            if summary.get("error") and not outcome["cancelled"]:
                outcome["error"] = True
        return outcome
    except (ConnectionError, OSError, asyncio.TimeoutError,
            asyncio.IncompleteReadError, ValueError):
        outcome["seconds"] = time.perf_counter() - started
        outcome["error"] = True
        return outcome
    finally:
        await client.close()


async def _drive_point(host: str, port: int, rate: float,
                       duration: float, tenants: int,
                       seed: int, deadline_ms: float) -> dict:
    """One open-loop load point: Poisson arrivals at *rate* qps."""
    rng = random.Random(seed)
    tasks: "list[asyncio.Task]" = []
    started = time.perf_counter()
    offered = 0
    clock = 0.0
    while True:
        clock += rng.expovariate(rate)
        if clock >= duration:
            break
        delay = started + clock - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        query = QUERIES[offered % len(QUERIES)]
        tenant = f"t{offered % max(1, tenants)}"
        path = f"/query?xpath={query}&stream=1"
        tasks.append(asyncio.ensure_future(_one_request(
            host, port, path, tenant, deadline_ms)))
        offered += 1
    outcomes = await asyncio.gather(*tasks) if tasks else []
    elapsed = time.perf_counter() - started
    completed = [o for o in outcomes if o["status"] == 200
                 and not o["cancelled"] and not o["error"]]
    throttled = sum(1 for o in outcomes if o["status"] == 429)
    cancelled = sum(1 for o in outcomes if o["cancelled"]
                    or o["status"] == 504)
    errors = sum(1 for o in outcomes if o["error"]
                 or o["status"] not in (0, 200, 429, 504))
    latencies = [o["seconds"] for o in completed]
    firsts = [o["ttfr"] for o in completed if o["ttfr"] is not None]
    return {
        "offered_rate": rate,
        "offered": offered,
        "duration_seconds": round(elapsed, 6),
        "achieved_rate": round(len(completed) / elapsed, 3)
        if elapsed else 0.0,
        "completed": len(completed),
        "throttled": throttled,
        "cancelled": cancelled,
        "errors": errors,
        "rows": sum(o["rows"] for o in completed),
        "latency_p50_seconds": round(_percentile(latencies, 0.5), 6),
        "latency_p95_seconds": round(_percentile(latencies, 0.95), 6),
        "ttfr_p50_seconds": round(_percentile(firsts, 0.5), 6),
        "ttfr_p95_seconds": round(_percentile(firsts, 0.95), 6),
    }


async def _scrape_burn(host: str, port: int) -> "list[dict]":
    """The per-objective burn rates from /slo (empty on failure)."""
    from repro.server.client import fetch

    try:
        response = await fetch(host, port, "GET", "/slo", timeout=10)
        payload = response.json()
    except (ConnectionError, OSError, ValueError,
            asyncio.TimeoutError):
        return []
    return [{"objective": entry["name"],
             "compliance": entry["compliance"],
             "burn_rate": entry["burn_rate"],
             "recent_burn_rate": entry["recent_burn_rate"],
             "events": entry["events"]}
            for entry in payload.get("objectives", [])]


def _sweep(host: str, port: int, rates: Sequence[float],
           duration: float, tenants: int, seed: int,
           deadline_ms: float) -> "list[dict]":
    async def run() -> "list[dict]":
        points = []
        for index, rate in enumerate(rates):
            point = await _drive_point(host, port, rate, duration,
                                       tenants, seed + index,
                                       deadline_ms)
            point["slo"] = await _scrape_burn(host, port)
            points.append(point)
        return points

    return asyncio.run(run())


def serving_report(setup: ExperimentSetup,
                   rates: Sequence[float] = DEFAULT_RATES,
                   duration: float = 1.5,
                   tenants: int = 4,
                   deadline_ms: float = 5000.0) -> dict:
    """Saturation sweeps against owned servers, single-node and
    4-shard, on the Pers data set."""
    import io

    from repro.api import Database
    from repro.server.app import QueryServer, ServerConfig
    from repro.workloads.personnel import personnel_document

    document = personnel_document(target_nodes=setup.pers_nodes,
                                  seed=setup.seed)
    configs = []
    for shards in SHARD_COUNTS:
        if shards > 1:
            from repro.shard.sharded import ShardedDatabase

            database = ShardedDatabase(document, shards=shards)
        else:
            database = Database.from_document(document)
        # quotas off: the sweep saturates the global gate on purpose,
        # shedding is reported per point via the 429 count
        server = QueryServer(database, ServerConfig(
            port=0, tenant_rate=0.0,
            deadline_seconds=deadline_ms / 1000.0),
            out=io.StringIO())  # the report is the output
        try:
            host, port = server.start()
            points = _sweep(host, port, rates, duration, tenants,
                            setup.seed, deadline_ms)
        finally:
            server.stop()
            if shards > 1:
                database.close()
        configs.append({"shards": shards,
                        "workers": server.config.workers,
                        "queue_depth": server.config.queue_depth,
                        "points": points})
    return {
        "bench": "serve",
        "dataset": "pers",
        "pers_nodes": setup.pers_nodes,
        "tenants": tenants,
        "duration_seconds": duration,
        "deadline_ms": deadline_ms,
        "queries": list(QUERIES),
        "python": platform.python_version(),
        "configs": configs,
    }


def target_report(host: str, port: int, rate: float = 20.0,
                  duration: float = 1.5, tenants: int = 4,
                  seed: int = 42,
                  deadline_ms: float = 5000.0) -> dict:
    """One load point against an already-running server."""
    points = _sweep(host, port, [rate], duration, tenants, seed,
                    deadline_ms)
    return {
        "bench": "serve",
        "target": f"{host}:{port}",
        "tenants": tenants,
        "duration_seconds": duration,
        "deadline_ms": deadline_ms,
        "queries": list(QUERIES),
        "python": platform.python_version(),
        "configs": [{"shards": None, "points": points}],
    }


def render_serving_report(report: dict) -> str:
    """The human-readable saturation table."""
    lines = []
    target = report.get("target")
    title = (f"serving bench against {target}" if target
             else f"serving bench, pers "
                  f"({report.get('pers_nodes', '?')} nodes)")
    lines.append(title)
    header = (f"{'shards':>6} {'offered':>8} {'achieved':>9} "
              f"{'done':>6} {'429':>5} {'canc':>5} {'err':>4} "
              f"{'p50 ms':>8} {'p95 ms':>8} {'ttfr p50':>9} "
              f"{'ttfr p95':>9}")
    lines.append(header)
    lines.append("-" * len(header))
    for config in report["configs"]:
        label = config["shards"] if config["shards"] else "-"
        for point in config["points"]:
            lines.append(
                f"{label!s:>6} {point['offered_rate']:>8.1f} "
                f"{point['achieved_rate']:>9.2f} "
                f"{point['completed']:>6} {point['throttled']:>5} "
                f"{point['cancelled']:>5} {point['errors']:>4} "
                f"{point['latency_p50_seconds'] * 1e3:>8.2f} "
                f"{point['latency_p95_seconds'] * 1e3:>8.2f} "
                f"{point['ttfr_p50_seconds'] * 1e3:>9.2f} "
                f"{point['ttfr_p95_seconds'] * 1e3:>9.2f}")
    for config in report["configs"]:
        points = config["points"]
        if not points or not points[-1].get("slo"):
            continue
        label = config["shards"] if config["shards"] else "target"
        for entry in points[-1]["slo"]:
            if entry["objective"] in ("query_errors",
                                      "time_to_first_result"):
                lines.append(
                    f"slo[{label}] {entry['objective']}: "
                    f"compliance {entry['compliance']:.4f}, "
                    f"burn {entry['burn_rate']:.2f}x "
                    f"({entry['events']} events)")
    return "\n".join(lines)


def write_serving_report(report: dict, target: str) -> None:
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
