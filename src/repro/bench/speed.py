"""Engine speed benchmark: block vs tuple on the paper workloads.

Measures wall-clock for both execution engines on a small ladder of
paper queries (the hot case is the folded-Pers evaluation of
``Q.Pers.3.d`` — the Table 3 query whose plan quality the paper
stresses), checks that the cost-model counters agree between engines
on every run, and emits a machine-readable report.  Each cell also
carries a per-operator breakdown (rows, wall time, cost-counter
shares) from one extra traced run outside the timed loops — tracing
is never enabled while timing.  The report is
written as ``BENCH_PR7.json`` by ``python -m repro bench engines
--json`` and tracked in CI, so every PR carries a comparable number
for the hot path.

Beyond the steady-state wall clocks, each cell measures the storage
layer directly:

* **cold-start** timings — the buffer pool is cleared and the posting
  decode cache dropped before each timed run, so the number includes
  page reads (zero-copy views under mmap/in-memory disks) and frame
  decode.  This is the first-query latency a freshly attached reader
  pays.
* **memory** — ``tracemalloc``-measured heap deltas for decoding the
  whole corpus into packed columns, and for the eager layout (Region
  objects plus match rows forced for every tag — what every decode
  cost before lazy blocks).  The ratio is the resident-memory saving
  the compressed/lazy representation delivers.

Timings are steady-state: each engine gets one warm-up execution (the
block engine's warm-up also populates the posting decode cache — the
cache is part of the design being measured) and the best of *repeats*
timed runs is reported.  The cyclic garbage collector is collected
and then disabled around every timed run — the same discipline
:mod:`timeit` applies — because a collection triggered mid-run by the
result materialization (hundreds of thousands of fresh tuples) adds
tens of milliseconds of noise to whichever engine it lands on.
"""

from __future__ import annotations

import gc
import json
import math
import platform
import time
import tracemalloc
from dataclasses import dataclass
from typing import Sequence

from repro.bench.harness import ExperimentSetup, dataset_database
from repro.obs.explain import build_analysis
from repro.workloads.queries import paper_query

#: the cost-model counters both engines must agree on, run for run.
PARITY_COUNTERS = ("index_items", "sort_count", "sorted_items",
                   "sort_units", "buffered_results", "stack_tuple_ops",
                   "output_tuples", "join_count")


@dataclass(frozen=True)
class SpeedWorkload:
    """One benchmark cell: a paper query on a (folded) data set."""

    name: str
    dataset: str
    query: str
    folding: int


#: the hot case (Q.Pers.3.d on folded Pers) first — its speedup is the
#: headline number — followed by a spread over shapes and data sets.
SPEED_WORKLOADS: tuple[SpeedWorkload, ...] = (
    SpeedWorkload("pers-x12/Q.Pers.3.d", "pers", "Q.Pers.3.d", 12),
    SpeedWorkload("pers-x4/Q.Pers.2.c", "pers", "Q.Pers.2.c", 4),
    SpeedWorkload("dblp-x2/Q.DBLP.2.c", "dblp", "Q.DBLP.2.c", 2),
    SpeedWorkload("mbench-x2/Q.Mbench.1.a", "mbench",
                  "Q.Mbench.1.a", 2),
)


def _drop_storage_caches(database) -> None:
    """Force the next read to hit disk: no decoded blocks, no frames."""
    database.index.drop_caches()
    database.pool.clear()


def _measure_cold(database, plan, pattern, repeats: int
                  ) -> dict[str, float]:
    """First-query latency per engine: decode + page reads included.

    Each timed run starts from dropped caches; the best of *repeats*
    is reported (every run is genuinely cold — best-of only trims
    scheduler noise, not cache effects).
    """
    cold: dict[str, float] = {}
    for engine in ("tuple", "block"):
        best = math.inf
        for _ in range(repeats):
            _drop_storage_caches(database)
            gc.collect()
            gc.disable()
            try:
                started = time.perf_counter()
                database.execute(plan, pattern, engine=engine)
                best = min(best, time.perf_counter() - started)
            finally:
                gc.enable()
        cold[engine] = best
    return cold


def _measure_memory(database) -> dict[str, object]:
    """Measured heap bytes for the packed vs eager corpus layouts.

    Decodes every tag from dropped caches under ``tracemalloc`` and
    reads the traced size (packed columns only), then forces the
    Region objects and match rows every decode used to build eagerly
    and reads it again.  Both numbers are *measured* allocations, not
    estimates; ``compressed_bytes`` (frame bytes on disk) comes from
    the frame headers.
    """
    index = database.index
    _drop_storage_caches(database)
    gc.collect()
    tracemalloc.start()
    try:
        blocks = [index.scan_blocks(tag) for tag in index.tags()]
        packed_bytes, _ = tracemalloc.get_traced_memory()
        for block in blocks:
            block.rows  # forces regions + rows, the pre-lazy layout
        eager_bytes, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    postings = sum(len(block) for block in blocks)
    stats = index.storage_stats()
    # leave the database as the decode-only state for later callers
    _drop_storage_caches(database)
    return {
        "postings": postings,
        "compressed_bytes": stats["compressed_bytes"],
        "packed_resident_bytes": packed_bytes,
        "eager_resident_bytes": eager_bytes,
        "memory_ratio": eager_bytes / max(packed_bytes, 1),
        # 12 = bytes/posting in the old slotted encoding (10-byte
        # <IIH record + 2-byte slot pointer)
        "compression_ratio": (postings * 12
                              / max(stats["compressed_bytes"], 1)),
    }


def measure_workload(spec: SpeedWorkload, setup: ExperimentSetup,
                     repeats: int = 3) -> dict[str, object]:
    """Time one workload under both engines and compare counters."""
    database = dataset_database(spec.dataset, setup,
                                folding=spec.folding)
    query = paper_query(spec.query)
    database.warm_statistics(query.pattern)
    plan = database.optimize(query.pattern, algorithm="DPP").plan
    cold = _measure_cold(database, plan, query.pattern, repeats)
    seconds: dict[str, float] = {}
    counters: dict[str, dict[str, float]] = {}
    result_count = 0
    for engine in ("tuple", "block"):
        database.execute(plan, query.pattern, engine=engine)  # warm up
        best = math.inf
        execution = None
        for _ in range(repeats):
            gc.collect()
            gc.disable()
            try:
                execution = database.execute(plan, query.pattern,
                                             engine=engine)
            finally:
                gc.enable()
            best = min(best, execution.metrics.wall_seconds)
        assert execution is not None
        seconds[engine] = best
        counters[engine] = {counter: getattr(execution.metrics, counter)
                            for counter in PARITY_COUNTERS}
        result_count = len(execution)
    # one extra traced run (block engine, outside the timed loops —
    # tracing is never on during timing) for the per-operator breakdown
    traced = database.execute(plan, query.pattern, engine="block",
                              spans=True)
    analysis = build_analysis(plan, traced.span, query.pattern)
    operators = [{
        "operator": node.label,
        "rows": node.actual_rows,
        "estimated_rows": node.estimated_rows,
        "rows_q_error": node.rows_q_error,
        "self_seconds": node.self_seconds,
        "simulated_cost": node.simulated_cost,
        "counters": dict(node.counters),
    } for node in analysis.walk()]
    memory = _measure_memory(database)
    return {
        "workload": spec.name,
        "dataset": spec.dataset,
        "query": spec.query,
        "folding": spec.folding,
        "nodes": len(database.document),
        "results": result_count,
        "tuple_seconds": seconds["tuple"],
        "block_seconds": seconds["block"],
        "speedup": seconds["tuple"] / max(seconds["block"], 1e-12),
        "cold_tuple_seconds": cold["tuple"],
        "cold_block_seconds": cold["block"],
        "cold_speedup": cold["tuple"] / max(cold["block"], 1e-12),
        "memory": memory,
        "counters_match": counters["tuple"] == counters["block"],
        "counters": counters["block"],
        "operators": operators,
    }


def engine_speed_report(setup: ExperimentSetup | None = None,
                        repeats: int = 3,
                        workloads: Sequence[SpeedWorkload] =
                        SPEED_WORKLOADS) -> dict[str, object]:
    """The full benchmark report (the ``BENCH_PR7.json`` payload)."""
    setup = setup or ExperimentSetup()
    cells = [measure_workload(spec, setup, repeats=repeats)
             for spec in workloads]
    speedups = [cell["speedup"] for cell in cells]
    cold_speedups = [cell["cold_speedup"] for cell in cells]
    memory_ratios = [cell["memory"]["memory_ratio"] for cell in cells]

    def _geomean(values: list[float]) -> float:
        return math.exp(sum(math.log(v) for v in values) / len(values))

    return {
        "benchmark": "BENCH_PR7",
        "description": "block vs tuple engine wall-clock on paper "
                       "workloads (best of N, warm caches), plus "
                       "cold-start latency from dropped caches and "
                       "measured packed-vs-eager resident memory",
        "python": platform.python_version(),
        "repeats": repeats,
        "setup": {
            "pers_nodes": setup.pers_nodes,
            "dblp_entries": setup.dblp_entries,
            "mbench_nodes": setup.mbench_nodes,
            "seed": setup.seed,
        },
        "workloads": cells,
        "summary": {
            "hot_case": cells[0]["workload"],
            "hot_case_speedup": cells[0]["speedup"],
            "geomean_speedup": _geomean(speedups),
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
            "cold_hot_case_speedup": cells[0]["cold_speedup"],
            "cold_geomean_speedup": _geomean(cold_speedups),
            "memory_ratio_geomean": _geomean(memory_ratios),
            "memory_ratio_min": min(memory_ratios),
            "all_counters_match": all(cell["counters_match"]
                                      for cell in cells),
        },
    }


def render_report(report: dict[str, object]) -> str:
    """Human-readable table of one report."""
    lines = [
        "Engine speed: block vs tuple "
        f"(best of {report['repeats']}, warm caches; cold = dropped "
        "buffer pool + decode cache)",
        f"{'workload':26s} {'nodes':>7s} {'results':>8s} "
        f"{'tuple ms':>9s} {'block ms':>9s} {'speedup':>8s} "
        f"{'cold ms':>8s} {'mem x':>6s} counters",
    ]
    for cell in report["workloads"]:
        lines.append(
            f"{cell['workload']:26s} {cell['nodes']:>7d} "
            f"{cell['results']:>8d} "
            f"{cell['tuple_seconds'] * 1e3:>9.2f} "
            f"{cell['block_seconds'] * 1e3:>9.2f} "
            f"{cell['speedup']:>7.2f}x "
            f"{cell['cold_block_seconds'] * 1e3:>8.2f} "
            f"{cell['memory']['memory_ratio']:>5.1f}x "
            f"{'match' if cell['counters_match'] else 'MISMATCH'}")
    summary = report["summary"]
    lines.append(
        f"geomean {summary['geomean_speedup']:.2f}x warm / "
        f"{summary['cold_geomean_speedup']:.2f}x cold, hot case "
        f"{summary['hot_case']} {summary['hot_case_speedup']:.2f}x, "
        f"eager/packed memory {summary['memory_ratio_geomean']:.1f}x, "
        f"counters {'all match' if summary['all_counters_match'] else 'MISMATCH'}")
    return "\n".join(lines)


def write_report(report: dict[str, object], path: str) -> None:
    """Write a report as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
