"""ASCII charts for the figure artifacts.

The paper's Figures 7 and 8 are stacked bar charts: per optimizer
configuration, total query evaluation time split into an optimization
component and a plan-execution component.  :func:`render_stacked_bars`
renders exactly that with terminal-safe characters, so a benchmark run
reproduces the *figure*, not just its underlying numbers.
"""

from __future__ import annotations

from typing import Sequence

#: fill characters per stacked component, in order
_FILLS = ("#", "=", "+", ".")


def render_stacked_bars(title: str, labels: Sequence[str],
                        components: Sequence[tuple[str, Sequence[float]]],
                        width: int = 60, unit: str = "") -> str:
    """Horizontal stacked bar chart.

    ``components`` is an ordered list of ``(name, values)`` with one
    value per label; each bar stacks the components left to right,
    scaled so the longest total bar spans *width* characters.
    """
    if not labels:
        raise ValueError("chart needs at least one bar")
    for name, values in components:
        if len(values) != len(labels):
            raise ValueError(
                f"component {name!r} has {len(values)} values for "
                f"{len(labels)} labels")
    if len(components) > len(_FILLS):
        raise ValueError(f"at most {len(_FILLS)} components supported")

    totals = [sum(values[index] for _, values in components)
              for index in range(len(labels))]
    peak = max(totals)
    scale = (width / peak) if peak > 0 else 0.0
    label_width = max(len(label) for label in labels)

    lines = [title, "-" * len(title)]
    for index, label in enumerate(labels):
        bar = ""
        for (name, values), fill in zip(components, _FILLS):
            bar += fill * round(values[index] * scale)
        total = totals[index]
        lines.append(f"{label.rjust(label_width)} |{bar.ljust(width)}| "
                     f"{total:,.1f}{unit}")
    legend = "   ".join(
        f"{fill} {name}" for (name, __), fill in zip(components, _FILLS))
    lines.append(f"{' ' * label_width}  {legend}")
    return "\n".join(lines)
