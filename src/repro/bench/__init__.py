"""Experiment drivers reproducing the paper's tables and figures.

Each function in :mod:`repro.bench.experiments` regenerates one
artifact of Sec. 4 (Table 1, Table 2, Table 3, Figure 7, Figure 8) as
structured rows plus an ASCII rendering in the paper's layout.  The
``benchmarks/`` directory wraps these in pytest-benchmark targets; the
``examples/reproduce_paper.py`` script runs them all and prints the
tables.
"""

from repro.bench.harness import (CellResult, ExperimentSetup, eval_bad_plan,
                                 run_cell)
from repro.bench.tables import render_table
from repro.bench.experiments import (figure7, figure8, table1, table2,
                                     table3)

__all__ = [
    "CellResult",
    "ExperimentSetup",
    "eval_bad_plan",
    "run_cell",
    "render_table",
    "table1",
    "table2",
    "table3",
    "figure7",
    "figure8",
]
