"""Drivers for every table and figure of the paper's Sec. 4.

Each driver returns an :class:`ExperimentOutput` carrying structured
rows (for tests and EXPERIMENTS.md) and an ASCII rendering in the
layout of the corresponding paper artifact.  Times are reported in
milliseconds of wall clock; evaluation work is additionally reported in
*simulated cost* units (the paper's cost model applied to measured
operation counts), which is the currency used to check the paper's
shape claims on a simulator substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import (CellResult, ExperimentSetup,
                                 dataset_database, eval_bad_plan, run_cell)
from repro.bench.tables import render_table
from repro.workloads.queries import PAPER_QUERIES, paper_query

#: Table 1 / Table 2 algorithm columns, in the paper's order.
ALGORITHMS = ("DP", "DPP", "DPAP-EB", "DPAP-LD", "FP")
TABLE2_ALGORITHMS = ("DP", "DPP'", "DPP", "DPAP-EB", "DPAP-LD", "FP")

#: The paper folds x1/x10/x100/x500; a pure-Python engine gets the same
#: crossover shape with a gentler ramp by default.
DEFAULT_FOLDINGS = (1, 5, 25)


@dataclass
class ExperimentOutput:
    """Structured result of one experiment driver."""

    name: str
    rows: list[dict[str, object]]
    text: str
    cells: list[CellResult] = field(default_factory=list, repr=False)

    def __str__(self) -> str:
        return self.text


def _eb_options(query_name: str) -> dict[str, object]:
    """Table 1 sets DPAP-EB's T_e to the number of pattern edges."""
    return {"expansion_bound": len(paper_query(query_name).pattern.edges)}


def table1(setup: ExperimentSetup | None = None) -> ExperimentOutput:
    """Table 1: optimization + evaluation time, 8 queries x 5 algorithms
    plus the worst-random "bad plan" column."""
    setup = setup or ExperimentSetup()
    rows: list[dict[str, object]] = []
    cells: list[CellResult] = []
    for query_name, query in PAPER_QUERIES.items():
        database = dataset_database(query.dataset, setup)
        row: dict[str, object] = {"query": query_name}
        for algorithm in ALGORITHMS:
            options = (_eb_options(query_name)
                       if algorithm == "DPAP-EB" else {})
            cell = run_cell(database, query, algorithm, **options)
            cells.append(cell)
            row[f"{algorithm}.opt_ms"] = cell.opt_seconds * 1e3
            row[f"{algorithm}.eval_ms"] = cell.eval_seconds * 1e3
            row[f"{algorithm}.eval_sim"] = cell.eval_simulated
        bad = eval_bad_plan(database, query,
                            samples=setup.bad_plan_samples)
        cells.append(bad)
        row["bad.eval_ms"] = bad.eval_seconds * 1e3
        row["bad.eval_sim"] = bad.eval_simulated
        row["results"] = bad.result_count
        rows.append(row)

    headers = ["Query"]
    for algorithm in ALGORITHMS:
        headers += [f"{algorithm} opt(ms)", f"{algorithm} eval(sim)"]
    headers.append("Bad eval(sim)")
    table_rows = []
    for row in rows:
        cells_out: list[object] = [row["query"]]
        for algorithm in ALGORITHMS:
            cells_out.append(row[f"{algorithm}.opt_ms"])
            cells_out.append(row[f"{algorithm}.eval_sim"])
        cells_out.append(row["bad.eval_sim"])
        table_rows.append(cells_out)
    text = render_table(
        "Table 1: Query Optimization and Query Plan Evaluation",
        headers, table_rows,
        note=("opt(ms) = optimizer wall time; eval(sim) = measured "
              "engine work in cost-model units (paper reports seconds "
              "on 2003 hardware)."))
    return ExperimentOutput("table1", rows, text, cells)


def table2(setup: ExperimentSetup | None = None,
           query_name: str = "Q.Pers.3.d") -> ExperimentOutput:
    """Table 2: optimization time and number of plans considered for one
    query across all six algorithm variants (incl. DPP')."""
    setup = setup or ExperimentSetup()
    query = paper_query(query_name)
    database = dataset_database(query.dataset, setup)
    rows: list[dict[str, object]] = []
    cells: list[CellResult] = []
    for algorithm in TABLE2_ALGORITHMS:
        options = _eb_options(query_name) if algorithm == "DPAP-EB" else {}
        cell = run_cell(database, query, algorithm, **options)
        cells.append(cell)
        rows.append({
            "algorithm": algorithm,
            "opt_ms": cell.opt_seconds * 1e3,
            "plans": cell.alternatives_considered,
            "moves": cell.plans_considered,
            "eval_sim": cell.eval_simulated,
        })
    text = render_table(
        f"Table 2: Optimization Time and Plans Considered ({query_name})",
        ["Algorithm", "OpTime(ms)", "# of Plans", "eval(sim)"],
        [[row["algorithm"], row["opt_ms"], row["plans"], row["eval_sim"]]
         for row in rows],
        note="Paper shape: DP > DPP' > DPP > DPAP-EB > DPAP-LD > FP.")
    return ExperimentOutput("table2", rows, text, cells)


def table3(setup: ExperimentSetup | None = None,
           query_name: str = "Q.Pers.3.d",
           foldings: tuple[int, ...] = DEFAULT_FOLDINGS) -> ExperimentOutput:
    """Table 3: plan evaluation cost vs. folding factor."""
    setup = setup or ExperimentSetup()
    query = paper_query(query_name)
    rows: list[dict[str, object]] = []
    cells: list[CellResult] = []
    per_algorithm: dict[str, dict[int, float]] = {
        algorithm: {} for algorithm in ALGORITHMS}
    per_algorithm["bad"] = {}
    for folding in foldings:
        database = dataset_database(query.dataset, setup, folding=folding)
        for algorithm in ALGORITHMS:
            options = (_eb_options(query_name)
                       if algorithm == "DPAP-EB" else {})
            cell = run_cell(database, query, algorithm, **options)
            cells.append(cell)
            per_algorithm[algorithm][folding] = cell.eval_simulated
            rows.append({"algorithm": algorithm, "folding": folding,
                         "eval_sim": cell.eval_simulated,
                         "eval_ms": cell.eval_seconds * 1e3,
                         "opt_ms": cell.opt_seconds * 1e3,
                         "fully_pipelined": cell.fully_pipelined,
                         "left_deep": cell.left_deep})
        bad = eval_bad_plan(database, query,
                            samples=setup.bad_plan_samples)
        cells.append(bad)
        per_algorithm["bad"][folding] = bad.eval_simulated
        rows.append({"algorithm": "bad", "folding": folding,
                     "eval_sim": bad.eval_simulated,
                     "eval_ms": bad.eval_seconds * 1e3,
                     "opt_ms": bad.opt_seconds * 1e3,
                     "fully_pipelined": bad.fully_pipelined,
                     "left_deep": bad.left_deep})
    table_rows = [
        [algorithm] + [per_algorithm[algorithm][folding]
                       for folding in foldings]
        for algorithm in (*ALGORITHMS, "bad")]
    text = render_table(
        f"Table 3: Data Size vs Plan Evaluation Cost ({query_name})",
        ["Algorithm"] + [f"x{folding}" for folding in foldings],
        table_rows,
        note=("eval(sim) per folding factor.  Paper shape: optimizer "
              "times stay flat; DPAP-LD's gap vs optimal widens with "
              "data size; FP converges to the optimum."))
    return ExperimentOutput("table3", rows, text, cells)


def _te_sweep(name: str, setup: ExperimentSetup, query_name: str,
              folding: int) -> ExperimentOutput:
    """Shared driver for Figures 7 and 8: DPAP-EB T_e sweep plus the
    fixed algorithms, reporting opt + eval components."""
    query = paper_query(query_name)
    database = dataset_database(query.dataset, setup, folding=folding)
    rows: list[dict[str, object]] = []
    cells: list[CellResult] = []
    node_count = len(query.pattern)
    for bound in range(1, node_count + 1):
        cell = run_cell(database, query, "DPAP-EB",
                        expansion_bound=bound)
        cells.append(cell)
        rows.append({"series": f"DPAP-EB({bound})",
                     "opt_ms": cell.opt_seconds * 1e3,
                     "eval_sim": cell.eval_simulated,
                     "eval_ms": cell.eval_seconds * 1e3,
                     "plans": cell.plans_considered})
    for algorithm in ("DP", "DPP", "DPAP-LD", "FP"):
        cell = run_cell(database, query, algorithm)
        cells.append(cell)
        rows.append({"series": algorithm,
                     "opt_ms": cell.opt_seconds * 1e3,
                     "eval_sim": cell.eval_simulated,
                     "eval_ms": cell.eval_seconds * 1e3,
                     "plans": cell.plans_considered})
    from repro.bench.plots import render_stacked_bars

    text = render_table(
        f"{name}: T_e sweep for {query_name}, folding x{folding}",
        ["Series", "Opt(ms)", "Eval(sim)", "Eval(ms)", "Plans"],
        [[row["series"], row["opt_ms"], row["eval_sim"], row["eval_ms"],
          row["plans"]] for row in rows],
        note=("Total query evaluation = optimization + plan execution; "
              "the paper's Figures 7/8 stack the two components."))
    chart = render_stacked_bars(
        f"{name} (stacked: total query evaluation time, ms)",
        [row["series"] for row in rows],
        [("optimization", [row["opt_ms"] for row in rows]),
         ("plan execution", [row["eval_ms"] for row in rows])],
        unit=" ms")
    return ExperimentOutput(name.lower().replace(" ", ""), rows,
                            text + "\n\n" + chart, cells)


def figure7(setup: ExperimentSetup | None = None,
            query_name: str = "Q.Pers.3.d",
            folding: int = 25) -> ExperimentOutput:
    """Figure 7: T_e sweep on the large (folded) data set — plan quality
    dominates, DPP is the safe choice."""
    return _te_sweep("Figure 7", setup or ExperimentSetup(), query_name,
                     folding)


def figure8(setup: ExperimentSetup | None = None,
            query_name: str = "Q.Pers.3.d") -> ExperimentOutput:
    """Figure 8: same sweep on the base data set — optimization time is
    a significant share, FP wins overall."""
    return _te_sweep("Figure 8", setup or ExperimentSetup(), query_name,
                     folding=1)
