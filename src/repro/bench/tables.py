"""ASCII table rendering for the experiment drivers."""

from __future__ import annotations

from typing import Sequence


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 note: str = "") -> str:
    """Render a simple aligned ASCII table with a title and footnote."""
    columns = [[str(header)] for header in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(headers)} "
                f"columns")
        for column, cell in zip(columns, row):
            column.append(_format(cell))
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = [title, "=" * len(title)]
    header_line = " | ".join(
        cell.ljust(width) for cell, width in
        zip((column[0] for column in columns), widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for index in range(1, len(columns[0])):
        lines.append(" | ".join(
            column[index].rjust(width) if index > 0 else column[index]
            for column, width in zip(columns, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def _format(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)
