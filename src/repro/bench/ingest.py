"""Live plan crossover under incremental ingest (write-path bench).

Table 3 shows the optimizer's choice depending on data *size*: on the
small personnel document DPP picks plans with blocking sorts that FP
(fully pipelined) would refuse, and as the document is folded larger
the cheapest plan converges to the fully pipelined one.  The static
experiment rebuilds the database from scratch at every folding factor.

This bench reproduces the same crossover **live**, through the write
path: the query log is written at folding x1, then the document is
grown to each folding factor with WAL-logged ``append_document``
transactions — statistics update incrementally, the statistics epoch
bumps, cached plans are invalidated, and ``reload()`` is never called.
After each growth step the logged queries are replayed through
:func:`repro.obs.audit.audit_records`; the left-deep-to-pipelined
crossover shows up as plan flips against the x1 log, exactly the way
a production auditor would catch it on a growing corpus.
"""

from __future__ import annotations

from repro.api import Database
from repro.bench.experiments import ExperimentOutput
from repro.bench.harness import ExperimentSetup
from repro.bench.tables import render_table
from repro.document.document import merge_documents
from repro.obs.audit import audit_records
from repro.obs.querylog import QueryLog
from repro.workloads.personnel import personnel_document
from repro.workloads.queries import PAPER_QUERIES
from repro.xpath.render import pattern_to_xpath

DEFAULT_FOLDINGS = (1, 5, 25)

#: copies appended per transaction while growing between foldings —
#: small enough to exercise many commits, large enough that commit
#: validation does not dominate the bench.
COPIES_PER_TXN = 4


def ingest_crossover_report(
        setup: ExperimentSetup | None = None,
        foldings: tuple[int, ...] = DEFAULT_FOLDINGS,
        algorithm: str = "DPP",
        watch_query: str = "Q.Pers.3.d") -> ExperimentOutput:
    """Grow a personnel database in place and audit the plan drift.

    Returns one row per folding factor with the document size, the
    write-path counters, the number of logged queries whose current
    plan digest differs from the x1 log (``flips``), and the shape of
    the plan chosen *now* for *watch_query* (pipelined / left-deep).
    """
    setup = setup or ExperimentSetup()
    foldings = tuple(sorted(set(foldings)))
    if not foldings or foldings[0] < 1:
        raise ValueError(f"bad folding factors {foldings!r}")
    base = personnel_document(target_nodes=setup.pers_nodes,
                              seed=setup.seed)
    # Same shape fold_document produces, so the Table 3 claim carries
    # over: copies spliced under a neutral root no query mentions.
    database = Database.from_document(
        merge_documents([base], root_tag="folded", name="pers-ingest"))
    manager = database.transactions
    queries = {query.name: pattern_to_xpath(query.pattern)
               for query in PAPER_QUERIES.values()
               if query.dataset == "pers"}
    if watch_query not in queries:
        raise ValueError(f"unknown pers query {watch_query!r}")

    with QueryLog(None, trace_sample=1) as log:
        database.attach_query_log(log)
        database.query_many(sorted(queries.values()),
                            algorithm=algorithm)
        records = list(log.records())
    database.attach_query_log(None)

    rows: list[dict[str, object]] = []
    current = 1
    for folding in foldings:
        remaining = folding - current
        while remaining > 0:
            batch = min(COPIES_PER_TXN, remaining)
            with database.transaction() as txn:
                for _ in range(batch):
                    txn.append_document(base)
            remaining -= batch
        current = folding
        report = audit_records(database, records, algorithm=algorithm)
        flipped = sorted(
            name for name, xpath in queries.items()
            for entry in report.entries
            if entry.query == xpath and entry.flipped)
        pattern = database.compile(queries[watch_query])
        chosen = database.optimize(pattern, algorithm=algorithm)
        rows.append({
            "folding": folding,
            "nodes": len(database.document),
            "epoch": database.statistics_epoch,
            "commits": manager.metrics.committed,
            "wal_kib": manager.wal.size / 1024.0,
            "flips": report.plan_flips,
            "flipped": flipped,
            "watch_pipelined": chosen.plan.is_fully_pipelined,
            "watch_left_deep": chosen.plan.is_left_deep,
            "watch_cost": chosen.estimated_cost,
        })

    text = render_table(
        f"Ingest: live plan crossover under incremental updates "
        f"({algorithm}, log written at x1)",
        ["Folding", "Nodes", "Epoch", "Commits", "WAL KiB", "Flips",
         f"{watch_query} pipelined", "left-deep"],
        [[row["folding"], row["nodes"], row["epoch"], row["commits"],
          f"{row['wal_kib']:.0f}", row["flips"],
          "yes" if row["watch_pipelined"] else "no",
          "yes" if row["watch_left_deep"] else "no"]
         for row in rows],
        note=("Every growth step is a WAL-logged transaction — no "
              "reload().  Paper shape (Table 3): as the data grows "
              "the chosen plan converges to the fully pipelined one, "
              "so the x1 log's plans flip."))
    return ExperimentOutput("ingest", rows, text)
