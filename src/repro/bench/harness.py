"""Measurement harness for the Sec. 4 experiments.

One *cell* of a paper table is (query, algorithm) on some database:
optimize, then execute the chosen plan, recording optimization wall
time, evaluation wall time, evaluation *simulated cost* (operation
counts weighted by the cost factors — the currency in which the
paper's shape claims are checked), result size, and the optimizer's
work counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache

from repro.api import Database
from repro.core.cost import CostFactors
from repro.core.optimizer import OptimizationResult
from repro.core.plans import PhysicalPlan
from repro.core.random_plans import worst_random_plan
from repro.document.document import XmlDocument
from repro.workloads.dblp import dblp_document
from repro.workloads.folding import fold_document
from repro.workloads.mbench import mbench_document
from repro.workloads.personnel import personnel_document
from repro.workloads.queries import PaperQuery


@dataclass
class CellResult:
    """Measurements for one (query, algorithm) cell."""

    query: str
    algorithm: str
    opt_seconds: float
    eval_seconds: float
    eval_simulated: float
    result_count: int
    plans_considered: int
    alternatives_considered: int
    estimated_cost: float
    fully_pipelined: bool
    left_deep: bool
    plan: PhysicalPlan = field(repr=False, default=None)  # type: ignore[assignment]


@dataclass
class ExperimentSetup:
    """Shared data-set sizing knobs for the experiment drivers.

    The defaults are laptop-scale stand-ins for the paper's data sets
    (Sec. 4.1): the relative structural character is preserved while
    absolute sizes stay small enough for a pure-Python engine.
    """

    pers_nodes: int = 2000
    dblp_entries: int = 400
    mbench_nodes: int = 3000
    seed: int = 42
    bad_plan_samples: int = 30
    #: optional learned factors (see ``repro.obs.calibrate``); None
    #: keeps the paper's hard-coded constants.  Every experiment then
    #: prices plans — and reports simulated cost — in the calibrated
    #: currency.
    cost_factors: CostFactors | None = None


@lru_cache(maxsize=16)
def _base_document(dataset: str, pers_nodes: int, dblp_entries: int,
                   mbench_nodes: int, seed: int) -> XmlDocument:
    if dataset == "pers":
        return personnel_document(target_nodes=pers_nodes, seed=seed)
    if dataset == "dblp":
        return dblp_document(entries=dblp_entries, seed=seed)
    if dataset == "mbench":
        return mbench_document(target_nodes=mbench_nodes, seed=seed)
    raise ValueError(f"unknown dataset {dataset!r}")


def dataset_database(dataset: str, setup: ExperimentSetup,
                     folding: int = 1) -> Database:
    """Build (or rebuild) the database for one data set, with folding."""
    document = _base_document(dataset, setup.pers_nodes,
                              setup.dblp_entries, setup.mbench_nodes,
                              setup.seed)
    if folding > 1:
        document = fold_document(document, folding)
    if setup.cost_factors is not None:
        return Database.from_document(document,
                                      cost_factors=setup.cost_factors)
    return Database.from_document(document)


def run_cell(database: Database, query: PaperQuery, algorithm: str,
             **options: object) -> CellResult:
    """Optimize + execute one cell and collect every measurement."""
    database.warm_statistics(query.pattern)
    optimization: OptimizationResult = database.optimize(
        query.pattern, algorithm=algorithm, **options)
    execution = database.execute(optimization.plan, query.pattern)
    return CellResult(
        query=query.name,
        algorithm=algorithm,
        opt_seconds=optimization.report.optimization_seconds,
        eval_seconds=execution.metrics.wall_seconds,
        eval_simulated=execution.metrics.simulated_cost(),
        result_count=len(execution),
        plans_considered=optimization.report.plans_considered,
        alternatives_considered=(
            optimization.report.alternatives_considered),
        estimated_cost=optimization.estimated_cost,
        fully_pipelined=optimization.plan.is_fully_pipelined,
        left_deep=optimization.plan.is_left_deep,
        plan=optimization.plan,
    )


def eval_bad_plan(database: Database, query: PaperQuery,
                  samples: int = 30, seed: int = 0) -> CellResult:
    """Execute the worst of *samples* random plans (Table 1 yardstick)."""
    started = time.perf_counter()
    plan, estimated = worst_random_plan(
        query.pattern, database.estimator, samples=samples, seed=seed,
        cost_model=database.cost_model)
    opt_seconds = time.perf_counter() - started
    execution = database.execute(plan, query.pattern)
    return CellResult(
        query=query.name,
        algorithm="bad",
        opt_seconds=opt_seconds,
        eval_seconds=execution.metrics.wall_seconds,
        eval_simulated=execution.metrics.simulated_cost(),
        result_count=len(execution),
        plans_considered=samples,
        alternatives_considered=samples,
        estimated_cost=estimated,
        fully_pipelined=plan.is_fully_pipelined,
        left_deep=plan.is_left_deep,
        plan=plan,
    )
