"""Sharded scatter-gather scaling benchmark (BENCH_PR8.json).

Measures the shard fleet against the single-node baseline on the
folded multi-document workloads — the data shape sharding exists for:
a folded corpus is many document copies under one root, so the subtree
partitioner deals whole copies to shards and every shard joins over
1/N of the corpus in its own process.

Workload selection matters here and is deliberate: **selective**
predicate queries, where structural-join input dominates output size.
Scatter-gather ships result tuples back over pipes, and for
output-heavy queries (e.g. ``Q.Pers.3.d`` at folding 12: ~300k rows)
pickling the results costs more than the join itself — result
shipping, not join work, becomes the bottleneck and sharding cannot
win.  That regime is recorded honestly in DESIGN.md §8; the scaling
claim is about join-bound queries, so that is what this bench runs.

Every cell is differentially verified while it is measured: at each
shard count the merged binding set must equal the single-node binding
set, and merged output must be in document order — a benchmark that
got faster by dropping rows must fail loudly, not report a speedup.
"""

from __future__ import annotations

import json
import math
import os
import platform
from dataclasses import dataclass
from typing import Sequence

from repro.bench.harness import ExperimentSetup, dataset_database
from repro.core.pattern import Predicate, QueryPattern
from repro.errors import ShardError
from repro.obs.spans import SPAN_COUNTERS, Span
from repro.shard.sharded import ShardedDatabase
from repro.shard.worker import merge_key

#: shard counts of the scaling curve; 1 isolates pure scatter-gather
#: overhead (pickling, pipes, merge) from actual parallel speedup.
SHARD_COUNTS = (1, 2, 4)


def _attr_eq(name: str, value: str) -> Predicate:
    return Predicate(kind="attribute", op="=", value=value, name=name)


@dataclass(frozen=True)
class ShardWorkload:
    """One scaling cell: a selective query on a folded data set."""

    name: str
    dataset: str
    folding: int
    pattern: QueryPattern


def _shard_workloads() -> tuple[ShardWorkload, ...]:
    # one match per fold copy: the Pers generator ids its first
    # manager "m1", so the predicate keeps outputs tiny while the
    # manager//employee/name join still scans the whole corpus
    pers = QueryPattern.build({
        "nodes": [("manager", [_attr_eq("id", "m1")]), "employee",
                  "name", "department"],
        "edges": [(0, 1, "//"), (1, 2, "/"), (0, 3, "//")],
    })
    mbench = QueryPattern.build({
        "nodes": [("eNest", [_attr_eq("aSixteen", "3")]), "eNest",
                  ("eNest", [_attr_eq("aSixtyFour", "11")]), "eNest"],
        "edges": [(0, 1, "/"), (1, 2, "//"), (2, 3, "/")],
    })
    # one article per fold copy matches the key; the scan still walks
    # every article and author posting, so join input scales with the
    # corpus while output stays at a few rows per copy
    dblp = QueryPattern.build({
        "nodes": ["dblp", ("article", [_attr_eq("key", "article/1")]),
                  "author", "title"],
        "edges": [(0, 1, "/"), (1, 2, "/"), (1, 3, "/")],
    })
    return (
        ShardWorkload("pers-x64/selective-d", "pers", 64, pers),
        ShardWorkload("mbench-x96/selective-c", "mbench", 96, mbench),
        ShardWorkload("dblp-x32/selective-key", "dblp", 32, dblp),
    )


SHARD_WORKLOADS: tuple[ShardWorkload, ...] = _shard_workloads()


def _subtree_counters(span: Span) -> dict[str, int]:
    """Sum of the cost-model counter shares over a span subtree."""
    totals = {name: int(value)
              for name, value in span.counters().items()}
    for child in span.children:
        for name, value in _subtree_counters(child).items():
            totals[name] = totals.get(name, 0) + value
    return totals


def trace_breakdown(sharded: ShardedDatabase, plan,
                    pattern: QueryPattern) -> dict[str, object]:
    """Per-shard span breakdown of one traced scatter-gather run.

    Runs the plan once with tracing on and reads the stitched trace
    back: coordinator phase times (scatter / gather / merge) and each
    shard's wall time, rows and exact counter shares.  The shares are
    re-verified against the merged execution counters — a stitched
    trace that lost or double-counted work fails the bench rather
    than shipping a wrong breakdown.
    """
    execution = sharded.execute(plan, pattern, spans=True)
    span = execution.span
    assert span is not None
    phases = {child.name: child.seconds for child in span.children}
    shards = []
    for wrapper in ShardedDatabase._shard_wrappers(span):
        shards.append({
            "shard": wrapper.detail,
            "wall_seconds": wrapper.seconds,
            "rows": wrapper.output_rows,
            "counters": _subtree_counters(wrapper),
        })
    stitched = {name: sum(entry["counters"].get(name, 0)
                          for entry in shards)
                for name in SPAN_COUNTERS}
    merged = {name: int(getattr(execution.metrics, name))
              for name in SPAN_COUNTERS}
    if stitched != merged:
        raise ShardError(
            f"stitched trace counter shares {stitched} do not sum to "
            f"the merged execution counters {merged}")
    return {
        "trace_id": span.trace_id,
        "scatter_seconds": phases.get("ShardScatter", 0.0),
        "gather_seconds": phases.get("ShardGather", 0.0),
        "merge_seconds": phases.get("ShardMerge", 0.0),
        "shards": shards,
        "counter_shares_exact": True,  # any mismatch raises instead
    }


def _best_of(run, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        best = min(best, run())
    return best


def measure_shard_workload(spec: ShardWorkload,
                           setup: ExperimentSetup,
                           repeats: int = 3,
                           shard_counts: Sequence[int] = SHARD_COUNTS,
                           ) -> dict[str, object]:
    """One scaling curve: single node vs. every shard count.

    All executions run the same DPP plan (the sharded side plans once
    against merged statistics; the plans coincide because merged
    histograms equal the single-node histograms).  Timings are best of
    *repeats* with warm workers; verification runs once per cell.
    """
    database = dataset_database(spec.dataset, setup,
                                folding=spec.folding)
    pattern = spec.pattern
    database.warm_statistics(pattern)
    plan = database.optimize(pattern, algorithm="DPP").plan
    database.execute(plan, pattern)  # warm the posting decode cache
    single_seconds = _best_of(
        lambda: database.execute(plan, pattern).metrics.wall_seconds,
        repeats)
    reference = database.execute(plan, pattern)
    reference_bindings = reference.canonical()
    document = database.document
    points = []
    for shards in shard_counts:
        with ShardedDatabase(document, shards=shards) as sharded:
            sharded_plan = sharded.optimize(pattern,
                                            algorithm="DPP").plan
            merged = sharded.execute(sharded_plan, pattern)
            if merged.canonical() != reference_bindings:
                raise ShardError(
                    f"{spec.name} at {shards} shards produced "
                    f"{len(merged.canonical())} distinct bindings, "
                    f"single node {len(reference_bindings)}")
            keys = [merge_key(row) for row in merged.tuples]
            if keys != sorted(keys):
                raise ShardError(
                    f"{spec.name} at {shards} shards broke document "
                    f"order")
            # timed runs measure end-to-end coordinator latency:
            # scatter + per-shard execution + gather + k-way merge
            seconds = math.inf
            profile: list[dict] = []
            for _ in range(repeats):
                wall = (sharded.execute(sharded_plan, pattern)
                        .metrics.wall_seconds)
                if wall < seconds:
                    seconds = wall
                    profile = sharded.last_shard_profile
            # on a host with fewer cores than shards the workers
            # time-slice one CPU and measured wall cannot beat single
            # node; the modeled wall substitutes each shard's CPU time
            # for its contention-inflated wall — what a host with a
            # core per shard would measure (coordinator overhead, the
            # non-parallel part, stays as measured)
            shard_walls = sum(entry["wall_seconds"]
                              for entry in profile)
            overhead = max(0.0, seconds - shard_walls)
            modeled = overhead + max(entry["cpu_seconds"]
                                     for entry in profile)
            breakdown = trace_breakdown(sharded, sharded_plan, pattern)
            points.append({
                "shards": shards,
                "seconds": seconds,
                "rows": len(merged),
                "speedup_vs_single": single_seconds / max(seconds,
                                                          1e-12),
                "worker_cpu_seconds": [entry["cpu_seconds"]
                                       for entry in profile],
                "coordinator_overhead_seconds": overhead,
                "modeled_parallel_seconds": modeled,
                "modeled_speedup_vs_single": single_seconds / max(
                    modeled, 1e-12),
                "shard_nodes": [assignment.node_count for assignment
                                in sharded.partition.assignments],
                "bindings_match": True,
                "document_order": True,
                "trace": breakdown,
            })
    one_shard = points[0]["seconds"]
    for point in points:
        point["speedup_vs_one_shard"] = one_shard / max(
            point["seconds"], 1e-12)
    return {
        "workload": spec.name,
        "dataset": spec.dataset,
        "folding": spec.folding,
        "pattern": pattern.describe(),
        "nodes": len(document),
        "results": len(reference),
        "single_node_seconds": single_seconds,
        "points": points,
    }


def shard_scaling_report(setup: ExperimentSetup | None = None,
                         repeats: int = 3,
                         shard_counts: Sequence[int] = SHARD_COUNTS,
                         workloads: Sequence[ShardWorkload] =
                         SHARD_WORKLOADS) -> dict[str, object]:
    """The full scaling report (the ``BENCH_PR8.json`` payload)."""
    setup = setup or ExperimentSetup()
    cells = [measure_shard_workload(spec, setup, repeats=repeats,
                                    shard_counts=shard_counts)
             for spec in workloads]
    top = max(shard_counts)
    top_points = [point for cell in cells for point in cell["points"]
                  if point["shards"] == top]
    top_speedups = [point["speedup_vs_single"] for point in top_points]
    top_modeled = [point["modeled_speedup_vs_single"]
                   for point in top_points]
    return {
        "benchmark": "BENCH_PR8",
        "description": "sharded scatter-gather scaling on selective "
                       "multi-document workloads (best of N, warm "
                       "workers; bindings differentially verified "
                       "per cell; every point carries a stitched-"
                       "trace per-shard span breakdown with exact "
                       "counter shares)",
        "python": platform.python_version(),
        # the parallel headroom of the curve: with fewer cores than
        # shards the workers time-slice one CPU and the 4-shard point
        # measures scatter-gather overhead, not parallelism
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "shard_counts": list(shard_counts),
        "setup": {
            "pers_nodes": setup.pers_nodes,
            "dblp_entries": setup.dblp_entries,
            "mbench_nodes": setup.mbench_nodes,
            "seed": setup.seed,
        },
        "workloads": cells,
        "summary": {
            "top_shards": top,
            "geomean_speedup_at_top": math.exp(
                sum(math.log(s) for s in top_speedups)
                / len(top_speedups)),
            "min_speedup_at_top": min(top_speedups),
            "max_speedup_at_top": max(top_speedups),
            "geomean_modeled_speedup_at_top": math.exp(
                sum(math.log(s) for s in top_modeled)
                / len(top_modeled)),
            "all_verified": True,  # any mismatch raises instead
        },
    }


def render_shard_report(report: dict[str, object]) -> str:
    """Human-readable scaling table of one report."""
    top_shards = report["summary"]["top_shards"]
    lines = [
        "Sharded scatter-gather scaling "
        f"(best of {report['repeats']}, warm workers, bindings "
        f"verified; {report['cpu_count']} CPU core(s))",
        f"{'workload':24s} {'nodes':>7s} {'rows':>6s} "
        f"{'single ms':>10s} "
        + " ".join(f"{f'{count}sh ms':>9s}"
                   for count in report["shard_counts"])
        + f" {'speedup@' + str(top_shards):>10s}"
        + f" {'modeled@' + str(top_shards):>10s}",
    ]
    for cell in report["workloads"]:
        by_count = {point["shards"]: point for point in cell["points"]}
        top = by_count[top_shards]
        lines.append(
            f"{cell['workload']:24s} {cell['nodes']:>7d} "
            f"{cell['results']:>6d} "
            f"{cell['single_node_seconds'] * 1e3:>10.2f} "
            + " ".join(f"{by_count[count]['seconds'] * 1e3:>9.2f}"
                       for count in report["shard_counts"])
            + f" {top['speedup_vs_single']:>9.2f}x"
            + f" {top['modeled_speedup_vs_single']:>9.2f}x")
    summary = report["summary"]
    lines.append(
        f"geomean speedup at {summary['top_shards']} shards "
        f"{summary['geomean_speedup_at_top']:.2f}x measured "
        f"(min {summary['min_speedup_at_top']:.2f}x, max "
        f"{summary['max_speedup_at_top']:.2f}x), "
        f"{summary['geomean_modeled_speedup_at_top']:.2f}x modeled "
        f"with a core per shard")
    return "\n".join(lines)


def write_shard_report(report: dict[str, object], path: str) -> None:
    """Write a report as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
