"""Programmatic construction of region-encoded documents.

:class:`DocumentBuilder` assigns pre-order start positions as elements
are opened and patches the ``end`` positions as they are closed, so the
resulting node table satisfies the region-encoding invariants by
construction.  It is the single write path into :class:`XmlDocument`
for both the XML parser and the synthetic workload generators.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator, Mapping

from repro.errors import DocumentError
from repro.document.node import NodeRecord, Region

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.document.document import XmlDocument


class _OpenElement:
    """Bookkeeping for an element whose end position is not yet known."""

    __slots__ = ("node_id", "tag", "parent_id", "attributes", "text_parts")

    def __init__(self, node_id: int, tag: str, parent_id: int,
                 attributes: Mapping[str, str]) -> None:
        self.node_id = node_id
        self.tag = tag
        self.parent_id = parent_id
        self.attributes = dict(attributes)
        self.text_parts: list[str] = []


class DocumentBuilder:
    """Incremental builder for :class:`XmlDocument`.

    Typical usage::

        builder = DocumentBuilder(name="pers")
        with builder.element("company"):
            with builder.element("manager", {"id": "m1"}):
                builder.leaf("name", text="Ada")
        document = builder.finish()
    """

    def __init__(self, name: str = "doc") -> None:
        self.name = name
        self._next_position = 0
        self._stack: list[_OpenElement] = []
        self._records: list[NodeRecord | None] = []
        self._finished = False

    # -- element lifecycle -----------------------------------------------

    def start_element(self, tag: str,
                      attributes: Mapping[str, str] | None = None) -> int:
        """Open an element; returns its node id."""
        self._check_open()
        if not self._stack and self._records:
            raise DocumentError("a document has exactly one root element")
        node_id = self._next_position
        self._next_position += 1
        parent_id = self._stack[-1].node_id if self._stack else -1
        self._stack.append(
            _OpenElement(node_id, tag, parent_id, attributes or {}))
        self._records.append(None)  # placeholder, patched on end_element
        return node_id

    def text(self, data: str) -> None:
        """Append character data to the innermost open element."""
        self._check_open()
        if not self._stack:
            if data.strip():
                raise DocumentError("text outside the root element")
            return
        self._stack[-1].text_parts.append(data)

    def end_element(self, tag: str | None = None) -> NodeRecord:
        """Close the innermost open element and finalize its record."""
        self._check_open()
        if not self._stack:
            raise DocumentError("end_element with no open element")
        open_element = self._stack.pop()
        if tag is not None and tag != open_element.tag:
            raise DocumentError(
                f"mismatched end tag: expected </{open_element.tag}>, "
                f"got </{tag}>")
        region = Region(start=open_element.node_id,
                        end=self._next_position - 1,
                        level=len(self._stack))
        record = NodeRecord(
            node_id=open_element.node_id,
            tag=open_element.tag,
            region=region,
            parent_id=open_element.parent_id,
            text="".join(open_element.text_parts).strip(),
            attributes=open_element.attributes,
        )
        self._records[open_element.node_id] = record
        return record

    @contextlib.contextmanager
    def element(self, tag: str,
                attributes: Mapping[str, str] | None = None) -> Iterator[int]:
        """Context-manager form of start/end element."""
        node_id = self.start_element(tag, attributes)
        yield node_id
        self.end_element(tag)

    def leaf(self, tag: str, attributes: Mapping[str, str] | None = None,
             text: str = "") -> NodeRecord:
        """Convenience: an element with only character-data content."""
        self.start_element(tag, attributes)
        if text:
            self.text(text)
        return self.end_element(tag)

    def splice(self, document: "XmlDocument") -> None:
        """Copy an entire existing document under the current element.

        Region encodings of the spliced nodes are shifted by the current
        write position and deepened by the current stack depth.  This is
        the workhorse of folding-factor replication.
        """
        self._check_open()
        if not self._stack:
            raise DocumentError("splice requires an open parent element")
        offset = self._next_position
        extra_level = len(self._stack)
        parent_of_root = self._stack[-1].node_id
        for node in document:
            region = Region(start=node.start + offset,
                            end=node.end + offset,
                            level=node.level + extra_level)
            parent_id = (parent_of_root if node.parent_id < 0
                         else node.parent_id + offset)
            self._records.append(NodeRecord(
                node_id=node.node_id + offset,
                tag=node.tag,
                region=region,
                parent_id=parent_id,
                text=node.text,
                attributes=dict(node.attributes),
            ))
        self._next_position += len(document)

    # -- completion --------------------------------------------------------

    def finish(self) -> "XmlDocument":
        """Validate and freeze the document."""
        from repro.document.document import XmlDocument

        self._check_open()
        if self._stack:
            raise DocumentError(
                f"unclosed element <{self._stack[-1].tag}>")
        if not self._records:
            raise DocumentError("empty document")
        self._finished = True
        records = [record for record in self._records if record is not None]
        if len(records) != len(self._records):
            raise DocumentError("internal error: unfinished element records")
        return XmlDocument(records, name=self.name)

    def _check_open(self) -> None:
        if self._finished:
            raise DocumentError("builder already finished")

    @property
    def size(self) -> int:
        """Number of elements started so far."""
        return self._next_position
