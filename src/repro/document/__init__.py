"""XML data model: region-encoded nodes, documents, parser, serializer.

The document layer is the lowest substrate of the reproduction.  It
represents XML documents the way the structural-join literature does:
every element carries a *region encoding* ``(start, end, level)`` derived
from a depth-first pre-order traversal, so that the ancestor/descendant
relationship between two elements can be decided in O(1) from their
encodings (see :mod:`repro.document.node`).
"""

from repro.document.node import NodeRecord, Region
from repro.document.document import XmlDocument
from repro.document.builder import DocumentBuilder
from repro.document.parser import parse_xml
from repro.document.serialize import serialize

__all__ = [
    "NodeRecord",
    "Region",
    "XmlDocument",
    "DocumentBuilder",
    "parse_xml",
    "serialize",
]
