"""A small, dependency-free XML parser.

Supports the subset of XML that the benchmark data sets use: elements,
attributes (single- or double-quoted), character data, self-closing
tags, comments, processing instructions, CDATA sections, an optional
XML declaration / DOCTYPE line, and the five predefined entities.  It
deliberately omits namespaces and DTD processing — the structural-join
workloads never need them — and reports errors with line/column
positions via :class:`repro.errors.XmlParseError`.

The parser is event-driven internally and feeds a
:class:`repro.document.DocumentBuilder`, so the output is a fully
region-encoded :class:`XmlDocument`.
"""

from __future__ import annotations

from repro.errors import XmlParseError
from repro.document.builder import DocumentBuilder
from repro.document.document import XmlDocument

_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789-.")


class _Scanner:
    """Cursor over the input text with line/column tracking."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def starts_with(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def location(self, pos: int | None = None) -> tuple[int, int]:
        """1-based (line, column) of *pos* (default: current position)."""
        pos = self.pos if pos is None else pos
        prefix = self.text[:pos]
        line = prefix.count("\n") + 1
        column = pos - (prefix.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str, pos: int | None = None) -> XmlParseError:
        line, column = self.location(pos)
        return XmlParseError(message, line=line, column=column)

    def skip_whitespace(self) -> None:
        while not self.eof() and self.peek() in " \t\r\n":
            self.advance()

    def read_until(self, terminator: str, what: str) -> str:
        end = self.text.find(terminator, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        chunk = self.text[self.pos:end]
        self.pos = end + len(terminator)
        return chunk

    def read_name(self) -> str:
        if self.eof() or self.peek() not in _NAME_START:
            raise self.error("expected an XML name")
        start = self.pos
        while not self.eof() and self.peek() in _NAME_CHARS:
            self.advance()
        return self.text[start:self.pos]


def _decode_entities(scanner: _Scanner, raw: str, base_pos: int) -> str:
    """Replace ``&name;`` and ``&#NNN;`` references in character data."""
    if "&" not in raw:
        return raw
    parts: list[str] = []
    index = 0
    while index < len(raw):
        amp = raw.find("&", index)
        if amp < 0:
            parts.append(raw[index:])
            break
        parts.append(raw[index:amp])
        semi = raw.find(";", amp)
        if semi < 0:
            raise scanner.error("unterminated entity reference",
                                pos=base_pos + amp)
        name = raw[amp + 1:semi]
        if name.startswith("#x") or name.startswith("#X"):
            parts.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            parts.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            parts.append(_ENTITIES[name])
        else:
            raise scanner.error(f"unknown entity &{name};",
                                pos=base_pos + amp)
        index = semi + 1
    return "".join(parts)


def _parse_attributes(scanner: _Scanner) -> dict[str, str]:
    attributes: dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        if scanner.eof() or scanner.peek() in (">", "/", "?"):
            return attributes
        name = scanner.read_name()
        scanner.skip_whitespace()
        if scanner.peek() != "=":
            raise scanner.error(f"expected '=' after attribute {name!r}")
        scanner.advance()
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.advance()
        value_start = scanner.pos
        raw = scanner.read_until(quote, "attribute value")
        if name in attributes:
            raise scanner.error(f"duplicate attribute {name!r}")
        attributes[name] = _decode_entities(scanner, raw, value_start)


def parse_xml(text: str, name: str = "doc") -> XmlDocument:
    """Parse an XML string into a region-encoded :class:`XmlDocument`."""
    from repro.errors import DocumentError

    scanner = _Scanner(text)
    builder = DocumentBuilder(name=name)
    try:
        _parse_into(scanner, builder)
    except DocumentError as exc:
        raise scanner.error(str(exc)) from exc
    try:
        return builder.finish()
    except DocumentError as exc:
        raise XmlParseError(str(exc)) from exc


def _parse_into(scanner: _Scanner, builder: DocumentBuilder) -> None:
    saw_root = False
    while not scanner.eof():
        if scanner.peek() != "<":
            data_start = scanner.pos
            end = scanner.text.find("<", scanner.pos)
            if end < 0:
                end = len(scanner.text)
            raw = scanner.text[data_start:end]
            scanner.pos = end
            builder.text(_decode_entities(scanner, raw, data_start))
            continue

        if scanner.starts_with("<!--"):
            scanner.advance(4)
            scanner.read_until("-->", "comment")
        elif scanner.starts_with("<![CDATA["):
            scanner.advance(9)
            builder.text(scanner.read_until("]]>", "CDATA section"))
        elif scanner.starts_with("<!"):
            scanner.advance(2)
            scanner.read_until(">", "declaration")
        elif scanner.starts_with("<?"):
            scanner.advance(2)
            scanner.read_until("?>", "processing instruction")
        elif scanner.starts_with("</"):
            scanner.advance(2)
            tag = scanner.read_name()
            scanner.skip_whitespace()
            if scanner.peek() != ">":
                raise scanner.error(f"malformed end tag </{tag}")
            scanner.advance()
            builder.end_element(tag)
        else:
            scanner.advance()
            tag_pos = scanner.pos
            tag = scanner.read_name()
            attributes = _parse_attributes(scanner)
            if scanner.starts_with("/>"):
                scanner.advance(2)
                builder.start_element(tag, attributes)
                builder.end_element(tag)
            elif scanner.peek() == ">":
                scanner.advance()
                if saw_root and builder.size == 0:  # pragma: no cover
                    raise scanner.error("multiple root elements", pos=tag_pos)
                builder.start_element(tag, attributes)
            else:
                raise scanner.error(f"malformed start tag <{tag}",
                                    pos=tag_pos)
            saw_root = True
