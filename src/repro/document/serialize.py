"""Serialize a region-encoded document back to XML text.

The serializer is the inverse of :func:`repro.document.parse_xml` up to
whitespace: ``parse_xml(serialize(doc))`` yields a document with the
same node table (tags, attributes, stripped text, regions).  It is used
by tests as a round-trip oracle and by examples to materialize the
synthetic data sets.
"""

from __future__ import annotations

from typing import IO

from repro.document.document import XmlDocument
from repro.document.node import NodeRecord

_ESCAPES_TEXT = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ESCAPES_ATTR = _ESCAPES_TEXT + [('"', "&quot;")]


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    for char, replacement in _ESCAPES_TEXT:
        value = value.replace(char, replacement)
    return value


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    for char, replacement in _ESCAPES_ATTR:
        value = value.replace(char, replacement)
    return value


def _open_tag(node: NodeRecord) -> str:
    parts = [node.tag]
    parts.extend(f'{name}="{escape_attribute(value)}"'
                 for name, value in node.attributes.items())
    return "<" + " ".join(parts)


def serialize(document: XmlDocument, indent: int = 2) -> str:
    """Render *document* as pretty-printed XML text."""
    lines: list[str] = []
    _serialize_node(document, document.root, indent, lines)
    return "\n".join(lines) + "\n"


def _serialize_node(document: XmlDocument, node: NodeRecord,
                    indent: int, lines: list[str]) -> None:
    pad = " " * (indent * node.level)
    children = document.children(node)
    open_tag = _open_tag(node)
    if not children and not node.text:
        lines.append(f"{pad}{open_tag}/>")
    elif not children:
        lines.append(f"{pad}{open_tag}>{escape_text(node.text)}"
                     f"</{node.tag}>")
    else:
        lines.append(f"{pad}{open_tag}>")
        if node.text:
            lines.append(f"{pad}{' ' * indent}{escape_text(node.text)}")
        for child in children:
            _serialize_node(document, child, indent, lines)
        lines.append(f"{pad}</{node.tag}>")


def write_xml(document: XmlDocument, stream: IO[str], indent: int = 2) -> None:
    """Write *document* as XML to a text stream."""
    stream.write('<?xml version="1.0" encoding="UTF-8"?>\n')
    stream.write(serialize(document, indent=indent))
