"""In-memory XML document backed by a node table.

An :class:`XmlDocument` is an immutable array of :class:`NodeRecord`
sorted by pre-order start position (document order), plus secondary
structures for navigation: a tag partition and a children adjacency
list.  Documents are produced by :class:`repro.document.DocumentBuilder`
or :func:`repro.document.parse_xml`, never mutated afterwards.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, Sequence

from repro.errors import DocumentError
from repro.document.node import NodeRecord


class XmlDocument:
    """A parsed XML document as a region-encoded node table."""

    def __init__(self, nodes: Sequence[NodeRecord], name: str = "doc") -> None:
        self._nodes: tuple[NodeRecord, ...] = tuple(nodes)
        self.name = name
        self._validate()
        self._by_tag: dict[str, list[NodeRecord]] = {}
        self._children: dict[int, list[int]] = {}
        for node in self._nodes:
            self._by_tag.setdefault(node.tag, []).append(node)
            if node.parent_id >= 0:
                self._children.setdefault(node.parent_id, []).append(
                    node.node_id)
        self._starts = [node.start for node in self._nodes]

    def _validate(self) -> None:
        if not self._nodes:
            raise DocumentError("a document must contain at least one node")
        starts = [node.start for node in self._nodes]
        if starts != sorted(starts):
            raise DocumentError("node table must be sorted by start position")
        if len(set(starts)) != len(starts):
            raise DocumentError("start positions must be unique")
        root = self._nodes[0]
        if root.parent_id != -1 or root.level != 0:
            raise DocumentError("first node must be the document root")
        by_id = {node.node_id: node for node in self._nodes}
        for node in self._nodes[1:]:
            parent = by_id.get(node.parent_id)
            if parent is None:
                raise DocumentError(
                    f"node {node.node_id} references missing parent "
                    f"{node.parent_id}")
            if not parent.region.is_parent_of(node.region):
                raise DocumentError(
                    f"node {node.node_id} region is not nested under its "
                    f"parent {node.parent_id}")

    # -- basic accessors ------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[NodeRecord]:
        return iter(self._nodes)

    @property
    def root(self) -> NodeRecord:
        return self._nodes[0]

    @property
    def nodes(self) -> tuple[NodeRecord, ...]:
        return self._nodes

    def node(self, node_id: int) -> NodeRecord:
        """Return the node with the given id (== start position)."""
        index = bisect_left(self._starts, node_id)
        if index == len(self._starts) or self._starts[index] != node_id:
            raise DocumentError(f"no node with id {node_id}")
        return self._nodes[index]

    def tags(self) -> list[str]:
        """Distinct tags, sorted."""
        return sorted(self._by_tag)

    def nodes_with_tag(self, tag: str) -> list[NodeRecord]:
        """All nodes with the given tag, in document order."""
        return list(self._by_tag.get(tag, ()))

    def tag_count(self, tag: str) -> int:
        return len(self._by_tag.get(tag, ()))

    # -- navigation -----------------------------------------------------

    def parent(self, node: NodeRecord) -> NodeRecord | None:
        if node.parent_id < 0:
            return None
        return self.node(node.parent_id)

    def children(self, node: NodeRecord) -> list[NodeRecord]:
        return [self.node(child_id)
                for child_id in self._children.get(node.node_id, ())]

    def descendants(self, node: NodeRecord) -> Iterator[NodeRecord]:
        """All proper descendants of *node*, in document order."""
        low = bisect_right(self._starts, node.start)
        high = bisect_right(self._starts, node.end)
        return iter(self._nodes[low:high])

    def subtree(self, node: NodeRecord) -> Iterator[NodeRecord]:
        """*node* followed by its descendants, in document order."""
        low = bisect_left(self._starts, node.start)
        high = bisect_right(self._starts, node.end)
        return iter(self._nodes[low:high])

    def ancestors(self, node: NodeRecord) -> Iterator[NodeRecord]:
        """Proper ancestors of *node*, nearest first."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    # -- statistics -----------------------------------------------------

    def depth(self) -> int:
        """Maximum node level in the document."""
        return max(node.level for node in self._nodes)

    def tag_histogram(self) -> dict[str, int]:
        return {tag: len(nodes) for tag, nodes in self._by_tag.items()}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"XmlDocument(name={self.name!r}, nodes={len(self)}, "
                f"depth={self.depth()})")


def merge_documents(documents: Iterable[XmlDocument],
                    root_tag: str = "collection",
                    name: str = "merged") -> XmlDocument:
    """Concatenate documents under a new synthetic root element.

    Used by the folding-factor replication of the benchmark workloads:
    the folded data set is the original document repeated *k* times
    under one root.  Region encodings are shifted so the merged node
    table is a valid single document.
    """
    from repro.document.builder import DocumentBuilder

    documents = list(documents)
    if not documents:
        raise DocumentError("cannot merge zero documents")
    builder = DocumentBuilder(name=name)
    with builder.element(root_tag):
        for document in documents:
            builder.splice(document)
    return builder.finish()
