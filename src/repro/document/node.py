"""Region-encoded XML nodes.

The structural-join literature (Al-Khalifa et al., ICDE 2002; Zhang et
al., SIGMOD 2001) encodes every element of an XML document with a
*region*: the pair of its pre-order start position and the largest
position inside its subtree, plus its depth.  With this encoding,

* ``a`` is an **ancestor** of ``d``  iff  ``a.start < d.start <= a.end``
* ``a`` is the **parent** of ``d``   iff  additionally
  ``d.level == a.level + 1``

and a list of elements sorted by ``start`` is in document order.  All
join operators in :mod:`repro.engine` work purely on these encodings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, slots=True, order=True)
class Region:
    """A ``(start, end, level)`` region encoding.

    ``start`` and ``end`` are positions in a depth-first pre-order
    numbering of the document; ``level`` is the depth of the node (the
    document root has level 0).  Regions are totally ordered by
    ``(start, end, level)``, which coincides with document order because
    start positions are unique within a document.
    """

    start: int
    end: int
    level: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start or self.level < 0:
            raise ValueError(f"invalid region ({self.start}, {self.end}, "
                             f"{self.level})")

    def contains(self, other: "Region") -> bool:
        """Return True if *other* lies strictly inside this region."""
        return self.start < other.start and other.end <= self.end

    def is_ancestor_of(self, other: "Region") -> bool:
        """Alias of :meth:`contains`, named for query semantics."""
        return self.contains(other)

    def is_parent_of(self, other: "Region") -> bool:
        """Return True if *other* is an immediate child of this region."""
        return self.contains(other) and other.level == self.level + 1

    def is_descendant_of(self, other: "Region") -> bool:
        return other.contains(self)

    def precedes(self, other: "Region") -> bool:
        """Document-order "strictly before and disjoint" test."""
        return self.end < other.start

    @property
    def subtree_size(self) -> int:
        """Number of element nodes in the subtree rooted here."""
        return self.end - self.start + 1


@dataclass(frozen=True, slots=True)
class NodeRecord:
    """An element node of a parsed document.

    ``node_id`` equals the node's pre-order ``start`` position, which
    makes it both a stable identifier and the sort key for document
    order.  ``text`` collects the immediate character data of the
    element (concatenated, stripped); ``attributes`` holds XML
    attributes.  ``parent_id`` is ``-1`` for the document root.
    """

    node_id: int
    tag: str
    region: Region
    parent_id: int = -1
    text: str = ""
    attributes: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.node_id != self.region.start:
            raise ValueError("node_id must equal the region start position")
        if not self.tag:
            raise ValueError("element tag must be non-empty")

    @property
    def start(self) -> int:
        return self.region.start

    @property
    def end(self) -> int:
        return self.region.end

    @property
    def level(self) -> int:
        return self.region.level

    def is_ancestor_of(self, other: "NodeRecord") -> bool:
        return self.region.is_ancestor_of(other.region)

    def is_parent_of(self, other: "NodeRecord") -> bool:
        return self.region.is_parent_of(other.region)

    def attribute(self, name: str, default: Any = None) -> Any:
        return self.attributes.get(name, default)

    def sort_key(self) -> tuple[int, int]:
        """Document-order sort key (start position breaks all ties)."""
        return (self.region.start, self.region.end)
