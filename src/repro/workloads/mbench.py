"""Mbench-like benchmark data set.

The Michigan benchmark (Runapongsa et al.) stresses structural-join
processing with a deeply recursive tree of ``eNest`` elements carrying
numeric attributes (``aLevel``, ``aFour``, ``aSixteen``, ...) plus an
occasional ``eOccasional`` element.  Self-joins on ``eNest`` at
different attribute selectivities are exactly what the paper's
Q.Mbench queries exercise.

This generator reproduces the character: a recursive ``eNest`` tree
whose fan-out shrinks with depth, with modular attributes and a ~25%
chance of an ``eOccasional`` leaf under each node.
"""

from __future__ import annotations

import random

from repro.document.builder import DocumentBuilder
from repro.document.document import XmlDocument
from repro.workloads.generators import make_rng


def mbench_document(target_nodes: int = 3000, seed: int = 3,
                    max_depth: int = 12) -> XmlDocument:
    """Generate an Mbench-like document of roughly *target_nodes* nodes."""
    rng = make_rng(seed)
    builder = DocumentBuilder(name=f"mbench-{target_nodes}-{seed}")
    counter = [0]
    _nest(builder, rng, level=1, max_depth=max_depth,
          budget=target_nodes, counter=counter)
    return builder.finish()


def _nest(builder: DocumentBuilder, rng: random.Random, level: int,
          max_depth: int, budget: int, counter: list[int]) -> None:
    serial = counter[0]
    counter[0] += 1
    attributes = {
        "aUnique": str(serial),
        "aLevel": str(level),
        "aFour": str(serial % 4),
        "aSixteen": str(serial % 16),
        "aSixtyFour": str(serial % 64),
    }
    with builder.element("eNest", attributes):
        if rng.random() < 0.25:
            builder.leaf("eOccasional", {"aRef": str(rng.randint(0, 63))},
                         text=str(serial))
        if level >= max_depth or builder.size >= budget:
            return
        # wide near the root, narrowing with depth — Mbench's shape
        fanout = max(1, rng.randint(1, max(1, 5 - level // 3)))
        for _ in range(fanout):
            if builder.size >= budget:
                return
            _nest(builder, rng, level + 1, max_depth, budget, counter)
