"""Benchmark workloads: synthetic data sets and the paper's queries.

The paper evaluates on three data sets — Mbench, DBLP and the AT&T
``Pers`` personnel data — none of which ship with this reproduction.
Each generator here produces a deterministic synthetic document with
the same structural character (depth, fan-out, tag-frequency skew) at a
configurable size, so the experiments exercise the same optimizer
behaviour.  ``queries`` defines the four pattern shapes of Fig. 6 and
the eight queries of Table 1.
"""

from repro.workloads.generators import (make_rng, random_pattern,
                                        random_predicate)
from repro.workloads.personnel import personnel_document
from repro.workloads.dblp import dblp_document
from repro.workloads.mbench import mbench_document
from repro.workloads.folding import fold_document
from repro.workloads.queries import (PAPER_QUERIES, PATTERN_SHAPES,
                                     PaperQuery, build_shape,
                                     dataset_document, paper_query,
                                     pattern_for)

__all__ = [
    "make_rng",
    "random_pattern",
    "random_predicate",
    "personnel_document",
    "dblp_document",
    "mbench_document",
    "fold_document",
    "PAPER_QUERIES",
    "PATTERN_SHAPES",
    "PaperQuery",
    "build_shape",
    "dataset_document",
    "paper_query",
    "pattern_for",
]
