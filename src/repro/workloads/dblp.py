"""DBLP-like bibliography data set.

The real DBLP XML is a shallow, very wide document: one root with
hundreds of thousands of publication entries, each a small flat
subtree.  This generator reproduces that character — entry-type skew
(articles vs. inproceedings vs. books), multiple authors per entry,
and citation sub-elements that give the data just enough depth for
pattern shapes b and c.
"""

from __future__ import annotations

import random

from repro.document.builder import DocumentBuilder
from repro.document.document import XmlDocument
from repro.workloads.generators import make_rng, paper_title, person_name

_ENTRY_KINDS = ("article", "inproceedings", "book")
_ENTRY_WEIGHTS = (0.55, 0.40, 0.05)
_VENUES = ("ICDE", "SIGMOD", "VLDB", "EDBT", "CIKM", "PODS")


def dblp_document(entries: int = 400, seed: int = 7) -> XmlDocument:
    """Generate a bibliography with *entries* publication entries."""
    rng = make_rng(seed)
    builder = DocumentBuilder(name=f"dblp-{entries}-{seed}")
    with builder.element("dblp"):
        for number in range(entries):
            kind = rng.choices(_ENTRY_KINDS, weights=_ENTRY_WEIGHTS)[0]
            _entry(builder, rng, kind, number)
    return builder.finish()


def _entry(builder: DocumentBuilder, rng: random.Random, kind: str,
           number: int) -> None:
    year = str(rng.randint(1994, 2003))
    with builder.element(kind, {"key": f"{kind}/{number}", "year": year}):
        for _ in range(rng.randint(1, 3)):
            builder.leaf("author", text=person_name(rng))
        builder.leaf("title", text=paper_title(rng))
        builder.leaf("year", text=year)
        if kind == "article":
            builder.leaf("journal", text=f"{rng.choice(_VENUES)} Journal")
        elif kind == "inproceedings":
            builder.leaf("booktitle", text=f"Proc. {rng.choice(_VENUES)}")
        else:
            builder.leaf("publisher", text="Example Press")
        for _ in range(rng.randint(0, 3)):
            with builder.element("cite"):
                builder.leaf("label", text=f"ref{rng.randint(0, 999)}")
