"""The paper's query workload (Sec. 4.1, Fig. 6, Table 1).

Four pattern *shapes* of increasing size (the source text of the paper
does not preserve the Fig. 6 images, so the shapes are reconstructed
from the constraints the text gives: sizes grow a -> d, shape *c* is
the Fig. 1 running example, and Table 1's optimization times grow with
shape size):

* **a** — 4 nodes: a root with a 2-step chain and one extra branch
* **b** — 5 nodes: a root with two 2-step chains
* **c** — 6 nodes: the running example (manager/employee/name +
  manager/department/name)
* **d** — 7 nodes: a root with three 2-step chains

Eight concrete queries instantiate the shapes against the three data
sets, named exactly as in the paper: ``Q.<DataSet>.<Num>.<shape>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import PatternError
from repro.core.pattern import QueryPattern
from repro.document.document import XmlDocument
from repro.workloads.dblp import dblp_document
from repro.workloads.mbench import mbench_document
from repro.workloads.personnel import personnel_document

#: shape letter -> edge list (parent index, child index)
PATTERN_SHAPES: dict[str, tuple[tuple[int, int], ...]] = {
    "a": ((0, 1), (1, 2), (0, 3)),
    "b": ((0, 1), (1, 2), (0, 3), (3, 4)),
    "c": ((0, 1), (1, 2), (0, 3), (3, 4), (4, 5)),
    "d": ((0, 1), (1, 2), (0, 3), (3, 4), (0, 5), (5, 6)),
}


def build_shape(shape: str, nodes: Sequence[object],
                axes: Sequence[str],
                order_by: int | None = None) -> QueryPattern:
    """Instantiate a pattern shape with tags/predicates and axes.

    *nodes* entries are tag strings or ``(tag, predicates)`` pairs as
    accepted by :meth:`QueryPattern.build`; *axes* gives one ``"/"`` or
    ``"//"`` per shape edge.
    """
    edges = PATTERN_SHAPES.get(shape)
    if edges is None:
        raise PatternError(f"unknown pattern shape {shape!r}")
    if len(nodes) != len(edges) + 1:
        raise PatternError(
            f"shape {shape!r} needs {len(edges) + 1} nodes, got "
            f"{len(nodes)}")
    if len(axes) != len(edges):
        raise PatternError(
            f"shape {shape!r} needs {len(edges)} axes, got {len(axes)}")
    return QueryPattern.build({
        "nodes": list(nodes),
        "edges": [(parent, child, axis)
                  for (parent, child), axis in zip(edges, axes)],
        "order_by": order_by,
    })


@dataclass(frozen=True)
class PaperQuery:
    """One named query of Table 1."""

    name: str
    dataset: str  # "mbench" | "dblp" | "pers"
    shape: str
    pattern: QueryPattern

    @property
    def edge_count(self) -> int:
        return len(self.pattern.edges)


def _mbench_queries() -> list[PaperQuery]:
    q1 = build_shape(
        "a",
        [("eNest", [_attr_eq("aFour", "1")]), "eNest", "eNest",
         "eOccasional"],
        ["//", "/", "//"])
    q2 = build_shape(
        "b",
        [("eNest", [_attr_eq("aSixteen", "3")]), "eNest", "eOccasional",
         ("eNest", [_attr_eq("aFour", "2")]), "eNest"],
        ["//", "/", "//", "/"])
    return [PaperQuery("Q.Mbench.1.a", "mbench", "a", q1),
            PaperQuery("Q.Mbench.2.b", "mbench", "b", q2)]


def _dblp_queries() -> list[PaperQuery]:
    q1 = build_shape(
        "b",
        ["dblp", "article", "author", "inproceedings", "title"],
        ["/", "/", "/", "/"])
    q2 = build_shape(
        "c",
        ["dblp", "article", "title", "inproceedings", "cite", "label"],
        ["/", "/", "/", "/", "/"])
    return [PaperQuery("Q.DBLP.1.b", "dblp", "b", q1),
            PaperQuery("Q.DBLP.2.c", "dblp", "c", q2)]


def _pers_queries() -> list[PaperQuery]:
    q1 = build_shape(
        "a",
        ["manager", "employee", "name", "department"],
        ["//", "/", "//"])
    # the running example of Fig. 1 / Example 2.2
    q2 = build_shape(
        "c",
        ["manager", "employee", "name", "manager", "department", "name"],
        ["//", "/", "//", "/", "/"])
    q3 = build_shape(
        "d",
        ["manager", "employee", "name", "department", "employee",
         "manager", "name"],
        ["//", "/", "//", "/", "//", "/"])
    q4 = build_shape(
        "d",
        ["manager", "manager", "department", "employee", "phone",
         "department", "name"],
        ["//", "/", "//", "/", "//", "/"])
    return [PaperQuery("Q.Pers.1.a", "pers", "a", q1),
            PaperQuery("Q.Pers.2.c", "pers", "c", q2),
            PaperQuery("Q.Pers.3.d", "pers", "d", q3),
            PaperQuery("Q.Pers.4.d", "pers", "d", q4)]


def _attr_eq(name: str, value: str):
    from repro.core.pattern import Predicate

    return Predicate(kind="attribute", op="=", value=value, name=name)


PAPER_QUERIES: dict[str, PaperQuery] = {
    query.name: query
    for query in (_mbench_queries() + _dblp_queries() + _pers_queries())
}

#: default generator per data set, at paper-character default sizes
DATASET_GENERATORS: dict[str, Callable[..., XmlDocument]] = {
    "mbench": mbench_document,
    "dblp": dblp_document,
    "pers": personnel_document,
}


def paper_query(name: str) -> PaperQuery:
    """Look up one of the eight Table 1 queries by its paper name."""
    query = PAPER_QUERIES.get(name)
    if query is None:
        raise PatternError(
            f"unknown paper query {name!r}; known: "
            f"{sorted(PAPER_QUERIES)}")
    return query


def pattern_for(name: str) -> QueryPattern:
    """Convenience: the pattern of a paper query."""
    return paper_query(name).pattern


def dataset_document(dataset: str, **kwargs: object) -> XmlDocument:
    """Generate the default document for a data set name."""
    generator = DATASET_GENERATORS.get(dataset)
    if generator is None:
        raise PatternError(f"unknown dataset {dataset!r}")
    return generator(**kwargs)  # type: ignore[arg-type]
