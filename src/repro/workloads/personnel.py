"""Pers-like personnel data set.

Models the AT&T synthetic personnel data used by the paper (and by the
structural-join paper it builds on): a recursively nested management
hierarchy.  Managers contain a name and email, supervise employees and
departments, and may have subordinate managers — which is exactly the
recursive structure the running example (Fig. 1) queries: manager //
employee / name alongside manager // manager / department / name.

The generator grows top-level manager subtrees under a ``company``
root until the requested node budget is reached.
"""

from __future__ import annotations

import random

from repro.document.builder import DocumentBuilder
from repro.document.document import XmlDocument
from repro.workloads.generators import (department_name, make_rng,
                                        person_name, phone_number)


def personnel_document(target_nodes: int = 2000, seed: int = 42,
                       max_depth: int = 3) -> XmlDocument:
    """Generate a personnel document with roughly *target_nodes* nodes.

    ``max_depth`` bounds the manager-within-manager nesting (the
    document is deeper than that in element levels, since employees and
    departments add levels of their own).
    """
    rng = make_rng(seed)
    builder = DocumentBuilder(name=f"pers-{target_nodes}-{seed}")
    builder.start_element("company")
    while builder.size < target_nodes:
        _manager(builder, rng, depth=0, max_depth=max_depth,
                 budget=target_nodes)
    builder.end_element("company")
    return builder.finish()


def _manager(builder: DocumentBuilder, rng: random.Random, depth: int,
             max_depth: int, budget: int) -> None:
    with builder.element("manager", {"id": f"m{builder.size}"}):
        builder.leaf("name", text=person_name(rng))
        builder.leaf("email", text=f"m{builder.size}@example.com")
        for _ in range(rng.randint(1, 3)):
            if builder.size >= budget:
                break
            _employee(builder, rng)
        for _ in range(rng.randint(0, 2)):
            if builder.size >= budget:
                break
            _department(builder, rng)
        if depth < max_depth:
            for _ in range(rng.randint(0, 2)):
                if builder.size >= budget:
                    break
                _manager(builder, rng, depth + 1, max_depth, budget)


def _employee(builder: DocumentBuilder, rng: random.Random) -> None:
    with builder.element("employee", {"id": f"e{builder.size}"}):
        builder.leaf("name", text=person_name(rng))
        if rng.random() < 0.5:
            builder.leaf("phone", text=phone_number(rng))


def _department(builder: DocumentBuilder, rng: random.Random) -> None:
    with builder.element("department", {"id": f"d{builder.size}"}):
        builder.leaf("name", text=department_name(rng))
        for _ in range(rng.randint(0, 2)):
            _employee(builder, rng)
