"""Shared utilities for the synthetic data generators.

All generators are deterministic: the same (parameters, seed) always
produces the identical document, which keeps benchmark results and
tests reproducible.
"""

from __future__ import annotations

import random

_FIRST_NAMES = (
    "Ada", "Bob", "Carol", "Dan", "Eve", "Frank", "Grace", "Hugo",
    "Iris", "Jack", "Kira", "Liam", "Mona", "Nils", "Olga", "Pete",
    "Quinn", "Rosa", "Sam", "Tina", "Uma", "Vik", "Wen", "Xia",
    "Yuri", "Zoe",
)

_LAST_NAMES = (
    "Adams", "Baker", "Chen", "Diaz", "Evans", "Fischer", "Gupta",
    "Hansen", "Ito", "Jones", "Kim", "Lopez", "Meyer", "Novak",
    "Okafor", "Park", "Quist", "Rossi", "Silva", "Tanaka", "Ueda",
    "Vance", "Weber", "Xu", "Young", "Zhang",
)

_TITLE_WORDS = (
    "structural", "join", "order", "selection", "query", "optimization",
    "index", "pattern", "tree", "stream", "holistic", "stack", "cost",
    "model", "cardinality", "estimation", "pipelined", "bushy", "plan",
    "pruning", "dynamic", "histogram", "region", "encoding", "twig",
)

_DEPARTMENT_NAMES = (
    "Sales", "Research", "Engineering", "Support", "Marketing",
    "Finance", "Operations", "Legal", "Design", "Quality",
)


def person_name(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"


def department_name(rng: random.Random) -> str:
    return rng.choice(_DEPARTMENT_NAMES)


def paper_title(rng: random.Random, words: int = 5) -> str:
    return " ".join(rng.choice(_TITLE_WORDS)
                    for _ in range(words)).capitalize()


def phone_number(rng: random.Random) -> str:
    return f"+1-{rng.randint(200, 999)}-{rng.randint(1000, 9999)}"


def make_rng(seed: int) -> random.Random:
    """A dedicated RNG so generators never share global state."""
    return random.Random(seed)
