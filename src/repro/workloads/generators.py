"""Shared utilities for the synthetic data generators.

All generators are deterministic: the same (parameters, seed) always
produces the identical document, which keeps benchmark results and
tests reproducible.
"""

from __future__ import annotations

import random

_FIRST_NAMES = (
    "Ada", "Bob", "Carol", "Dan", "Eve", "Frank", "Grace", "Hugo",
    "Iris", "Jack", "Kira", "Liam", "Mona", "Nils", "Olga", "Pete",
    "Quinn", "Rosa", "Sam", "Tina", "Uma", "Vik", "Wen", "Xia",
    "Yuri", "Zoe",
)

_LAST_NAMES = (
    "Adams", "Baker", "Chen", "Diaz", "Evans", "Fischer", "Gupta",
    "Hansen", "Ito", "Jones", "Kim", "Lopez", "Meyer", "Novak",
    "Okafor", "Park", "Quist", "Rossi", "Silva", "Tanaka", "Ueda",
    "Vance", "Weber", "Xu", "Young", "Zhang",
)

_TITLE_WORDS = (
    "structural", "join", "order", "selection", "query", "optimization",
    "index", "pattern", "tree", "stream", "holistic", "stack", "cost",
    "model", "cardinality", "estimation", "pipelined", "bushy", "plan",
    "pruning", "dynamic", "histogram", "region", "encoding", "twig",
)

_DEPARTMENT_NAMES = (
    "Sales", "Research", "Engineering", "Support", "Marketing",
    "Finance", "Operations", "Legal", "Design", "Quality",
)


def person_name(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"


def department_name(rng: random.Random) -> str:
    return rng.choice(_DEPARTMENT_NAMES)


def paper_title(rng: random.Random, words: int = 5) -> str:
    return " ".join(rng.choice(_TITLE_WORDS)
                    for _ in range(words)).capitalize()


def phone_number(rng: random.Random) -> str:
    return f"+1-{rng.randint(200, 999)}-{rng.randint(1000, 9999)}"


def make_rng(seed: int) -> random.Random:
    """A dedicated RNG so generators never share global state."""
    return random.Random(seed)


#: Safe predicate literal values: no quote characters, so every
#: generated pattern renders to a parseable XPath string.
_PREDICATE_VALUES = ("1", "2", "3", "42", "Sales", "Research", "Ada",
                     "alpha", "beta")

_PREDICATE_OPS = ("=", "!=", "<", "<=", ">", ">=", "contains")


def random_predicate(rng: random.Random):
    """A random value predicate with render-safe literals."""
    from repro.core.pattern import Predicate

    value = rng.choice(_PREDICATE_VALUES)
    op = rng.choice(_PREDICATE_OPS)
    if rng.random() < 0.5:
        return Predicate(kind="text", op=op, value=value)
    return Predicate(kind="attribute", op=op, value=value,
                     name=rng.choice(("id", "kind", "aFour")))


def random_pattern(rng: random.Random,
                   tags: tuple[str, ...] = ("a", "b", "c", "d"),
                   min_nodes: int = 2, max_nodes: int = 5,
                   wildcard_chance: float = 0.0,
                   predicate_chance: float = 0.0,
                   order_by_chance: float = 0.5):
    """A random tree-pattern query, deterministic for a given *rng*.

    Grows a random tree shape node by node (each new node attaches
    under a uniformly chosen existing node with a random axis), then
    labels nodes with random tag tests, optional wildcards and
    predicates.  The fuzz and differential harnesses drive this with
    many seeds to cover chains, stars and bushy shapes alike.
    """
    from repro.core.pattern import QueryPattern

    size = rng.randint(min_nodes, max_nodes)
    nodes: list[object] = []
    edges = []
    for index in range(size):
        if wildcard_chance and rng.random() < wildcard_chance:
            tag = "*"
        else:
            tag = rng.choice(tags)
        if predicate_chance and rng.random() < predicate_chance:
            nodes.append((tag, [random_predicate(rng)]))
        else:
            nodes.append(tag)
        if index:
            parent = rng.randrange(index)
            axis = "//" if rng.random() < 0.5 else "/"
            edges.append((parent, index, axis))
    order_by = (rng.randrange(size)
                if rng.random() < order_by_chance else None)
    return QueryPattern.build({
        "nodes": nodes,
        "edges": edges,
        "order_by": order_by,
    })
