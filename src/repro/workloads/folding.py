"""Folding-factor replication (Sec. 4.3).

The paper scales its data sets by replicating each document by a
"folding factor", producing data 10x, 100x and 500x the original size.
:func:`fold_document` reproduces that: the input document is spliced
*factor* times under a fresh root, with region encodings shifted so
the result is one valid document.  Candidate-set and join-result sizes
scale linearly with the factor, which is what drives the Table 3 and
Figure 7/8 experiments.
"""

from __future__ import annotations

from repro.errors import DocumentError
from repro.document.document import XmlDocument, merge_documents


def fold_document(document: XmlDocument, factor: int) -> XmlDocument:
    """Return *document* replicated *factor* times under a new root."""
    if factor < 1:
        raise DocumentError(f"folding factor must be >= 1, got {factor}")
    if factor == 1:
        return document
    return merge_documents([document] * factor,
                           root_tag="folded",
                           name=f"{document.name}-x{factor}")
